//! Index-backed join planner vs. the restored-seed reference executor
//! (clone-everything pruned nested loop), on the publication workload's
//! translated join queries at ≥1k rows per joined table. This is the
//! acceptance bench for the planner PR: the `planner` series must beat
//! `reference_nested_loop` by ≥5x on the join-heavy cases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fixtures::data::Spec;
use rdf::namespace::PrefixMap;
use rel::sql::Statement;
use sparql::Query;

fn compiled_workload(db: &rel::Database) -> Vec<(&'static str, rel::sql::SelectStmt)> {
    let mapping = fixtures::mapping();
    [
        ("fk_join", fixtures::workload::select_authors_with_team()),
        (
            "link_join",
            fixtures::workload::select_publications_with_authors(),
        ),
        (
            "filter",
            fixtures::workload::select_recent_publications(2000),
        ),
    ]
    .into_iter()
    .map(|(name, text)| {
        let Query::Select(select) =
            sparql::parse_query_with_prefixes(&text, PrefixMap::common()).unwrap()
        else {
            unreachable!()
        };
        let compiled = ontoaccess::compile_select(db, &mapping, &select).unwrap();
        (name, compiled.sql)
    })
    .collect()
}

// ≥1k rows in every table on the workload's join paths: author, team,
// publication, and publication_author (2 links per publication).
fn database(publications: usize) -> rel::Database {
    let spec = Spec {
        teams: publications,
        authors: publications,
        publishers: 50,
        pubtypes: 4,
        publications,
        authors_per_publication: 2,
    };
    let mut db = fixtures::database();
    fixtures::data::populate(&mut db, &spec, 5);
    db
}

fn bench_planner_vs_reference(c: &mut Criterion) {
    for n in [1000usize] {
        let mut db = database(n);
        let queries = compiled_workload(&db);
        // Provision indexes once, as `run_compiled` would; index upkeep
        // is measured by the mutation benches, not here.
        {
            let mapping = fixtures::mapping();
            let Query::Select(select) = sparql::parse_query_with_prefixes(
                &fixtures::workload::select_publications_with_authors(),
                PrefixMap::common(),
            )
            .unwrap() else {
                unreachable!()
            };
            let compiled = ontoaccess::compile_select(&db, &mapping, &select).unwrap();
            ontoaccess::ensure_join_indexes(&mut db, &compiled).unwrap();
        }
        for (name, sql) in &queries {
            let mut group = c.benchmark_group(format!("join_planner/{name}"));
            group.sample_size(20);
            group.bench_with_input(BenchmarkId::new("planner", n), sql, |b, sql| {
                b.iter(|| rel::sql::execute(&mut db, &Statement::Select(sql.clone())).unwrap())
            });
            group.bench_with_input(
                BenchmarkId::new("reference_nested_loop", n),
                sql,
                |b, sql| b.iter(|| rel::sql::execute_select_reference(&db, sql).unwrap()),
            );
            group.finish();
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_planner_vs_reference
}
criterion_main!(benches);
