//! Tracing-overhead bench: the hot HTTP query path with the span layer
//! live vs. compiled to a no-op.
//!
//! Same shape as the `observability` bench: a fixed 96-request batch
//! of cached SELECT queries over one keep-alive loopback connection.
//! With tracing `enabled` every request assembles a full trace — root
//! span, query pipeline spans, per-join spans, typed attributes — and
//! submits it to the tail-sampled store (these fast queries churn the
//! sampled ring, the common production case). The `disabled` point
//! flips the process-wide [`obs::set_enabled`] kill switch, so
//! [`obs::trace::start`] returns an inert guard and every span call
//! degrades to a thread-local probe. The acceptance budget is < 3%
//! overhead between the two — see `BENCH_tracing.json` for the
//! checked-in numbers.
//!
//! The kill switch is process-global, so this bench must not share a
//! process with anything asserting on trace retention; each bench
//! binary is its own process, which is exactly that isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fixtures::data::Spec;
use fixtures::http_probe::{urlencode, ProbeConn};
use ontoaccess::Mediator;
use ontoaccess_server::{serve, ServerConfig, ServerHandle};
use std::net::SocketAddr;
use std::time::Duration;

fn populated_mediator(n: usize) -> Mediator {
    let spec = Spec {
        teams: n,
        authors: n,
        publishers: 50.min(n),
        pubtypes: 4,
        publications: n,
        authors_per_publication: 2,
    };
    let mut db = fixtures::database();
    fixtures::data::populate(&mut db, &spec, 5);
    Mediator::new(db, fixtures::mapping()).unwrap()
}

fn boot_server() -> ServerHandle {
    serve(
        populated_mediator(500),
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            queue_capacity: 256,
            keep_alive_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

struct Client {
    conn: ProbeConn,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        Client {
            conn: ProbeConn::connect(addr).expect("connect to bench server"),
        }
    }

    fn round_trip(&mut self, raw: &str) -> u16 {
        self.conn.send(raw).expect("request round trip").status
    }
}

fn query_request(query: &str) -> String {
    format!(
        "GET /sparql?query={} HTTP/1.1\r\nHost: bench\r\n\r\n",
        urlencode(query)
    )
}

fn bench_tracing_overhead(c: &mut Criterion) {
    const BATCH: usize = 96;
    let server = boot_server();
    let addr = server.addr();
    let requests: Vec<String> = [
        fixtures::workload::select_authors_with_team(),
        fixtures::workload::select_publications_with_authors(),
        fixtures::workload::select_recent_publications(2000),
    ]
    .iter()
    .map(|q| query_request(q))
    .collect();
    // Warm the compiled-query cache and the join indexes.
    {
        let mut client = Client::connect(addr);
        for request in &requests {
            assert_eq!(client.round_trip(request), 200);
        }
    }
    let mut group = c.benchmark_group("tracing/query_96req");
    group.sample_size(15);
    for mode in ["enabled", "disabled"] {
        group.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |b, &mode| {
            obs::set_enabled(mode == "enabled");
            let mut client = Client::connect(addr);
            b.iter(|| {
                for i in 0..BATCH {
                    let request = &requests[i % requests.len()];
                    assert_eq!(client.round_trip(request), 200);
                }
            });
            obs::set_enabled(true);
        });
    }
    group.finish();
    server.shutdown();
}

criterion_group! {
    name = benches;
    // Bounded per-point runtime so the full suite finishes quickly;
    // pass --measurement-time to override for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_tracing_overhead
}
criterion_main!(benches);
