//! Durability acceptance bench (ISSUE 5).
//!
//! Two claims to prove with numbers:
//!
//! * **Group commit amortizes the fsync** — durable commit latency is
//!   dominated by `fsync`, but concurrent committers share one: the
//!   per-commit cost of a fixed batch of single-row updates should
//!   *fall* (or at worst hold) as the batch is spread over 1 → 4 → 8
//!   writer threads, instead of paying writers × fsyncs. The in-memory
//!   series is the baseline showing what the log costs at all.
//! * **Recovery replays fast** — booting a data directory replays the
//!   committed WAL suffix through the unchecked logical-replay path;
//!   the `recovery_replay` series measures a full open (snapshot load
//!   plus replay of 2 000 logged rows), from which rows/sec follows
//!   directly (printed to stderr at the end of the run).
//!
//! Emits `CRITERION_JSON` lines like the other benches; the checked-in
//! snapshot is `BENCH_durability.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ontoaccess::Mediator;
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Instant;

// Fresh author ids across every iteration of every series.
static NEXT_ID: AtomicI64 = AtomicI64::new(2_000_000);

fn insert_one(id: i64) -> String {
    fixtures::workload::with_prefixes(&format!(
        "INSERT DATA {{ ex:author{id} foaf:family_name \"L{id}\" . }}"
    ))
}

fn durable_mediator(label: &str) -> (Mediator, std::path::PathBuf) {
    let dir = fixtures::scratch_dir(label);
    let (mediator, _) = fixtures::durable_mediator_with_sample_data(&dir);
    (mediator, dir)
}

// One fixed batch of single-row commits, split across `threads`
// writers. Every commit is its own transaction: on the durable
// mediator each must be fsynced before it returns — the group-commit
// claim is that the *batch* needs far fewer fsyncs than commits.
fn run_commit_batch(mediator: &Mediator, threads: usize, batch: usize) {
    std::thread::scope(|scope| {
        let per_thread = batch / threads;
        for _ in 0..threads {
            let mediator = mediator.clone();
            scope.spawn(move || {
                for _ in 0..per_thread {
                    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
                    mediator.execute_update(&insert_one(id)).unwrap();
                }
            });
        }
    });
}

fn bench_commit_latency(c: &mut Criterion) {
    const BATCH: usize = 24;
    let mut group = c.benchmark_group("durability/commit_24_inserts");
    group.sample_size(12);
    for threads in [1usize, 4, 8] {
        // In-memory baseline: what the same batch costs without a log.
        let memory = fixtures::mediator_with_sample_data();
        group.bench_with_input(
            BenchmarkId::new("memory", threads),
            &threads,
            |b, &threads| b.iter(|| run_commit_batch(&memory, threads, BATCH)),
        );
        // Durable: append + group fsync per commit.
        let (durable, dir) = durable_mediator("bench-commit");
        group.bench_with_input(
            BenchmarkId::new("durable", threads),
            &threads,
            |b, &threads| b.iter(|| run_commit_batch(&durable, threads, BATCH)),
        );
        let stats = durable.durability_stats().unwrap();
        eprintln!(
            "durability/commit [{} writer(s)]: {} commit(s), {} fsync(s) — {:.2} commits/fsync",
            threads,
            stats.commits_appended,
            stats.wal_syncs,
            stats.commits_appended as f64 / stats.wal_syncs.max(1) as f64,
        );
        drop(durable);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn bench_recovery_throughput(c: &mut Criterion) {
    // Prepare a directory whose WAL holds 2 000 logged row inserts
    // (20 commits × 100-subject INSERT DATA), then measure a full
    // open: snapshot load + WAL replay.
    const COMMITS: usize = 20;
    const ROWS_PER_COMMIT: usize = 100;
    let (mediator, dir) = durable_mediator("bench-recovery");
    for _ in 0..COMMITS {
        let mut body = String::new();
        for _ in 0..ROWS_PER_COMMIT {
            let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
            body.push_str(&format!("ex:author{id} foaf:family_name \"L{id}\" .\n"));
        }
        mediator
            .execute_update(&fixtures::workload::with_prefixes(&format!(
                "INSERT DATA {{\n{body}}}"
            )))
            .unwrap();
    }
    drop(mediator);

    let rows = (COMMITS * ROWS_PER_COMMIT) as u64;
    let mut group = c.benchmark_group("durability/recovery_replay");
    group.sample_size(15);
    group.bench_function(BenchmarkId::from_parameter(format!("rows_{rows}")), |b| {
        b.iter(|| {
            let opened = dur::Durability::open(&dir, {
                let mut db = fixtures::database();
                fixtures::seed_paper_rows(&mut db);
                db
            })
            .unwrap();
            assert_eq!(opened.report.rows_replayed, rows);
            opened
        })
    });
    group.finish();

    // Report replay throughput in rows/sec for the checked-in numbers.
    let started = Instant::now();
    let opened = dur::Durability::open(&dir, {
        let mut db = fixtures::database();
        fixtures::seed_paper_rows(&mut db);
        db
    })
    .unwrap();
    let elapsed = started.elapsed();
    eprintln!(
        "durability/recovery: {} rows in {:.2?} — {:.0} rows/sec",
        opened.report.rows_replayed,
        elapsed,
        opened.report.rows_replayed as f64 / elapsed.as_secs_f64(),
    );
    drop(opened);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group! {
    name = benches;
    // Bounded per-point runtime so the full suite finishes quickly;
    // pass --measurement-time to override for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_commit_latency, bench_recovery_throughput
}
criterion_main!(benches);
