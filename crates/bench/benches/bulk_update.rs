//! Set-based write pipeline vs. the per-row reference path, on
//! MODIFY and INSERT DATA fan-out at N = 10/100/1k/10k bindings. This
//! is the acceptance bench for the batching PR: the `batched` series
//! must beat `per_row_reference` by ≥5x at 1k bindings on the
//! `insert_data` and `modify_delete` cases (the `modify`
//! attribute-update case is bounded by the Algorithm 2 SELECT/
//! instantiation front half both paths share and by identical per-row
//! index maintenance — expect ~1.2-1.5x at 1k, rising with N as the
//! reference's quadratic statement-pair sort takes over).
//!
//! Both series run the identical Algorithm 1/2 front half (SELECT,
//! instantiation, per-subject identification); they differ only in
//! emission and execution — one grouped statement per (table, shape)
//! through the table-level sort and the bulk engine entry points,
//! versus one statement per row through the seed's statement-pair sort.
//!
//! `BULK_UPDATE_MAX_N` caps the size series (CI smoke sets 1000 to keep
//! the quadratic reference path's runtime bounded; the committed
//! `BENCH_bulk_update.json` is a full local run up to 10k).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use fixtures::data::Spec;
use rdf::namespace::PrefixMap;
use sparql::UpdateOp;

fn database(authors: usize) -> rel::Database {
    let spec = Spec {
        teams: (authors / 10).max(2),
        authors,
        publishers: 2,
        pubtypes: 4,
        publications: authors,
        authors_per_publication: 1,
    };
    let mut db = fixtures::database();
    fixtures::data::populate(&mut db, &spec, 7);
    db
}

fn parse_op(text: &str) -> UpdateOp {
    sparql::parse_update_with_prefixes(text, PrefixMap::common()).unwrap()
}

// A MODIFY whose WHERE matches every author: N bindings, each becoming
// one row of a single grouped UPDATE (or N single-row UPDATEs on the
// reference path).
fn modify_fanout() -> UpdateOp {
    parse_op(&fixtures::workload::with_prefixes(
        "INSERT { ?x foaf:title \"Dr\" . } WHERE { ?x a foaf:Person . }",
    ))
}

// A MODIFY deleting every publication outright (all attributes, the
// type triple, and the authorship link per binding): row deletes fold
// into `WHERE id IN (…)` while the reference path pays the seed's
// statement-pair sort over 2N DELETE statements.
fn modify_delete_fanout() -> UpdateOp {
    parse_op(&fixtures::workload::with_prefixes(
        "MODIFY DELETE { ?p a foaf:Document ; dc:title ?t ; ont:pubYear ?y ; \
           ont:pubType ?ty ; dc:publisher ?pb ; dc:creator ?a . } \
         INSERT { } \
         WHERE { ?p dc:title ?t ; ont:pubYear ?y ; ont:pubType ?ty ; \
           dc:publisher ?pb ; dc:creator ?a . }",
    ))
}

// An INSERT DATA creating N fresh authors of one column shape: one
// N-row INSERT statement (or N single-row INSERTs on the reference
// path).
fn insert_data_fanout(n: usize) -> UpdateOp {
    let mut body = String::from("INSERT DATA {\n");
    for i in 0..n {
        let id = 700_000 + i as i64;
        body.push_str(&format!(
            "ex:author{id} foaf:family_name \"Last{id}\" ; foaf:firstName \"First{id}\" .\n"
        ));
    }
    body.push('}');
    parse_op(&fixtures::workload::with_prefixes(&body))
}

fn bench_batched_vs_per_row(c: &mut Criterion) {
    let max_n: usize = std::env::var("BULK_UPDATE_MAX_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let mapping = fixtures::mapping();
    for &n in &[10usize, 100, 1_000, 10_000] {
        if n > max_n {
            eprintln!("bulk_update: skipping N={n} (BULK_UPDATE_MAX_N={max_n})");
            continue;
        }
        let db = database(n);
        // The reference series for whole-entity deletes is capped at
        // 1k: its statement-pair sort materializes ~N² link-to-row
        // dependency edges (hundreds of millions at 10k — hours of
        // runtime), which is precisely the pathology the set-based
        // pipeline removes. The skip is logged, never silent.
        let cases = [
            ("modify", modify_fanout(), usize::MAX),
            ("modify_delete", modify_delete_fanout(), 1_000),
            ("insert_data", insert_data_fanout(n), usize::MAX),
        ];
        for (name, op, reference_max_n) in &cases {
            let mut group = c.benchmark_group(format!("bulk_update/{name}"));
            group.sample_size(10);
            group.bench_with_input(BenchmarkId::new("batched", n), op, |b, op| {
                b.iter_batched(
                    || db.clone(),
                    |mut db| ontoaccess::execute_update_op(&mut db, &mapping, op).unwrap(),
                    BatchSize::LargeInput,
                )
            });
            if n > *reference_max_n {
                eprintln!(
                    "bulk_update/{name}: skipping per_row_reference at N={n} \
                     (quadratic edge materialization; capped at {reference_max_n})"
                );
            } else {
                group.bench_with_input(BenchmarkId::new("per_row_reference", n), op, |b, op| {
                    b.iter_batched(
                        || db.clone(),
                        |mut db| {
                            ontoaccess::execute_update_op_reference(&mut db, &mapping, op).unwrap()
                        },
                        BatchSize::LargeInput,
                    )
                });
            }
            group.finish();
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_batched_vs_per_row
}
criterion_main!(benches);
