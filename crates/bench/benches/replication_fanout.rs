//! Replication fan-out acceptance bench: one durable leader, N read
//! replicas over loopback HTTP.
//!
//! * **query_fanout_96req/{1,2,4}** — the http_throughput read batch
//!   (96 cached SELECT queries) absorbed by 1/2/4 followers instead of
//!   the leader. Followers are fully independent mediators, so the
//!   batch should not get slower as it spreads — replication's
//!   read-scaling claim over real sockets.
//! * **apply_lag_24commits/{1,2,4}** — the durability bench's write
//!   load (a batch of single-row committed updates) pushed through the
//!   leader, measured until **every** follower reports the leader's
//!   commit frontier applied. This is the steady-state shipping cost:
//!   WAL bytes over the wire plus replay, per fan-out width.
//!
//! Emits `CRITERION_JSON` lines like the other benches; the checked-in
//! snapshot is `BENCH_replication.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fixtures::data::Spec;
use fixtures::http_probe::{urlencode, ProbeConn};
use ontoaccess::Mediator;
use ontoaccess_server::{serve, ServerConfig, ServerHandle};
use repl::{ReplicationStatus, Replicator, ReplicatorConfig};
use std::cell::Cell;
use std::time::{Duration, Instant};

fn boot_leader(dir: &std::path::Path, n: usize) -> (Mediator, ServerHandle) {
    let spec = Spec {
        teams: n,
        authors: n,
        publishers: 50.min(n),
        pubtypes: 4,
        publications: n,
        authors_per_publication: 2,
    };
    let mut db = fixtures::database();
    fixtures::data::populate(&mut db, &spec, 5);
    let (mediator, _) = Mediator::open_durable(dir, db, fixtures::mapping()).unwrap();
    let server = serve(
        mediator.clone(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            queue_capacity: 256,
            keep_alive_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral leader port");
    (mediator, server)
}

struct Follower {
    server: ServerHandle,
    status: ReplicationStatus,
    replicator: Replicator,
}

fn attach_followers(leader: &ServerHandle, count: usize) -> Vec<Follower> {
    (0..count)
        .map(|_| {
            let (mediator, replicator) = Replicator::start(
                leader.addr().to_string(),
                fixtures::database(),
                fixtures::mapping(),
                ReplicatorConfig {
                    poll_timeout: Duration::from_millis(500),
                    ..ReplicatorConfig::default()
                },
            )
            .expect("bootstrap follower");
            let status = replicator.status();
            let server = serve(
                mediator,
                "127.0.0.1:0",
                ServerConfig {
                    workers: 4,
                    queue_capacity: 256,
                    keep_alive_timeout: Duration::from_secs(10),
                    ..ServerConfig::default()
                },
            )
            .expect("bind ephemeral follower port");
            Follower {
                server,
                status,
                replicator,
            }
        })
        .collect()
}

fn wait_all_applied(followers: &[Follower], target_seq: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    for follower in followers {
        while follower.status.snapshot().applied_seq < target_seq {
            assert!(
                Instant::now() < deadline,
                "follower never caught up to seq {target_seq}: {:?}",
                follower.status.snapshot()
            );
            std::thread::yield_now();
        }
    }
}

fn teardown(followers: Vec<Follower>) {
    for follower in followers {
        follower.server.shutdown();
        follower.replicator.stop();
    }
}

fn query_request(query: &str) -> String {
    format!(
        "GET /sparql?query={} HTTP/1.1\r\nHost: bench\r\n\r\n",
        urlencode(query)
    )
}

fn bench_query_fanout(c: &mut Criterion) {
    const BATCH: usize = 96;
    let dir = fixtures::scratch_dir("bench-repl-fanout");
    let (leader, server) = boot_leader(&dir, 500);
    let requests: Vec<String> = [
        fixtures::workload::select_authors_with_team(),
        fixtures::workload::select_publications_with_authors(),
        fixtures::workload::select_recent_publications(2000),
    ]
    .iter()
    .map(|q| query_request(q))
    .collect();
    let mut group = c.benchmark_group("replication_fanout/query_fanout_96req");
    group.sample_size(10);
    for followers in [1usize, 2, 4] {
        let fleet = attach_followers(&server, followers);
        wait_all_applied(&fleet, leader.concurrency_stats().current_version);
        // Warm every follower's compiled-query cache and join indexes.
        for follower in &fleet {
            let mut conn = ProbeConn::connect(follower.server.addr()).unwrap();
            for request in &requests {
                assert_eq!(conn.send(request).unwrap().status, 200);
            }
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(followers),
            &followers,
            |b, &followers| {
                b.iter(|| {
                    // One client thread per follower, the batch split
                    // evenly — the fan-out analogue of the
                    // http_throughput keep-alive batch.
                    std::thread::scope(|scope| {
                        let per_follower = BATCH / followers;
                        let mut handles = Vec::with_capacity(followers);
                        for (t, follower) in fleet.iter().enumerate() {
                            let requests = &requests;
                            let addr = follower.server.addr();
                            handles.push(scope.spawn(move || {
                                let mut conn = ProbeConn::connect(addr).unwrap();
                                for i in 0..per_follower {
                                    let request = &requests[(t + i) % requests.len()];
                                    assert_eq!(conn.send(request).unwrap().status, 200);
                                }
                            }));
                        }
                        for handle in handles {
                            handle.join().unwrap();
                        }
                    })
                })
            },
        );
        teardown(fleet);
    }
    group.finish();
    server.shutdown();
    drop(leader);
    std::fs::remove_dir_all(&dir).unwrap();
}

fn bench_apply_lag(c: &mut Criterion) {
    const COMMITS: usize = 24;
    let dir = fixtures::scratch_dir("bench-repl-lag");
    let (leader, server) = boot_leader(&dir, 100);
    let mut group = c.benchmark_group("replication_fanout/apply_lag_24commits");
    group.sample_size(10);
    let counter = Cell::new(0u64);
    for followers in [1usize, 2, 4] {
        let fleet = attach_followers(&server, followers);
        wait_all_applied(&fleet, leader.concurrency_stats().current_version);
        group.bench_with_input(
            BenchmarkId::from_parameter(followers),
            &followers,
            |b, _| {
                b.iter(|| {
                    // The durability-bench write shape: single-row
                    // committed inserts, each one WAL unit, measured
                    // until the whole fleet has replayed them.
                    for _ in 0..COMMITS {
                        let i = counter.get();
                        counter.set(i + 1);
                        let update = fixtures::workload::with_prefixes(&format!(
                            "INSERT DATA {{ ex:author{} foaf:family_name \"Lag{i}\" . }}",
                            9_000_000 + i
                        ));
                        leader.execute_update(&update).unwrap();
                    }
                    wait_all_applied(&fleet, leader.concurrency_stats().current_version);
                })
            },
        );
        teardown(fleet);
    }
    group.finish();
    server.shutdown();
    drop(leader);
    std::fs::remove_dir_all(&dir).unwrap();
}

criterion_group! {
    name = benches;
    // Bounded per-point runtime so the full suite finishes quickly;
    // pass --measurement-time to override for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_query_fanout, bench_apply_lag
}
criterion_main!(benches);
