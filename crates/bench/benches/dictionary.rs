//! Dictionary-encoded storage acceptance bench (ISSUE 6).
//!
//! Claims to prove with numbers, against the pre-dictionary inline
//! encoding as baseline:
//!
//! * **Equality probes compare integers** — `text_eq/interned` compares
//!   `Value::Text` symbol pairs (one u32 each); `text_eq/inline_strings`
//!   compares the same 64-byte URI-like strings by content, which is
//!   what every probe, residual filter, and index lookup paid before.
//! * **Link-join time** — the publication↔author link join at 1k rows
//!   per table runs through interned index keys end to end.
//! * **WAL bytes/commit and snapshot bytes** — the durable artifacts of
//!   a text-heavy workload, measured, next to the inline-encoding
//!   baseline computed from the same workload (a TEXT cell inline costs
//!   `4 + len` bytes per occurrence; dictionary-encoded it costs 4, plus
//!   a one-time `4 + len` delta and 8 bytes of `base`/`n_new` framing
//!   per commit unit). Emitted as `*_bytes` JSON metric lines.
//! * **Recovery replays fast** — a full open over the text-heavy WAL
//!   suffix, with rows/sec derived and emitted.
//!
//! Emits `CRITERION_JSON` lines like the other benches; the checked-in
//! snapshot is `BENCH_dictionary.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fixtures::data::Spec;
use rdf::namespace::PrefixMap;
use rel::{Sym, Value};
use sparql::Query;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

// Append a metric line to the same JSON-lines file the criterion shim
// writes, so byte counters land next to the timing series.
fn emit_metric(line: &str) {
    eprintln!("{line}");
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        use std::io::Write as _;
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(file, "{line}");
        }
    }
}

// ----------------------------------------------------------------------
// Equality probe: interned ids vs string content
// ----------------------------------------------------------------------

fn bench_text_eq(c: &mut Criterion) {
    const PAIRS: usize = 4096;
    // URI-like strings with a long shared prefix: equal-compare is the
    // worst case for content comparison (full memcmp) and the common
    // case for join probes.
    let strings: Vec<String> = (0..PAIRS)
        .map(|i| format!("http://example.org/db/publication/2009/proceedings/{i:08}"))
        .collect();
    let interned_a: Vec<Value> = strings.iter().map(Value::text).collect();
    let interned_b = interned_a.clone();
    let inline_a = strings.clone();
    let inline_b = strings.clone();

    let mut group = c.benchmark_group("dictionary/text_eq");
    group.bench_function(BenchmarkId::from_parameter("interned"), |b| {
        b.iter(|| {
            let mut equal = 0usize;
            for (x, y) in interned_a.iter().zip(&interned_b) {
                if black_box(x) == black_box(y) {
                    equal += 1;
                }
            }
            assert_eq!(equal, PAIRS);
        })
    });
    group.bench_function(BenchmarkId::from_parameter("inline_strings"), |b| {
        b.iter(|| {
            let mut equal = 0usize;
            for (x, y) in inline_a.iter().zip(&inline_b) {
                if black_box(x) == black_box(y) {
                    equal += 1;
                }
            }
            assert_eq!(equal, PAIRS);
        })
    });
    group.finish();
}

// ----------------------------------------------------------------------
// Link join at 1k rows through interned index keys
// ----------------------------------------------------------------------

fn bench_link_join(c: &mut Criterion) {
    let n = 1000usize;
    let spec = Spec {
        teams: n,
        authors: n,
        publishers: 50,
        pubtypes: 4,
        publications: n,
        authors_per_publication: 2,
    };
    let mut db = fixtures::database();
    fixtures::data::populate(&mut db, &spec, 5);

    let mapping = fixtures::mapping();
    let Query::Select(select) = sparql::parse_query_with_prefixes(
        &fixtures::workload::select_publications_with_authors(),
        PrefixMap::common(),
    )
    .unwrap() else {
        unreachable!()
    };
    let compiled = ontoaccess::compile_select(&db, &mapping, &select).unwrap();
    ontoaccess::ensure_join_indexes(&mut db, &compiled).unwrap();

    let mut group = c.benchmark_group("dictionary/link_join");
    group.sample_size(20);
    group.bench_function(BenchmarkId::from_parameter(n), |b| {
        b.iter(|| {
            rel::sql::execute(&mut db, &rel::sql::Statement::Select(compiled.sql.clone())).unwrap()
        })
    });
    group.finish();
}

// ----------------------------------------------------------------------
// Durable artifact sizes + recovery replay over a text-heavy workload
// ----------------------------------------------------------------------

const COMMITS: usize = 16;
const ROWS_PER_COMMIT: usize = 64;
// One shared literal per workload, repeated in every inserted row — the
// repetitive shape (team names, publishers, types) the dictionary
// deduplicates.
const SHARED: &str = "Institute for Information Systems, Example University";

fn insert_commit(k: usize) -> String {
    let mut body = String::new();
    for r in 0..ROWS_PER_COMMIT {
        let id = 3_000_000 + k * ROWS_PER_COMMIT + r;
        let _ = writeln!(body, "ex:author{id} foaf:family_name \"{SHARED}\" .");
    }
    fixtures::workload::with_prefixes(&format!("INSERT DATA {{\n{body}}}"))
}

// Inline-encoding cost of every TEXT cell currently stored: `4 + len`
// per occurrence, vs `4` dictionary-encoded plus one `4 + len` table
// entry per distinct string (and 4 bytes of symbol count).
fn snapshot_inline_estimate(db: &rel::Database, snapshot_dict_bytes: u64) -> u64 {
    use std::collections::HashSet;
    let mut occurrence_bytes = 0u64;
    let mut unique: HashSet<Sym> = HashSet::new();
    for table in db.schema().tables() {
        for (_, row) in db.scan(&table.name).unwrap() {
            for value in row {
                if let Value::Text(s) = value {
                    occurrence_bytes += s.as_str().len() as u64;
                    unique.insert(*s);
                }
            }
        }
    }
    let dict_section: u64 = 4 + unique
        .iter()
        .map(|s| 4 + s.as_str().len() as u64)
        .sum::<u64>();
    snapshot_dict_bytes - dict_section + occurrence_bytes
}

fn bench_durable_artifacts(c: &mut Criterion) {
    let dir = fixtures::scratch_dir("bench-dictionary");
    let (mediator, _) = fixtures::durable_mediator_with_sample_data(&dir);

    // Phase 1: committed workload → WAL bytes per commit.
    let wal_before = mediator.durability_stats().unwrap().wal_bytes;
    for k in 0..COMMITS {
        mediator.execute_update(&insert_commit(k)).unwrap();
    }
    let wal_dict = mediator.durability_stats().unwrap().wal_bytes - wal_before;
    // Inline baseline: every occurrence carries its bytes; no dictionary
    // delta (4 + len, charged once) and no base/n_new framing (8/unit).
    let occurrences = (COMMITS * ROWS_PER_COMMIT) as u64;
    let wal_inline = wal_dict + occurrences * SHARED.len() as u64
        - (4 + SHARED.len() as u64)
        - (COMMITS as u64) * 8;
    emit_metric(&format!(
        "{{\"id\":\"dictionary/wal_bytes_per_commit\",\"dict\":{},\"inline_estimate\":{}}}",
        wal_dict / COMMITS as u64,
        wal_inline / COMMITS as u64,
    ));

    // Phase 2: checkpoint → snapshot bytes.
    let seq = mediator.checkpoint().unwrap();
    let snapshot_dict = std::fs::metadata(dir.join(dur::snapshot::snapshot_file_name(seq)))
        .expect("checkpoint wrote its snapshot")
        .len();
    let snapshot_inline = snapshot_inline_estimate(&mediator.database(), snapshot_dict);
    emit_metric(&format!(
        "{{\"id\":\"dictionary/snapshot_bytes\",\"dict\":{snapshot_dict},\"inline_estimate\":{snapshot_inline}}}",
    ));

    // Phase 3: more commits past the checkpoint, then time recovery.
    for k in COMMITS..2 * COMMITS {
        mediator.execute_update(&insert_commit(k)).unwrap();
    }
    drop(mediator);

    let rows = (COMMITS * ROWS_PER_COMMIT) as u64;
    let open_recovered = || {
        let opened = dur::Durability::open(&dir, {
            let mut db = fixtures::database();
            fixtures::seed_paper_rows(&mut db);
            db
        })
        .unwrap();
        assert_eq!(opened.report.rows_replayed, rows);
        opened
    };
    let mut group = c.benchmark_group("dictionary/recovery_replay");
    group.sample_size(15);
    group.bench_function(BenchmarkId::from_parameter(format!("rows_{rows}")), |b| {
        b.iter(&open_recovered)
    });
    group.finish();

    let started = Instant::now();
    let opened = open_recovered();
    let elapsed = started.elapsed();
    emit_metric(&format!(
        "{{\"id\":\"dictionary/recovery_rows_per_sec\",\"rows\":{rows},\"rows_per_sec\":{:.0}}}",
        opened.report.rows_replayed as f64 / elapsed.as_secs_f64(),
    ));
    drop(opened);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_text_eq, bench_link_join, bench_durable_artifacts
}
criterion_main!(benches);
