//! HTTP throughput acceptance bench for the SPARQL Protocol server.
//!
//! Measures loopback requests over real sockets against a running
//! server instance:
//!
//! * **query_keepalive_96req/{1,4,8}** — a fixed batch of 96 cached
//!   SELECT queries split across 1/4/8 client threads, each holding
//!   one keep-alive connection. With per-worker `ReadSession`s the
//!   batch should not get slower as client threads are added — the
//!   HTTP-level version of PR 3's reader-scaling claim.
//! * **update_roundtrip/1** — one full POST `/update` round trip
//!   (translate, execute, commit, RDF feedback document) per
//!   iteration, on a keep-alive connection.
//!
//! Emits `CRITERION_JSON` lines like the other benches; the checked-in
//! snapshot is `BENCH_http_throughput.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fixtures::data::Spec;
use fixtures::http_probe::{urlencode, ProbeConn};
use ontoaccess::Mediator;
use ontoaccess_server::{serve, ServerConfig, ServerHandle};
use std::cell::Cell;
use std::net::SocketAddr;
use std::time::Duration;

fn populated_mediator(n: usize) -> Mediator {
    let spec = Spec {
        teams: n,
        authors: n,
        publishers: 50.min(n),
        pubtypes: 4,
        publications: n,
        authors_per_publication: 2,
    };
    let mut db = fixtures::database();
    fixtures::data::populate(&mut db, &spec, 5);
    Mediator::new(db, fixtures::mapping()).unwrap()
}

fn boot_server(workers: usize) -> ServerHandle {
    serve(
        populated_mediator(500),
        "127.0.0.1:0",
        ServerConfig {
            workers,
            queue_capacity: 256,
            keep_alive_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

// A keep-alive connection via the shared probe client; panics on any
// protocol error so the bench cannot silently measure failures.
struct Client {
    conn: ProbeConn,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        Client {
            conn: ProbeConn::connect(addr).expect("connect to bench server"),
        }
    }

    fn round_trip(&mut self, raw: &str) -> u16 {
        self.conn.send(raw).expect("request round trip").status
    }
}

fn query_request(query: &str) -> String {
    format!(
        "GET /sparql?query={} HTTP/1.1\r\nHost: bench\r\n\r\n",
        urlencode(query)
    )
}

fn update_request(update: &str) -> String {
    format!(
        "POST /update HTTP/1.1\r\nHost: bench\r\nContent-Type: application/sparql-update\r\n\
         Content-Length: {}\r\n\r\n{update}",
        update.len()
    )
}

fn bench_query_throughput(c: &mut Criterion) {
    const BATCH: usize = 96;
    let server = boot_server(8);
    let addr = server.addr();
    let requests: Vec<String> = [
        fixtures::workload::select_authors_with_team(),
        fixtures::workload::select_publications_with_authors(),
        fixtures::workload::select_recent_publications(2000),
    ]
    .iter()
    .map(|q| query_request(q))
    .collect();
    // Warm the compiled-query cache and the join indexes.
    {
        let mut client = Client::connect(addr);
        for request in &requests {
            assert_eq!(client.round_trip(request), 200);
        }
    }
    let mut group = c.benchmark_group("http_throughput/query_keepalive_96req");
    group.sample_size(15);
    for threads in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        let per_thread = BATCH / threads;
                        let mut handles = Vec::with_capacity(threads);
                        for t in 0..threads {
                            let requests = &requests;
                            handles.push(scope.spawn(move || {
                                let mut client = Client::connect(addr);
                                for i in 0..per_thread {
                                    let request = &requests[(t + i) % requests.len()];
                                    assert_eq!(client.round_trip(request), 200);
                                }
                            }));
                        }
                        for handle in handles {
                            handle.join().unwrap();
                        }
                    })
                })
            },
        );
    }
    group.finish();
    server.shutdown();
}

fn bench_update_roundtrip(c: &mut Criterion) {
    let server = boot_server(4);
    let addr = server.addr();
    let mut group = c.benchmark_group("http_throughput/update_roundtrip");
    group.sample_size(15);
    let counter = Cell::new(0u64);
    group.bench_function(BenchmarkId::from_parameter(1), |b| {
        let mut client = Client::connect(addr);
        b.iter(|| {
            // A fresh author per iteration: every round trip inserts
            // one row and returns a Confirmation document.
            let i = counter.get();
            counter.set(i + 1);
            let update = fixtures::workload::with_prefixes(&format!(
                "INSERT DATA {{ ex:author{} foaf:family_name \"Bench{i}\" . }}",
                8_000_000 + i
            ));
            assert_eq!(client.round_trip(&update_request(&update)), 200);
        })
    });
    group.finish();
    server.shutdown();
}

criterion_group! {
    name = benches;
    // Bounded per-point runtime so the full suite finishes quickly;
    // pass --measurement-time to override for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_query_throughput, bench_update_roundtrip
}
criterion_main!(benches);
