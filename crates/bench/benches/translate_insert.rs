//! Translation latency of `INSERT DATA` (Algorithm 1), swept over the
//! number of properties per subject and the size of the database the
//! translation consults.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ontoaccess::{translate, TranslateOptions};
use rdf::namespace::PrefixMap;
use sparql::UpdateOp;

fn parse_insert(text: &str) -> Vec<rdf::Triple> {
    match sparql::parse_update_with_prefixes(text, PrefixMap::common()).unwrap() {
        UpdateOp::InsertData { triples } => triples,
        _ => unreachable!(),
    }
}

fn bench_by_property_count(c: &mut Criterion) {
    let db = fixtures::data::populated_database(100, 1);
    let mapping = fixtures::mapping();
    let mut group = c.benchmark_group("translate_insert/properties");
    for props in [0usize, 1, 2, 3] {
        let triples = parse_insert(&fixtures::workload::insert_author(999_999, props, None));
        group.bench_with_input(BenchmarkId::from_parameter(props + 1), &triples, |b, t| {
            b.iter(|| {
                translate::insert::translate_insert_data(
                    &db,
                    &mapping,
                    t,
                    TranslateOptions::default(),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_by_database_size(c: &mut Criterion) {
    let mapping = fixtures::mapping();
    let triples = parse_insert(&fixtures::workload::insert_author(999_999, 3, None));
    let mut group = c.benchmark_group("translate_insert/db_size");
    for n in [10usize, 100, 1000] {
        let db = fixtures::data::populated_database(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| {
                translate::insert::translate_insert_data(
                    db,
                    &mapping,
                    &triples,
                    TranslateOptions::default(),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_complete_dataset(c: &mut Criterion) {
    // Listing 15's six-table shape: grouping + identification + FK
    // checks across sibling groups.
    let db = fixtures::data::populated_database(100, 1);
    let mapping = fixtures::mapping();
    let triples = parse_insert(&fixtures::workload::insert_complete_dataset(999_999));
    c.bench_function("translate_insert/complete_dataset", |b| {
        b.iter(|| {
            translate::insert::translate_insert_data(
                &db,
                &mapping,
                &triples,
                TranslateOptions::default(),
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    // Bounded per-point runtime so the full suite finishes quickly;
    // pass --measurement-time to override for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_by_property_count,
    bench_by_database_size,
    bench_complete_dataset
}
criterion_main!(benches);
