//! Translation latency of `DELETE DATA` (Algorithm 1): the
//! attribute-nulling UPDATE branch vs. the full row DELETE branch, and
//! the row lookup cost as the database grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ontoaccess::translate;
use rdf::namespace::PrefixMap;
use rel::Value;
use sparql::UpdateOp;

fn parse_delete(text: &str) -> Vec<rdf::Triple> {
    match sparql::parse_update_with_prefixes(text, PrefixMap::common()).unwrap() {
        UpdateOp::DeleteData { triples } => triples,
        _ => unreachable!(),
    }
}

// A database whose author ID_BASE has a known email.
fn db_with_known_email(n: usize) -> rel::Database {
    let mut db = fixtures::data::populated_database(n, 1);
    let rid = db
        .find_by_pk("author", &[Value::Int(fixtures::data::ID_BASE)])
        .unwrap()
        .unwrap();
    db.update_row(
        "author",
        rid,
        &[(
            "email".to_owned(),
            Value::text(format!("author{}@example.org", fixtures::data::ID_BASE)),
        )],
    )
    .unwrap();
    db
}

fn bench_update_branch(c: &mut Criterion) {
    let mapping = fixtures::mapping();
    let mut group = c.benchmark_group("translate_delete/update_branch");
    for n in [10usize, 100, 1000] {
        let db = db_with_known_email(n);
        let triples = parse_delete(&fixtures::workload::delete_author_email(
            fixtures::data::ID_BASE,
        ));
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| translate::delete::translate_delete_data(db, &mapping, &triples).unwrap())
        });
    }
    group.finish();
}

fn bench_row_delete_branch(c: &mut Criterion) {
    // Full coverage incl. the type triple → DELETE FROM.
    let mapping = fixtures::mapping();
    let mut db = fixtures::database();
    db.insert(
        "team",
        &[
            ("id".to_owned(), Value::Int(4)),
            ("name".to_owned(), Value::text("Database Technology")),
            ("code".to_owned(), Value::text("DBTG")),
        ],
    )
    .unwrap();
    let triples = parse_delete(
        "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
         PREFIX ont: <http://example.org/ontology#>\n\
         PREFIX ex: <http://example.org/db/>\n\
         DELETE DATA { ex:team4 a foaf:Group ; \
           foaf:name \"Database Technology\" ; ont:teamCode \"DBTG\" . }",
    );
    c.bench_function("translate_delete/row_delete_branch", |b| {
        b.iter(|| translate::delete::translate_delete_data(&db, &mapping, &triples).unwrap())
    });
}

criterion_group! {
    name = benches;
    // Bounded per-point runtime so the full suite finishes quickly;
    // pass --measurement-time to override for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_update_branch, bench_row_delete_branch
}
criterion_main!(benches);
