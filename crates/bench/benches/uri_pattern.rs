//! URI pattern throughput: matching (Algorithm 1 step 2 runs one match
//! per candidate pattern per subject) and generation (every
//! materialized row builds one instance URI).

use criterion::{criterion_group, criterion_main, Criterion};
use r3m::UriPattern;

fn bench_match(c: &mut Criterion) {
    let mapping = fixtures::mapping();
    let uris = [
        rdf::Iri::parse("http://example.org/db/author12345").unwrap(),
        rdf::Iri::parse("http://example.org/db/publisher3").unwrap(),
        rdf::Iri::parse("http://example.org/db/pubtype4").unwrap(),
        rdf::Iri::parse("http://example.org/db/pub999").unwrap(),
    ];
    c.bench_function("uri_pattern/identify_4_uris", |b| {
        b.iter(|| {
            for uri in &uris {
                criterion::black_box(mapping.identify(uri));
            }
        })
    });
}

fn bench_generate(c: &mut Criterion) {
    let pattern = UriPattern::parse("author%%id%%").unwrap();
    c.bench_function("uri_pattern/generate", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let id = i.to_string();
            pattern
                .generate(Some("http://example.org/db/"), &|_| {
                    Some(std::borrow::Cow::Owned(id.clone()))
                })
                .unwrap()
        })
    });
}

fn bench_mismatch_rejection(c: &mut Criterion) {
    // Worst case for identification: a URI matching no pattern.
    let mapping = fixtures::mapping();
    let uri = rdf::Iri::parse("http://example.org/db/wizard12345").unwrap();
    c.bench_function("uri_pattern/identify_miss", |b| {
        b.iter(|| criterion::black_box(mapping.identify(&uri)))
    });
}

criterion_group! {
    name = benches;
    // Bounded per-point runtime so the full suite finishes quickly;
    // pass --measurement-time to override for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_match, bench_generate, bench_mismatch_rejection
}
criterion_main!(benches);
