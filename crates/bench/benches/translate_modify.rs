//! End-to-end `MODIFY` cost (Algorithm 2), swept over the number of
//! bindings the WHERE clause produces — each binding yields one
//! DELETE DATA/INSERT DATA round through Algorithm 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ontoaccess::Endpoint;
use rel::Value;

// Database where team `ID_BASE` has exactly `members` authors, all with
// a title (so the MODIFY template binds for each).
fn database_with_team_of(members: usize) -> rel::Database {
    let mut db = fixtures::database();
    let a = |name: &str, v: Value| (name.to_owned(), v);
    let team = fixtures::data::ID_BASE;
    db.insert(
        "team",
        &[
            a("id", Value::Int(team)),
            a("name", Value::text("Big Team")),
            a("code", Value::text("BIG")),
        ],
    )
    .unwrap();
    for i in 0..members {
        let id = team + 1 + i as i64;
        db.insert(
            "author",
            &[
                a("id", Value::Int(id)),
                a("lastname", Value::text(format!("Last{id}"))),
                a("title", Value::text("Dr")),
                a("team", Value::Int(team)),
            ],
        )
        .unwrap();
    }
    db
}

fn bench_by_binding_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("translate_modify/bindings");
    group.sample_size(20);
    let mapping = fixtures::mapping();
    for members in [1usize, 4, 16, 64] {
        let request = fixtures::workload::modify_team_members(fixtures::data::ID_BASE, "Prof");
        let db = database_with_team_of(members);
        group.bench_with_input(
            BenchmarkId::from_parameter(members),
            &request,
            |b, request| {
                // Endpoints no longer clone; reset state by rebuilding
                // one over a cloned database in the untimed setup.
                b.iter_batched(
                    || Endpoint::new(db.clone(), mapping.clone()).unwrap(),
                    |mut ep| ep.execute_update(request).unwrap(),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_optimization_effect(c: &mut Criterion) {
    // §5.2 ablation: replacement MODIFY (delete optimized away, one
    // UPDATE) vs. explicit delete-then-insert as two operations (UPDATE
    // to NULL + UPDATE to value).
    let mut group = c.benchmark_group("translate_modify/replace_vs_two_ops");
    group.sample_size(20);
    // Sample data has author6 with a known email — both variants
    // replace it.
    let mut db = fixtures::database();
    fixtures::seed_paper_rows(&mut db);
    let mapping = fixtures::mapping();
    group.bench_function("modify_replacement", |b| {
        b.iter_batched(
            || Endpoint::new(db.clone(), mapping.clone()).unwrap(),
            |mut ep| {
                ep.execute_update(
                    "MODIFY DELETE { ?x foaf:mbox ?m . } \
                     INSERT { ?x foaf:mbox <mailto:n@x.ch> . } \
                     WHERE { ?x foaf:family_name \"Hert\" ; foaf:mbox ?m . }",
                )
                .unwrap()
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("delete_then_insert", |b| {
        b.iter_batched(
            || Endpoint::new(db.clone(), mapping.clone()).unwrap(),
            |mut ep| {
                ep.execute_update(
                    "DELETE DATA { ex:author6 foaf:mbox <mailto:hert@ifi.uzh.ch> . }",
                )
                .unwrap();
                ep.execute_update("INSERT DATA { ex:author6 foaf:mbox <mailto:n@x.ch> . }")
                    .unwrap()
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Bounded per-point runtime so the full suite finishes quickly;
    // pass --measurement-time to override for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_by_binding_count, bench_optimization_effect
}
criterion_main!(benches);
