//! Front-end parsing throughput: SPARQL/Update requests (the paper's
//! listing shapes), SPARQL queries, Turtle mapping documents, and the
//! SQL round-trip of emitted statements.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rdf::namespace::PrefixMap;

fn bench_sparql_update(c: &mut Criterion) {
    let inputs = [
        (
            "listing_9",
            fixtures::workload::insert_author(6, 3, Some(5)),
        ),
        (
            "listing_15",
            fixtures::workload::insert_complete_dataset(12),
        ),
        ("listing_17", fixtures::workload::delete_author_email(6)),
        ("listing_11", fixtures::workload::modify_author_email(6)),
    ];
    let mut group = c.benchmark_group("parse/sparql_update");
    for (name, text) in &inputs {
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_function(*name, |b| {
            b.iter(|| sparql::parse_update_with_prefixes(text, PrefixMap::common()).unwrap())
        });
    }
    group.finish();
}

fn bench_sparql_query(c: &mut Criterion) {
    let text = fixtures::workload::select_publications_with_authors();
    let mut group = c.benchmark_group("parse/sparql_query");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("link_join_select", |b| {
        b.iter(|| sparql::parse_query_with_prefixes(&text, PrefixMap::common()).unwrap())
    });
    group.finish();
}

fn bench_turtle_mapping(c: &mut Criterion) {
    let text = r3m::to_turtle(&fixtures::mapping());
    let mut group = c.benchmark_group("parse/turtle_mapping");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("full_mapping_document", |b| {
        b.iter(|| r3m::from_turtle(&text).unwrap())
    });
    group.finish();
}

fn bench_sql_roundtrip(c: &mut Criterion) {
    let statements = [
        "INSERT INTO author (id, title, firstname, lastname, email, team) \
         VALUES (6, 'Mr', 'Matthias', 'Hert', 'hert@ifi.uzh.ch', 5);",
        "UPDATE author SET email = NULL WHERE id = 6 AND email = 'hert@ifi.uzh.ch';",
        "SELECT DISTINCT t0.id AS x, t0.email FROM author t0, team t1 WHERE t0.team = t1.id;",
    ];
    c.bench_function("parse/sql_statements", |b| {
        b.iter(|| {
            for s in &statements {
                criterion::black_box(rel::sql::parse(s).unwrap());
            }
        })
    });
}

criterion_group! {
    name = benches;
    // Bounded per-point runtime so the full suite finishes quickly;
    // pass --measurement-time to override for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_sparql_update,
    bench_sparql_query,
    bench_turtle_mapping,
    bench_sql_roundtrip
}
criterion_main!(benches);
