//! Concurrency acceptance bench for the mediator API.
//!
//! Two claims to prove with numbers:
//!
//! * **Reader scaling** — `ReadSession` queries take `&self` and the
//!   database read lock is shared, so a fixed batch of cached queries
//!   should not get slower when split across 1 → 4 → 8 threads (the
//!   old `&mut self` endpoint serialized them by construction).
//! * **MODIFY is O(rows touched), not O(database)** — the savepoint-
//!   backed write path replaces the seed's `db.clone()` per MODIFY, so
//!   a MODIFY touching one row must stay ~flat while the database
//!   grows 10× and 40×.
//!
//! * **Readers are not serialized behind commits** — with MVCC snapshot
//!   reads, a query pins a published version and never waits on the
//!   writer, so reader latency with one sustained writer must stay
//!   within ~2x of the idle-writer baseline instead of absorbing whole
//!   commit (or open-transaction) durations. The storm series
//!   hand-measures per-query latencies (p50/p95) because the mean
//!   hides exactly the commit-wait tail this claim is about; it runs
//!   both a hot-loop bulk writer and a slow open-transaction writer
//!   (see [`WriterMode`] for which isolates what).
//!
//! Emits `CRITERION_JSON` lines like the other benches; the checked-in
//! snapshots are `BENCH_concurrent_read.json` and `BENCH_mvcc.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fixtures::data::Spec;
use ontoaccess::Mediator;
use std::cell::Cell;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

fn populated_mediator(n: usize) -> Mediator {
    let spec = Spec {
        teams: n,
        authors: n,
        publishers: 50.min(n),
        pubtypes: 4,
        publications: n,
        authors_per_publication: 2,
    };
    let mut db = fixtures::database();
    fixtures::data::populate(&mut db, &spec, 5);
    Mediator::new(db, fixtures::mapping()).unwrap()
}

// The read workload: the translated join queries of the publication use
// case, pre-warmed so every thread hits the shared compiled-query cache.
fn read_workload() -> Vec<String> {
    vec![
        fixtures::workload::select_authors_with_team(),
        fixtures::workload::select_publications_with_authors(),
        fixtures::workload::select_recent_publications(2000),
    ]
}

fn bench_reader_scaling(c: &mut Criterion) {
    // One fixed batch of queries, split evenly across the threads: with
    // shared read access, wall time should *drop* (or at worst hold)
    // as threads are added, instead of serializing.
    const BATCH: usize = 96;
    let mediator = populated_mediator(1000);
    let queries = read_workload();
    for q in &queries {
        mediator.select(q).unwrap(); // warm the cache + join indexes
    }
    let mut group = c.benchmark_group("concurrent_read/readers_96_queries");
    group.sample_size(15);
    for threads in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        let per_thread = BATCH / threads;
                        let mut handles = Vec::with_capacity(threads);
                        for t in 0..threads {
                            let session = mediator.read();
                            let queries = &queries;
                            handles.push(scope.spawn(move || {
                                let mut rows = 0usize;
                                for i in 0..per_thread {
                                    let q = &queries[(t + i) % queries.len()];
                                    rows += session.select(q).unwrap().len();
                                }
                                rows
                            }));
                        }
                        handles
                            .into_iter()
                            .map(|h| h.join().unwrap())
                            .sum::<usize>()
                    })
                })
            },
        );
    }
    group.finish();
}

fn bench_modify_latency_vs_database_size(c: &mut Criterion) {
    // One MODIFY touching exactly one author's email, at growing
    // database sizes. The seed endpoint paid an O(database) clone here;
    // the savepoint path must stay ~flat across the size series.
    let mut group = c.benchmark_group("concurrent_read/modify_one_row_vs_db_size");
    group.sample_size(15);
    for n in [100usize, 1000, 4000] {
        let mediator = populated_mediator(n);
        let target = fixtures::data::ID_BASE; // author 1000 always exists
                                              // Make sure the target has an email so every MODIFY binds once
                                              // (populate() gives ~70% of authors one; the insert is rejected
                                              // — harmlessly — when it already exists).
        let seed_email = fixtures::workload::with_prefixes(&format!(
            "INSERT DATA {{ ex:author{target} foaf:mbox <mailto:seed@x.org> . }}"
        ));
        let _ = mediator.execute_update(&seed_email);
        let counter = Cell::new(0u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                // A fresh address per iteration keeps the rows-touched
                // count at exactly one without no-op short-circuits.
                let i = counter.get();
                counter.set(i + 1);
                let request = fixtures::workload::with_prefixes(&format!(
                    "MODIFY DELETE {{ ex:author{target} foaf:mbox ?m . }} \
                     INSERT {{ ex:author{target} foaf:mbox <mailto:i{i}@x.org> . }} \
                     WHERE {{ ex:author{target} foaf:mbox ?m . }}"
                ));
                mediator.execute_update(&request).unwrap()
            })
        });
    }
    group.finish();
}

// Append a hand-built JSON line to the `CRITERION_JSON` file (the
// storm series reports percentiles, which the shim's mean/median
// per-iteration summary cannot express).
fn emit_json_line(line: &str) {
    println!("{line}");
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(file, "{line}");
        }
    }
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

#[derive(Clone, Copy, PartialEq)]
enum WriterMode {
    /// No writer at all: the baseline the other two compare against.
    Idle,
    /// Hot loop of bulk commits. On a multi-core host this isolates
    /// lock contention; on a single-core host it mostly measures CPU
    /// timesharing (the writer competes for the one core regardless of
    /// how cheap the locking is), so read the ratio accordingly.
    HotLoop,
    /// One small write per transaction, but the transaction stays open
    /// through a simulated think-time/IO window before committing.
    /// This is the series that isolates *lock* contention from CPU
    /// contention: the CPU is idle during the window, so any reader
    /// slowdown is pure blocking behind the open transaction. Under
    /// the old single-RwLock design readers stalled for the entire
    /// window; with MVCC snapshots they never notice it.
    SlowTxn,
}

fn bench_read_under_write_storm(_c: &mut Criterion) {
    // One reader measuring per-query latency for a fixed batch against
    // each writer mode. The acceptance criterion is reader p50 with a
    // sustained writer within 2x of the idle baseline on the series
    // that measures lock contention for the host (slow_txn_writer on a
    // single-core box, either series on multi-core).
    const QUERIES: usize = 400;
    const SLOW_TXN_WINDOW: std::time::Duration = std::time::Duration::from_millis(5);
    let queries = read_workload();
    for (label, mode) in [
        ("idle_writer", WriterMode::Idle),
        ("storm_writer", WriterMode::HotLoop),
        ("slow_txn_writer", WriterMode::SlowTxn),
    ] {
        // A fresh mediator per series: the writers grow the database,
        // and query cost grows with it, so sharing one would fold the
        // previous series' inserts into the next one's latencies.
        let mediator = populated_mediator(1000);
        for q in &queries {
            mediator.select(q).unwrap(); // warm the cache + join indexes
        }
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let writer = (mode != WriterMode::Idle).then(|| {
                let mediator = mediator.clone();
                let stop = &stop;
                scope.spawn(move || {
                    // Far above any populated id so inserts never trip
                    // PK rejections.
                    let mut base = 4_000_000i64;
                    let mut commits = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        match mode {
                            // Bulk commits: each iteration inserts one
                            // complete dataset (team, authors,
                            // publication, links) as one transaction at
                            // a fresh id range.
                            WriterMode::HotLoop => {
                                let script = fixtures::workload::insert_complete_dataset(base);
                                mediator
                                    .execute_script(&script, true)
                                    .expect("bulk insert commits");
                                base += 100;
                            }
                            // One insert, then hold the transaction
                            // open through the think-time window.
                            WriterMode::SlowTxn => {
                                let mut txn = mediator.write();
                                txn.update(&fixtures::workload::insert_author(base, 2, None))
                                    .expect("insert applies");
                                std::thread::sleep(SLOW_TXN_WINDOW);
                                txn.commit().expect("commit succeeds");
                                base += 1;
                            }
                            WriterMode::Idle => unreachable!(),
                        }
                        commits += 1;
                    }
                    commits
                })
            });
            let session = mediator.read();
            let mut latencies_ns = Vec::with_capacity(QUERIES);
            let mut rows = 0usize;
            for i in 0..QUERIES {
                let q = &queries[i % queries.len()];
                let start = Instant::now();
                rows += session.select(q).unwrap().len();
                latencies_ns.push(start.elapsed().as_nanos() as u64);
            }
            stop.store(true, Ordering::Relaxed);
            let commits = writer.map_or(0, |w| w.join().unwrap());
            latencies_ns.sort_unstable();
            let p50 = percentile_us(&latencies_ns, 0.50);
            let p95 = percentile_us(&latencies_ns, 0.95);
            let max = percentile_us(&latencies_ns, 1.0);
            criterion::black_box(rows);
            emit_json_line(&format!(
                "{{\"id\":\"concurrent_read/read_under_write_storm/{label}\",\
                 \"queries\":{QUERIES},\"p50_us\":{p50:.1},\"p95_us\":{p95:.1},\
                 \"max_us\":{max:.1},\"writer_commits\":{commits}}}"
            ));
        });
    }
}

criterion_group! {
    name = benches;
    // Bounded per-point runtime so the full suite finishes quickly;
    // pass --measurement-time to override for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_reader_scaling, bench_modify_latency_vs_database_size,
        bench_read_under_write_storm
}
criterion_main!(benches);
