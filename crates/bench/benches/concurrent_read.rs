//! Concurrency acceptance bench for the mediator API.
//!
//! Two claims to prove with numbers:
//!
//! * **Reader scaling** — `ReadSession` queries take `&self` and the
//!   database read lock is shared, so a fixed batch of cached queries
//!   should not get slower when split across 1 → 4 → 8 threads (the
//!   old `&mut self` endpoint serialized them by construction).
//! * **MODIFY is O(rows touched), not O(database)** — the savepoint-
//!   backed write path replaces the seed's `db.clone()` per MODIFY, so
//!   a MODIFY touching one row must stay ~flat while the database
//!   grows 10× and 40×.
//!
//! Emits `CRITERION_JSON` lines like the other benches; the checked-in
//! snapshot is `BENCH_concurrent_read.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fixtures::data::Spec;
use ontoaccess::Mediator;
use std::cell::Cell;

fn populated_mediator(n: usize) -> Mediator {
    let spec = Spec {
        teams: n,
        authors: n,
        publishers: 50.min(n),
        pubtypes: 4,
        publications: n,
        authors_per_publication: 2,
    };
    let mut db = fixtures::database();
    fixtures::data::populate(&mut db, &spec, 5);
    Mediator::new(db, fixtures::mapping()).unwrap()
}

// The read workload: the translated join queries of the publication use
// case, pre-warmed so every thread hits the shared compiled-query cache.
fn read_workload() -> Vec<String> {
    vec![
        fixtures::workload::select_authors_with_team(),
        fixtures::workload::select_publications_with_authors(),
        fixtures::workload::select_recent_publications(2000),
    ]
}

fn bench_reader_scaling(c: &mut Criterion) {
    // One fixed batch of queries, split evenly across the threads: with
    // shared read access, wall time should *drop* (or at worst hold)
    // as threads are added, instead of serializing.
    const BATCH: usize = 96;
    let mediator = populated_mediator(1000);
    let queries = read_workload();
    for q in &queries {
        mediator.select(q).unwrap(); // warm the cache + join indexes
    }
    let mut group = c.benchmark_group("concurrent_read/readers_96_queries");
    group.sample_size(15);
    for threads in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        let per_thread = BATCH / threads;
                        let mut handles = Vec::with_capacity(threads);
                        for t in 0..threads {
                            let session = mediator.read();
                            let queries = &queries;
                            handles.push(scope.spawn(move || {
                                let mut rows = 0usize;
                                for i in 0..per_thread {
                                    let q = &queries[(t + i) % queries.len()];
                                    rows += session.select(q).unwrap().len();
                                }
                                rows
                            }));
                        }
                        handles
                            .into_iter()
                            .map(|h| h.join().unwrap())
                            .sum::<usize>()
                    })
                })
            },
        );
    }
    group.finish();
}

fn bench_modify_latency_vs_database_size(c: &mut Criterion) {
    // One MODIFY touching exactly one author's email, at growing
    // database sizes. The seed endpoint paid an O(database) clone here;
    // the savepoint path must stay ~flat across the size series.
    let mut group = c.benchmark_group("concurrent_read/modify_one_row_vs_db_size");
    group.sample_size(15);
    for n in [100usize, 1000, 4000] {
        let mediator = populated_mediator(n);
        let target = fixtures::data::ID_BASE; // author 1000 always exists
                                              // Make sure the target has an email so every MODIFY binds once
                                              // (populate() gives ~70% of authors one; the insert is rejected
                                              // — harmlessly — when it already exists).
        let seed_email = fixtures::workload::with_prefixes(&format!(
            "INSERT DATA {{ ex:author{target} foaf:mbox <mailto:seed@x.org> . }}"
        ));
        let _ = mediator.execute_update(&seed_email);
        let counter = Cell::new(0u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                // A fresh address per iteration keeps the rows-touched
                // count at exactly one without no-op short-circuits.
                let i = counter.get();
                counter.set(i + 1);
                let request = fixtures::workload::with_prefixes(&format!(
                    "MODIFY DELETE {{ ex:author{target} foaf:mbox ?m . }} \
                     INSERT {{ ex:author{target} foaf:mbox <mailto:i{i}@x.org> . }} \
                     WHERE {{ ex:author{target} foaf:mbox ?m . }}"
                ));
                mediator.execute_update(&request).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Bounded per-point runtime so the full suite finishes quickly;
    // pass --measurement-time to override for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_reader_scaling, bench_modify_latency_vs_database_size
}
criterion_main!(benches);
