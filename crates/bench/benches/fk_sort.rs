//! Cost of Algorithm 1's statement sort (step 5) as the number of
//! statements per operation grows — the paper's Listing 15 shape
//! replicated k times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ontoaccess::translate::sort::sort_statements;
use rel::sql::{parse, Statement};

fn dataset_statements(k: usize) -> Vec<Statement> {
    // k complete datasets, deliberately in dependency-violating order
    // (children first) so the sort has real work to do.
    let mut out = Vec::new();
    for i in 0..k {
        let base = 10_000 + i as i64 * 10;
        for text in [
            format!(
                "INSERT INTO publication_author (publication, author) VALUES ({base}, {base});"
            ),
            format!(
                "INSERT INTO publication (id, title, year, type, publisher) \
                 VALUES ({base}, 'P', 2009, {base}, {base});"
            ),
            format!("INSERT INTO author (id, lastname, team) VALUES ({base}, 'L', {base});"),
            format!("INSERT INTO team (id, name) VALUES ({base}, 'T');"),
            format!("INSERT INTO pubtype (id, type) VALUES ({base}, 'x');"),
            format!("INSERT INTO publisher (id, name) VALUES ({base}, 'p');"),
        ] {
            out.push(parse(&text).unwrap());
        }
    }
    out
}

fn bench_sort(c: &mut Criterion) {
    let schema = fixtures::schema();
    let mut group = c.benchmark_group("fk_sort/statements");
    for k in [1usize, 4, 16, 64] {
        let statements = dataset_statements(k);
        group.bench_with_input(
            BenchmarkId::from_parameter(statements.len()),
            &statements,
            |b, stmts| {
                b.iter_batched(
                    || stmts.clone(),
                    |stmts| sort_statements(&schema, stmts).unwrap(),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_sort_already_ordered(c: &mut Criterion) {
    // Best case: input already satisfies every precedence.
    let schema = fixtures::schema();
    let sorted = sort_statements(&schema, dataset_statements(16)).unwrap();
    c.bench_function("fk_sort/already_ordered_96", |b| {
        b.iter_batched(
            || sorted.clone(),
            |stmts| sort_statements(&schema, stmts).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    // Bounded per-point runtime so the full suite finishes quickly;
    // pass --measurement-time to override for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_sort, bench_sort_already_ordered
}
criterion_main!(benches);
