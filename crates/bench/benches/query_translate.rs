//! SPARQL SELECT → SQL translation and execution (the read path
//! Algorithm 2 depends on), vs. native BGP matching on the materialized
//! graph, swept over database size and join depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdf::namespace::PrefixMap;
use sparql::Query;

fn parse_select(text: &str) -> sparql::SelectQuery {
    match sparql::parse_query_with_prefixes(text, PrefixMap::common()).unwrap() {
        Query::Select(s) => s,
        _ => unreachable!(),
    }
}

fn bench_queries(c: &mut Criterion) {
    let queries = [
        (
            "single_table",
            fixtures::workload::with_prefixes(
                "SELECT ?x ?n WHERE { ?x a foaf:Person ; foaf:family_name ?n . }",
            ),
        ),
        ("fk_join", fixtures::workload::select_authors_with_team()),
        (
            "link_join",
            fixtures::workload::select_publications_with_authors(),
        ),
        (
            "filter",
            fixtures::workload::select_recent_publications(2000),
        ),
    ];
    for (name, text) in &queries {
        let query = parse_select(text);
        let mut group = c.benchmark_group(format!("query_translate/{name}"));
        group.sample_size(20);
        for n in [10usize, 100, 400] {
            let db = fixtures::data::populated_database(n, 5);
            let mapping = fixtures::mapping();
            let graph = ontoaccess::materialize(&db, &mapping).unwrap();
            // The read path is `&Database` now — no per-iteration
            // endpoint clone needed to run a query.
            group.bench_with_input(
                BenchmarkId::new("sql_translation", n),
                &query,
                |b, query| b.iter(|| ontoaccess::execute_select(&db, &mapping, query).unwrap()),
            );
            group.bench_with_input(BenchmarkId::new("native_bgp", n), &query, |b, query| {
                b.iter(|| sparql::evaluate_select(&graph, query))
            });
        }
        group.finish();
    }
}

fn bench_compile_only(c: &mut Criterion) {
    // Pure translation cost (no execution): the fixed overhead the
    // mediator adds to every query.
    let db = fixtures::data::populated_database(100, 5);
    let mapping = fixtures::mapping();
    let query = parse_select(&fixtures::workload::select_publications_with_authors());
    c.bench_function("query_translate/compile_only", |b| {
        b.iter(|| ontoaccess::compile_select(&db, &mapping, &query).unwrap())
    });
}

criterion_group! {
    name = benches;
    // Bounded per-point runtime so the full suite finishes quickly;
    // pass --measurement-time to override for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_queries, bench_compile_only
}
criterion_main!(benches);
