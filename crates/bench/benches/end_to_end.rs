//! OntoAccess vs. native triple store: the same SPARQL/Update stream
//! through (a) the mediator — parse, translate, constraint-check,
//! FK-sort, execute on the relational engine — and (b) a native
//! in-memory triple store. Quantifies the paper's §3 trade-off: what
//! constraint checking and translation cost on top of raw triple
//! manipulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ontoaccess::Endpoint;
use rdf::Graph;

fn setup(n: usize) -> (rel::Database, Graph, Vec<String>) {
    let db = fixtures::data::populated_database(n, 5);
    let graph = ontoaccess::materialize(&db, &fixtures::mapping()).unwrap();
    // Insert-only workload so both sides accept everything.
    let updates: Vec<String> = (0..20)
        .map(|i| fixtures::workload::insert_author(2_000_000 + i, (i % 4) as usize, None))
        .collect();
    (db, graph, updates)
}

fn bench_insert_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end/insert_stream_20ops");
    group.sample_size(20);
    for n in [10usize, 100, 1000] {
        let (db, graph, updates) = setup(n);
        let mapping = fixtures::mapping();
        group.bench_with_input(BenchmarkId::new("ontoaccess", n), &updates, |b, updates| {
            // Endpoints no longer clone (state is shared behind the
            // mediator), so each iteration gets a fresh endpoint over a
            // cloned database — both in the untimed setup phase.
            b.iter_batched(
                || Endpoint::new(db.clone(), mapping.clone()).unwrap(),
                |mut ep| {
                    for u in updates {
                        ep.execute_update(u).unwrap();
                    }
                },
                criterion::BatchSize::SmallInput,
            )
        });
        let prefixes = Endpoint::new(db.clone(), mapping.clone())
            .unwrap()
            .prefixes()
            .clone();
        let parsed: Vec<sparql::UpdateOp> = updates
            .iter()
            .map(|u| sparql::parse_update_with_prefixes(u, prefixes.clone()).unwrap())
            .collect();
        group.bench_with_input(BenchmarkId::new("native_store", n), &parsed, |b, parsed| {
            b.iter_batched(
                || graph.clone(),
                |mut g| {
                    for op in parsed {
                        sparql::apply(&mut g, op).unwrap();
                    }
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_single_modify(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end/modify_email");
    group.sample_size(20);
    let mut db = fixtures::database();
    fixtures::seed_paper_rows(&mut db);
    let mapping = fixtures::mapping();
    let graph = ontoaccess::materialize(&db, &mapping).unwrap();
    let request = fixtures::workload::with_prefixes(
        "MODIFY DELETE { ?x foaf:mbox ?m . } \
         INSERT { ?x foaf:mbox <mailto:n@x.ch> . } \
         WHERE { ?x foaf:firstName \"Matthias\" ; foaf:mbox ?m . }",
    );
    group.bench_function("ontoaccess", |b| {
        b.iter_batched(
            || Endpoint::new(db.clone(), mapping.clone()).unwrap(),
            |mut ep| ep.execute_update(&request).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
    let op =
        sparql::parse_update_with_prefixes(&request, rdf::namespace::PrefixMap::common()).unwrap();
    group.bench_function("native_store", |b| {
        b.iter_batched(
            || graph.clone(),
            |mut g| sparql::apply(&mut g, &op).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_materialize(c: &mut Criterion) {
    // Cost of producing the full RDF dump (the D2R-style export path).
    let mut group = c.benchmark_group("end_to_end/materialize");
    group.sample_size(20);
    for n in [10usize, 100, 1000] {
        let db = fixtures::data::populated_database(n, 5);
        let mapping = fixtures::mapping();
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| ontoaccess::materialize(db, &mapping).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Bounded per-point runtime so the full suite finishes quickly;
    // pass --measurement-time to override for precision runs.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_insert_stream, bench_single_modify, bench_materialize
}
criterion_main!(benches);
