//! Regenerate every figure, table, and listing of the paper's
//! evaluation, printing paper-expected vs. generated output side by
//! side. The recorded results live in EXPERIMENTS.md.
//!
//! Usage: `cargo run -p ontoaccess-bench --bin experiments [-- FILTER]`
//! where FILTER is an optional experiment id (`fig1`, `fig2`, `table1`,
//! `mapping`, `l9`, `l13`, `l15`, `l17`, `l11`, `branches`). Without a
//! filter all experiments run.

use ontoaccess::Endpoint;
use rdf::namespace::{rdf_type, PrefixMap};
use rdf::Term;

fn main() {
    let filter: Option<String> = std::env::args().nth(1);
    let want = |id: &str| filter.as_deref().is_none_or(|f| f == id);

    if want("fig1") {
        figure_1();
    }
    if want("fig2") {
        figure_2();
    }
    if want("table1") {
        table_1();
    }
    if want("mapping") {
        mapping_listings();
    }
    if want("l9") {
        listing_9();
    }
    if want("l13") {
        listing_13();
    }
    if want("l15") {
        listing_15();
    }
    if want("l17") {
        listing_17();
    }
    if want("l11") {
        listing_11();
    }
    if want("branches") {
        state_dependent_branches();
    }
}

fn heading(id: &str, title: &str) {
    println!("\n================================================================");
    println!("[{id}] {title}");
    println!("================================================================");
}

fn run_and_print(ep: &mut Endpoint, request: &str) -> Vec<String> {
    println!("-- request:");
    for line in request.trim().lines() {
        println!("   {}", line.trim());
    }
    match ep.execute_update(request) {
        Ok(outcome) => {
            println!(
                "-- generated SQL ({} statement(s)):",
                outcome.statements_executed
            );
            let rendered: Vec<String> = outcome.statements.iter().map(|s| s.to_string()).collect();
            for stmt in &rendered {
                println!("   {stmt}");
            }
            if let Some(report) = &outcome.modify {
                println!("-- Algorithm 2 internals:");
                println!("   SELECT: {}", report.select_sql);
                println!("   bindings: {}", report.bindings);
                for t in &report.optimized_away {
                    println!("   optimized-away DELETE DATA: {t}");
                }
                for t in &report.insert_data {
                    println!("   INSERT DATA: {t}");
                }
            }
            rendered
        }
        Err(e) => {
            println!("-- rejected: {e}");
            Vec::new()
        }
    }
}

/// Figure 1 — the relational schema, printed as DDL.
fn figure_1() {
    heading("fig1", "Figure 1: RDB schema of the publication use case");
    println!("{}", fixtures::schema());
    println!(
        "(reconciliations: pubtype.type is VARCHAR per Listing 16; author \
         column order follows Listing 10; publication_author.id is \
         AUTO_INCREMENT so Listing 16's id-less insert succeeds)"
    );
}

/// Figure 2 — the domain ontology, grouped per class.
fn figure_2() {
    heading("fig2", "Figure 2: domain ontology (FOAF + DC + ONT)");
    let ontology = fixtures::ontology();
    let prefixes = PrefixMap::common();
    use rdf::namespace::{owl, rdfs};
    let classes = ontology.subjects_with(&rdf_type(), &Term::Iri(owl::Class()));
    for class in classes {
        let class_iri = class.as_iri().expect("classes are IRIs");
        println!("class {}", rdf::turtle::render_iri(class_iri, &prefixes));
        for prop in ontology.subjects_with(&rdfs::domain(), &class) {
            let prop_iri = prop.as_iri().expect("properties are IRIs");
            let range = ontology
                .object(&prop, &rdfs::range())
                .expect("every property has a range");
            let kind = ontology
                .object(&prop, &rdf_type())
                .expect("every property is typed");
            let kind = match kind.as_iri() {
                Some(iri) if iri == &owl::ObjectProperty() => "object",
                _ => "data",
            };
            println!(
                "    {:<22} → {:<18} ({kind})",
                rdf::turtle::render_iri(prop_iri, &prefixes),
                rdf::turtle::render_term(&range, &prefixes),
            );
        }
        println!();
    }
}

/// Table 1 — regenerate the mapping overview from the live mapping.
fn table_1() {
    heading("table1", "Table 1: use case mapping overview");
    let mapping = fixtures::mapping();
    let prefixes = PrefixMap::common();
    println!("{:<44} {:<12} → property", "table → class", "attribute");
    println!("{}", "-".repeat(76));
    for table in &mapping.tables {
        let class = rdf::turtle::render_iri(&table.class, &prefixes);
        let mut first = true;
        for attr in &table.attributes {
            let Some(p) = &attr.property else { continue };
            let left = if first {
                format!("{} → {}", table.table_name, class)
            } else {
                String::new()
            };
            first = false;
            println!(
                "{:<44} {:<12} → {}",
                left,
                attr.attribute_name,
                rdf::turtle::render_iri(p.property(), &prefixes)
            );
        }
        if first {
            println!("{} → {}", table.table_name, class);
        }
    }
    for link in &mapping.link_tables {
        println!(
            "{:<44} {:<12} → {}",
            format!("{} → –", link.table_name),
            "–",
            rdf::turtle::render_iri(&link.property, &prefixes)
        );
    }
}

/// Listings 1-5 — the mapping's own RDF representation.
fn mapping_listings() {
    heading("mapping", "Listings 1-5: the R3M mapping document (Turtle)");
    let text = r3m::to_turtle(&fixtures::mapping());
    println!("{text}");
    // Round-trip sanity.
    let reloaded = r3m::from_turtle(&text).expect("document reloads");
    let mut original = fixtures::mapping();
    original.normalize();
    assert_eq!(reloaded, original, "serialized mapping round-trips");
    println!("(round-trip verified: parse(serialize(mapping)) == mapping)");
}

fn listing_9() {
    heading("l9", "Listing 9 → Listing 10: INSERT DATA for author6");
    let mut ep = fixtures::endpoint();
    ep.execute_update(
        r#"INSERT DATA { ex:team5 foaf:name "Software Engineering" ; ont:teamCode "SEAL" . }"#,
    )
    .expect("seed team 5");
    let generated = run_and_print(
        &mut ep,
        r#"INSERT DATA {
             ex:author6 foaf:title "Mr" ;
               foaf:firstName "Matthias" ;
               foaf:family_name "Hert" ;
               foaf:mbox <mailto:hert@ifi.uzh.ch> ;
               ont:team ex:team5 .
           }"#,
    );
    let expected = "INSERT INTO author (id, title, firstname, lastname, email, team) \
                    VALUES (6, 'Mr', 'Matthias', 'Hert', 'hert@ifi.uzh.ch', 5);";
    println!("-- paper (Listing 10):\n   {expected}");
    println!("-- match: {}", generated == vec![expected.to_owned()]);
}

fn listing_13() {
    heading("l13", "Listing 13 → Listing 14: INSERT DATA for team4");
    let mut ep = fixtures::endpoint();
    let generated = run_and_print(
        &mut ep,
        r#"INSERT DATA {
             ex:team4 foaf:name "Database Technology" ;
               ont:teamCode "DBTG" .
           }"#,
    );
    let expected = "INSERT INTO team (id, name, code) VALUES (4, 'Database Technology', 'DBTG');";
    println!("-- paper (Listing 14):\n   {expected}");
    println!("-- match: {}", generated == vec![expected.to_owned()]);
}

fn listing_15() {
    heading(
        "l15",
        "Listing 15 → Listing 16: complete dataset, FK-sorted",
    );
    let mut ep = fixtures::endpoint();
    let generated = run_and_print(
        &mut ep,
        r#"INSERT DATA {
             ex:pub12 dc:title "Relational Databases as Semantic Web Endpoints" ;
               ont:pubYear "2009" ;
               ont:pubType ex:pubtype4 ;
               dc:publisher ex:publisher3 ;
               dc:creator ex:author6 .
             ex:author6 foaf:title "Mr" ;
               foaf:firstName "Matthias" ;
               foaf:family_name "Hert" ;
               foaf:mbox <mailto:hert@ifi.uzh.ch> ;
               ont:team ex:team5 .
             ex:team5 foaf:name "Software Engineering" ;
               ont:teamCode "SEAL" .
             ex:pubtype4 ont:type "inproceedings" .
             ex:publisher3 ont:name "Springer" .
           }"#,
    );
    println!("-- paper (Listing 16) shows the same 6 statements; any order");
    println!("   satisfying the FK precedences is correct. checking precedences:");
    let pos = |needle: &str| generated.iter().position(|s| s.starts_with(needle));
    let checks = [
        (
            "team before author",
            "INSERT INTO team",
            "INSERT INTO author",
        ),
        (
            "pubtype before publication",
            "INSERT INTO pubtype",
            "INSERT INTO publication ",
        ),
        (
            "publisher before publication",
            "INSERT INTO publisher",
            "INSERT INTO publication ",
        ),
        (
            "publication before link",
            "INSERT INTO publication ",
            "INSERT INTO publication_author",
        ),
        (
            "author before link",
            "INSERT INTO author",
            "INSERT INTO publication_author",
        ),
    ];
    for (label, a, b) in checks {
        let ok = match (pos(a), pos(b)) {
            (Some(x), Some(y)) => x < y,
            _ => false,
        };
        println!("   {label}: {ok}");
    }
}

fn listing_17() {
    heading(
        "l17",
        "Listing 17 → Listing 18: DELETE DATA removing the email",
    );
    let mut ep = fixtures::endpoint_with_sample_data();
    let generated = run_and_print(
        &mut ep,
        r#"DELETE DATA { ex:author6 foaf:mbox <mailto:hert@ifi.uzh.ch> . }"#,
    );
    let expected = "UPDATE author SET email = NULL WHERE id = 6 AND email = 'hert@ifi.uzh.ch';";
    println!("-- paper (Listing 18):\n   {expected}");
    println!("-- match: {}", generated == vec![expected.to_owned()]);
}

fn listing_11() {
    heading("l11", "Listing 11 → Listing 12: MODIFY replacing the email");
    let mut ep = fixtures::endpoint_with_sample_data();
    run_and_print(
        &mut ep,
        r#"MODIFY
           DELETE { ?x foaf:mbox ?mbox . }
           INSERT { ?x foaf:mbox <mailto:hert@example.com> . }
           WHERE {
             ?x rdf:type foaf:Person ;
                foaf:firstName "Matthias" ;
                foaf:family_name "Hert" ;
                foaf:mbox ?mbox .
           }"#,
    );
    println!(
        "-- paper (Listing 12): one DELETE DATA + one INSERT DATA for the\n\
         \x20  binding (x = ex:author6, mbox = <mailto:hert@ifi.uzh.ch>);\n\
         \x20  the delete is then optimized away per §5.2."
    );
}

fn state_dependent_branches() {
    heading(
        "branches",
        "§5.1 state-dependent translation: INSERT→UPDATE and DELETE→DELETE branches",
    );
    let mut ep = fixtures::endpoint();
    println!("\n(a) first INSERT DATA creates the row:");
    run_and_print(
        &mut ep,
        r#"INSERT DATA { ex:author9 foaf:family_name "Gall" . }"#,
    );
    println!("\n(b) second INSERT DATA on the same subject becomes UPDATE:");
    run_and_print(
        &mut ep,
        r#"INSERT DATA { ex:author9 foaf:firstName "Harald" ;
             foaf:mbox <mailto:gall@ifi.uzh.ch> . }"#,
    );
    println!("\n(c) DELETE DATA of a subset becomes UPDATE … = NULL:");
    run_and_print(
        &mut ep,
        r#"DELETE DATA { ex:author9 foaf:mbox <mailto:gall@ifi.uzh.ch> . }"#,
    );
    println!("\n(d) DELETE DATA of all remaining data becomes DELETE FROM:");
    run_and_print(
        &mut ep,
        r#"DELETE DATA { ex:author9 a foaf:Person ;
             foaf:family_name "Gall" ; foaf:firstName "Harald" . }"#,
    );
}
