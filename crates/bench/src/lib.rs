//! Benchmark harness support for the OntoAccess reproduction. The
//! interesting code lives in `benches/` (Criterion benchmarks, one per
//! experiment family) and `src/bin/experiments.rs` (regenerates every
//! figure/table/listing of the paper; see EXPERIMENTS.md).
