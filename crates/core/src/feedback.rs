//! The semantically rich feedback protocol (paper §3, §6, §8).
//!
//! The paper's prototype returns a confirmation or error message
//! "converted to an RDF representation and sent back to the client", and
//! its future work promises a protocol that reports "the causes for the
//! rejection of a request and possible directions for improvement in an
//! appropriate format". This module implements that: every outcome —
//! success or rejection — becomes an RDF document in a small feedback
//! vocabulary, carrying a machine-readable error code, the affected
//! table/attribute, a human-readable message, and a hint.

use crate::error::OntoError;
use rdf::namespace::{rdf_type, PrefixMap};
use rdf::{Graph, Iri, Literal, Term, Triple};

/// Namespace of the feedback vocabulary.
pub const FEEDBACK_NS: &str = "http://ontoaccess.org/feedback#";

fn fb(local: &str) -> Iri {
    Iri::new_unchecked(format!("{FEEDBACK_NS}{local}"))
}

/// Outcome of one request, as reported to the client.
#[derive(Debug, Clone, PartialEq)]
pub enum Feedback {
    /// The operation executed; `statements` SQL statement groups ran.
    Success {
        /// Operation name (`INSERT DATA`, …).
        operation: String,
        /// Number of SQL statements executed (one per table-level
        /// group on the set-based write path).
        statements: usize,
        /// Total rows the statements inserted/updated/deleted.
        rows: usize,
    },
    /// The operation was rejected or failed; nothing was changed.
    Rejection {
        /// Operation name if known.
        operation: String,
        /// The error.
        error: OntoError,
    },
}

impl Feedback {
    /// Whether this is a success report.
    pub fn is_success(&self) -> bool {
        matches!(self, Feedback::Success { .. })
    }

    /// Serialize the feedback as an RDF graph.
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new();
        let report = Term::blank("report");
        match self {
            Feedback::Success {
                operation,
                statements,
                rows,
            } => {
                g.insert(Triple::new(
                    report.clone(),
                    rdf_type(),
                    Term::Iri(fb("Confirmation")),
                ));
                g.insert(Triple::new(
                    report.clone(),
                    fb("operation"),
                    Literal::plain(operation.clone()),
                ));
                g.insert(Triple::new(
                    report.clone(),
                    fb("statementsExecuted"),
                    Literal::integer(*statements as i64),
                ));
                g.insert(Triple::new(
                    report,
                    fb("rowsAffected"),
                    Literal::integer(*rows as i64),
                ));
            }
            Feedback::Rejection { operation, error } => {
                g.insert(Triple::new(
                    report.clone(),
                    rdf_type(),
                    Term::Iri(fb("Rejection")),
                ));
                g.insert(Triple::new(
                    report.clone(),
                    fb("operation"),
                    Literal::plain(operation.clone()),
                ));
                g.insert(Triple::new(
                    report.clone(),
                    fb("errorCode"),
                    Literal::plain(error.code()),
                ));
                g.insert(Triple::new(
                    report.clone(),
                    fb("message"),
                    Literal::plain(error.to_string()),
                ));
                if let Some(hint) = error.hint() {
                    g.insert(Triple::new(
                        report.clone(),
                        fb("hint"),
                        Literal::plain(hint),
                    ));
                }
                // Structured payload where available.
                match error {
                    OntoError::UnknownProperty { property, table } => {
                        g.insert(Triple::new(
                            report.clone(),
                            fb("property"),
                            Term::Iri(property.clone()),
                        ));
                        g.insert(Triple::new(
                            report,
                            fb("table"),
                            Literal::plain(table.clone()),
                        ));
                    }
                    OntoError::MissingRequiredProperty {
                        table,
                        attribute,
                        property,
                    } => {
                        g.insert(Triple::new(
                            report.clone(),
                            fb("table"),
                            Literal::plain(table.clone()),
                        ));
                        g.insert(Triple::new(
                            report.clone(),
                            fb("attribute"),
                            Literal::plain(attribute.clone()),
                        ));
                        if let Some(p) = property {
                            g.insert(Triple::new(report, fb("property"), Term::Iri(p.clone())));
                        }
                    }
                    OntoError::ValueIncompatible {
                        table, attribute, ..
                    }
                    | OntoError::NotNullDelete { table, attribute }
                    | OntoError::AttributeAlreadySet {
                        table, attribute, ..
                    } => {
                        g.insert(Triple::new(
                            report.clone(),
                            fb("table"),
                            Literal::plain(table.clone()),
                        ));
                        g.insert(Triple::new(
                            report,
                            fb("attribute"),
                            Literal::plain(attribute.clone()),
                        ));
                    }
                    OntoError::UnknownSubject { subject } => {
                        g.insert(Triple::new(report, fb("subject"), subject.clone()));
                    }
                    _ => {}
                }
            }
        }
        g
    }

    /// Serialize as Turtle (the wire format of the HTTP endpoint).
    pub fn to_turtle(&self) -> String {
        let mut prefixes = PrefixMap::common();
        prefixes.insert("fb", FEEDBACK_NS);
        rdf::turtle::write(&self.to_graph(), &prefixes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_document() {
        let f = Feedback::Success {
            operation: "INSERT DATA".into(),
            statements: 3,
            rows: 120,
        };
        let g = f.to_graph();
        assert!(g.contains(&Triple::new(
            Term::blank("report"),
            rdf_type(),
            Term::Iri(fb("Confirmation")),
        )));
        let text = f.to_turtle();
        assert!(text.contains("fb:Confirmation"));
        assert!(text.contains("3"));
        assert!(text.contains("fb:rowsAffected"));
        assert!(text.contains("120"));
    }

    #[test]
    fn rejection_carries_code_message_and_hint() {
        let f = Feedback::Rejection {
            operation: "INSERT DATA".into(),
            error: OntoError::MissingRequiredProperty {
                table: "author".into(),
                attribute: "lastname".into(),
                property: Some(rdf::namespace::foaf::family_name()),
            },
        };
        let text = f.to_turtle();
        assert!(text.contains("fb:Rejection"));
        assert!(text.contains("MissingRequiredProperty"));
        assert!(text.contains("lastname"));
        assert!(text.contains("family_name"));
        assert!(text.contains("fb:hint"));
    }

    #[test]
    fn rejection_document_is_parseable_rdf() {
        let f = Feedback::Rejection {
            operation: "DELETE DATA".into(),
            error: OntoError::NotNullDelete {
                table: "author".into(),
                attribute: "lastname".into(),
            },
        };
        let parsed = rdf::turtle::parse(&f.to_turtle()).unwrap();
        assert!(!parsed.is_empty());
    }
}
