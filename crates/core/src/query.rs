//! SPARQL `SELECT`/`ASK` → SQL translation over an R3M mapping.
//!
//! Algorithm 2 (paper §5.2) requires this: the `WHERE` clause of a
//! `MODIFY` "is used to create a SPARQL SELECT query … translated to SQL
//! and evaluated on the relational data". It is also the endpoint's read
//! path (listed as "under development" for the paper's prototype, §6).
//!
//! Translation scheme (the classic BGP-to-SQL shape):
//!
//! * every *instance node* (subject variable/IRI, or object of an
//!   FK-mapped object property) becomes one aliased table reference;
//! * data properties become column bindings or equality predicates;
//! * FK object properties become equi-join predicates;
//! * link-table properties add an aliased link-table reference joined to
//!   both endpoint tables;
//! * `FILTER` comparisons become SQL comparisons over the bound columns.

use crate::convert::{literal_to_value, pattern_value, value_to_pattern, value_to_term};
use crate::error::{OntoError, OntoResult};
use r3m::{Mapping, PropertyMapping, UriPattern};
use rdf::namespace::rdf_type;
use rdf::{Iri, Term};
use rel::sql::{BinOp, Expr, SelectItem, SelectStmt, TableRef};
use rel::{Database, Value};
use sparql::{
    Binding, CompareOp, FilterExpr, Projection, Query, SelectQuery, Solutions, TermPattern,
    TriplePattern,
};
use std::collections::{BTreeMap, BTreeSet};

/// A compiled SPARQL query: the SQL statement plus the recipe for
/// converting SQL result rows back into SPARQL bindings.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The translated SQL SELECT.
    pub sql: SelectStmt,
    /// How each projected variable is reconstructed from the SQL row.
    pub bindings: Vec<(String, VarShape)>,
    /// Row limit applied after conversion.
    pub limit: Option<usize>,
    /// Equi-join keys of the SQL, as `(left, right)` pairs of
    /// `(alias, column)` — the planner-facing metadata every FK object
    /// property and link-table pattern contributes.
    pub join_keys: Vec<((String, String), (String, String))>,
    /// Underlying `(table, column)` pairs of the join keys — the
    /// columns worth a secondary index for this query, with aliases
    /// resolved through the FROM list at compile time (each pair once).
    pub join_index_targets: Vec<(String, String)>,
}

/// Make sure every join column of `compiled` can be answered from an
/// index, creating secondary hash indexes where none exists (a no-op
/// for DOUBLE columns, which the engine never probes). Indexes are
/// idempotent and maintained by the engine from then on, so the cost is
/// paid once per (database, column).
///
/// This is a compile/cache-admission-time concern: callers that intend
/// to run a compiled query repeatedly (the mediator's query cache,
/// Algorithm 2's MODIFY) provision indexes once while they hold write
/// access, and every subsequent [`run_compiled`] is a pure read. A
/// compiled query whose indexes were never provisioned still runs
/// correctly — the planner falls back to hash joins over scans.
pub fn ensure_join_indexes(db: &mut Database, compiled: &CompiledQuery) -> OntoResult<()> {
    for (table, column) in &compiled.join_index_targets {
        if !db.supports_index_probe(table, column)? {
            db.create_index(table, column)?;
        }
    }
    Ok(())
}

/// How a SPARQL variable maps onto the SQL result.
#[derive(Debug, Clone)]
pub enum VarShape {
    /// Instance variable: the key column value is substituted into the
    /// table's URI pattern.
    Instance {
        /// URI pattern of the node's table.
        pattern: UriPattern,
        /// Mapping-wide prefix.
        prefix: Option<String>,
    },
    /// Literal variable: the column value becomes a literal.
    Literal,
    /// Derived-IRI variable (value pattern, e.g. `mailto:%%email%%`).
    DerivedIri {
        /// The attribute's value pattern.
        pattern: UriPattern,
        /// Attribute name the pattern binds.
        attribute: String,
    },
}

/// Lower an ASK to the SELECT shape the compiler understands: star
/// projection, LIMIT 1 — non-emptiness of the solutions is the answer.
pub fn ask_to_select(ask: &sparql::AskQuery) -> SelectQuery {
    SelectQuery {
        distinct: false,
        projection: Projection::Star,
        pattern: ask.pattern.clone(),
        limit: Some(1),
    }
}

/// Translate and execute a SPARQL query against the database. A pure
/// read: one-shot queries run without index provisioning (the planner
/// falls back to hash joins); callers that re-run a compilation hold
/// write access once and call [`ensure_join_indexes`] themselves.
pub fn execute_query(
    db: &Database,
    mapping: &Mapping,
    query: &Query,
) -> OntoResult<sparql::QueryOutcome> {
    match query {
        Query::Select(select) => {
            let solutions = execute_select(db, mapping, select)?;
            Ok(sparql::QueryOutcome::Solutions(solutions))
        }
        Query::Ask(ask) => {
            let solutions = execute_select(db, mapping, &ask_to_select(ask))?;
            Ok(sparql::QueryOutcome::Boolean(!solutions.is_empty()))
        }
    }
}

/// Translate and execute a SELECT, returning SPARQL solutions.
pub fn execute_select(
    db: &Database,
    mapping: &Mapping,
    query: &SelectQuery,
) -> OntoResult<Solutions> {
    let compiled = compile_select(db, mapping, query)?;
    run_compiled(db, &compiled)
}

/// Execute a compiled query. Read-only: index provisioning happens at
/// compile/cache-admission time (see [`ensure_join_indexes`]), so many
/// threads can run compiled queries against `&Database` in parallel.
pub fn run_compiled(db: &Database, compiled: &CompiledQuery) -> OntoResult<Solutions> {
    let rows = rel::sql::execute_select(db, &compiled.sql)?;
    let mut solutions = Solutions {
        variables: compiled.bindings.iter().map(|(v, _)| v.clone()).collect(),
        bindings: Vec::with_capacity(rows.len()),
    };
    for row in &rows.rows {
        let mut binding = Binding::new();
        for (i, (var, shape)) in compiled.bindings.iter().enumerate() {
            let value = &row[i];
            if value.is_null() {
                continue;
            }
            let term = shape_to_term(shape, value)?;
            binding.insert(var.clone(), term);
        }
        solutions.bindings.push(binding);
    }
    if let Some(limit) = compiled.limit {
        solutions.bindings.truncate(limit);
    }
    Ok(solutions)
}

fn shape_to_term(shape: &VarShape, value: &Value) -> OntoResult<Term> {
    match shape {
        VarShape::Literal => Ok(value_to_term(value).expect("non-null")),
        VarShape::Instance { pattern, prefix } => {
            let raw = value_to_pattern(value).expect("non-null");
            let uri = pattern
                .generate(prefix.as_deref(), &|_| Some(raw.clone()))
                .map_err(|e| OntoError::Unsupported {
                    message: e.to_string(),
                })?;
            Ok(Term::Iri(Iri::parse(uri).map_err(|e| {
                OntoError::Unsupported {
                    message: e.to_string(),
                }
            })?))
        }
        VarShape::DerivedIri { pattern, attribute } => {
            let raw = value_to_pattern(value).expect("non-null");
            let uri = pattern
                .generate(None, &|name| (name == attribute).then(|| raw.clone()))
                .map_err(|e| OntoError::Unsupported {
                    message: e.to_string(),
                })?;
            Ok(Term::Iri(Iri::parse(uri).map_err(|e| {
                OntoError::Unsupported {
                    message: e.to_string(),
                }
            })?))
        }
    }
}

// ----------------------------------------------------------------------
// Compilation
// ----------------------------------------------------------------------

// An instance node: a subject (or instance-object) position.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum NodeKey {
    Var(String),
    Ground(Iri),
}

#[derive(Debug)]
struct Node {
    alias: String,
    // Candidate table names; intersected as constraints arrive.
    candidates: Option<BTreeSet<String>>,
}

// Where a literal/derived variable is bound: (alias, column).
#[derive(Debug, Clone)]
struct ValueVar {
    alias: String,
    column: String,
    shape: VarShape,
    column_ty: rel::SqlType,
}

struct Compiler<'a> {
    db: &'a Database,
    mapping: &'a Mapping,
    nodes: BTreeMap<NodeKey, Node>,
    node_order: Vec<NodeKey>,
    value_vars: BTreeMap<String, ValueVar>,
    // Extra FROM entries for link-table patterns.
    link_aliases: Vec<(String, String)>, // (alias, table)
    predicates: Vec<Expr>,
    next_alias: usize,
}

/// Compile a SPARQL SELECT into SQL.
pub fn compile_select(
    db: &Database,
    mapping: &Mapping,
    query: &SelectQuery,
) -> OntoResult<CompiledQuery> {
    let compiler = Compiler {
        db,
        mapping,
        nodes: BTreeMap::new(),
        node_order: Vec::new(),
        value_vars: BTreeMap::new(),
        link_aliases: Vec::new(),
        predicates: Vec::new(),
        next_alias: 0,
    };
    compiler.compile(query)
}

impl<'a> Compiler<'a> {
    fn fresh_alias(&mut self, base: &str) -> String {
        let alias = format!("{base}{}", self.next_alias);
        self.next_alias += 1;
        alias
    }

    fn node_key(tp: &TermPattern) -> OntoResult<NodeKey> {
        match tp {
            TermPattern::Variable(v) => Ok(NodeKey::Var(v.clone())),
            TermPattern::Term(Term::Iri(iri)) => Ok(NodeKey::Ground(iri.clone())),
            TermPattern::Term(other) => Err(OntoError::Unsupported {
                message: format!("{other} cannot denote a row instance"),
            }),
        }
    }

    fn node_mut(&mut self, key: NodeKey) -> &mut Node {
        if !self.nodes.contains_key(&key) {
            let alias = self.fresh_alias("t");
            self.node_order.push(key.clone());
            self.nodes.insert(
                key.clone(),
                Node {
                    alias,
                    candidates: None,
                },
            );
        }
        self.nodes.get_mut(&key).expect("just inserted")
    }

    fn constrain(&mut self, key: NodeKey, tables: BTreeSet<String>) -> OntoResult<()> {
        let node = self.node_mut(key.clone());
        node.candidates = Some(match node.candidates.take() {
            None => tables,
            Some(existing) => existing.intersection(&tables).cloned().collect(),
        });
        if node.candidates.as_ref().is_some_and(BTreeSet::is_empty) {
            let var = match key {
                NodeKey::Var(v) => v,
                NodeKey::Ground(iri) => iri.into_string(),
            };
            return Err(OntoError::AmbiguousPattern {
                variable: var,
                candidates: vec![],
            });
        }
        Ok(())
    }

    fn compile(mut self, query: &SelectQuery) -> OntoResult<CompiledQuery> {
        // Pass 1: register nodes and table constraints.
        for pattern in &query.pattern.patterns {
            self.scan_pattern(pattern)?;
        }
        // Ground nodes resolve through the URI patterns.
        for key in self.node_order.clone() {
            if let NodeKey::Ground(iri) = &key {
                let (table_map, _) =
                    self.mapping
                        .identify(iri)
                        .ok_or_else(|| OntoError::UnknownSubject {
                            subject: Term::Iri(iri.clone()),
                        })?;
                let table = table_map.table_name.clone();
                self.constrain(key.clone(), BTreeSet::from([table]))?;
            }
        }
        // Every node must now denote exactly one table.
        let mut resolved: BTreeMap<NodeKey, String> = BTreeMap::new();
        for key in &self.node_order {
            let node = &self.nodes[key];
            let candidates = node.candidates.clone().unwrap_or_default();
            if candidates.len() != 1 {
                let var = match key {
                    NodeKey::Var(v) => v.clone(),
                    NodeKey::Ground(iri) => iri.as_str().to_owned(),
                };
                return Err(OntoError::AmbiguousPattern {
                    variable: var,
                    candidates: candidates.into_iter().collect(),
                });
            }
            resolved.insert(key.clone(), candidates.into_iter().next().expect("len 1"));
        }
        // Pass 2: emit join/equality predicates per pattern.
        for pattern in &query.pattern.patterns {
            self.emit_pattern(pattern, &resolved)?;
        }
        // Ground nodes pin their key columns.
        for (key, table_name) in &resolved {
            if let NodeKey::Ground(iri) = key {
                let (table_map, raw) = self.mapping.identify(iri).expect("identified in pass 1");
                debug_assert_eq!(&table_map.table_name, table_name);
                let table = self.db.schema().table(table_name)?;
                let alias = self.nodes[key].alias.clone();
                for (attr, raw_value) in raw {
                    let column = table.column(&attr).ok_or_else(|| OntoError::Unsupported {
                        message: format!("pattern attribute {attr:?} missing"),
                    })?;
                    let value = pattern_value(&raw_value, column.ty).map_err(|reason| {
                        OntoError::ValueIncompatible {
                            table: table_name.clone(),
                            attribute: attr.clone(),
                            value: Term::Iri(iri.clone()),
                            reason,
                        }
                    })?;
                    self.predicates
                        .push(Expr::eq(Expr::qcol(&alias, &attr), Expr::Value(value)));
                }
            }
        }
        // Filters.
        for filter in &query.pattern.filters {
            let expr = self.compile_filter(filter)?;
            self.predicates.push(expr);
        }

        // Projection.
        let projected: Vec<String> = match &query.projection {
            Projection::Star => query.pattern.variables(),
            Projection::Variables(vars) => vars.clone(),
        };
        let mut items = Vec::new();
        let mut bindings = Vec::new();
        for var in &projected {
            if let Some(vv) = self.value_vars.get(var) {
                items.push(SelectItem::Expr {
                    expr: Expr::qcol(&vv.alias, &vv.column),
                    alias: Some(var.clone()),
                });
                bindings.push((var.clone(), vv.shape.clone()));
            } else if let Some(node) = self.nodes.get(&NodeKey::Var(var.clone())) {
                let table_name = &resolved[&NodeKey::Var(var.clone())];
                let table_map =
                    self.mapping
                        .table(table_name)
                        .ok_or_else(|| OntoError::Unsupported {
                            message: format!("no table map for {table_name:?}"),
                        })?;
                let key_attrs = table_map.uri_pattern.attributes();
                if key_attrs.len() != 1 {
                    return Err(OntoError::Unsupported {
                        message: format!(
                            "instance variable ?{var} over multi-attribute URI pattern"
                        ),
                    });
                }
                items.push(SelectItem::Expr {
                    expr: Expr::qcol(&node.alias, key_attrs[0]),
                    alias: Some(var.clone()),
                });
                bindings.push((
                    var.clone(),
                    VarShape::Instance {
                        pattern: table_map.uri_pattern.clone(),
                        prefix: self.mapping.uri_prefix.clone(),
                    },
                ));
            } else {
                return Err(OntoError::Unsupported {
                    message: format!("projected variable ?{var} is not bound by the pattern"),
                });
            }
        }

        // FROM: one entry per node plus link-table aliases.
        let mut from = Vec::new();
        for key in &self.node_order {
            from.push(TableRef {
                table: resolved[key].clone(),
                alias: Some(self.nodes[key].alias.clone()),
            });
        }
        for (alias, table) in &self.link_aliases {
            from.push(TableRef {
                table: table.clone(),
                alias: Some(alias.clone()),
            });
        }
        if from.is_empty() {
            return Err(OntoError::Unsupported {
                message: "empty basic graph pattern".into(),
            });
        }

        // Join-key metadata: every alias-to-alias equality the pattern
        // produced (FK object properties and link-table joins).
        let join_keys: Vec<((String, String), (String, String))> = self
            .predicates
            .iter()
            .filter_map(|p| {
                let Expr::Binary {
                    op: BinOp::Eq,
                    left,
                    right,
                } = p
                else {
                    return None;
                };
                let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) else {
                    return None;
                };
                match (&a.table, &b.table) {
                    (Some(ta), Some(tb)) if ta != tb => Some((
                        (ta.clone(), a.column.clone()),
                        (tb.clone(), b.column.clone()),
                    )),
                    _ => None,
                }
            })
            .collect();

        // Resolve aliases to tables once, at compile time, so every
        // execution can check index coverage without re-deriving it.
        let join_index_targets = {
            let table_of = |alias: &str| -> Option<&str> {
                from.iter()
                    .find(|tref| tref.binding() == alias)
                    .map(|tref| tref.table.as_str())
            };
            let mut targets: Vec<(String, String)> = Vec::new();
            for ((la, lc), (ra, rc)) in &join_keys {
                for (alias, column) in [(la, lc), (ra, rc)] {
                    if let Some(table) = table_of(alias.as_str()) {
                        let pair = (table.to_owned(), String::clone(column));
                        if !targets.contains(&pair) {
                            targets.push(pair);
                        }
                    }
                }
            }
            targets
        };

        Ok(CompiledQuery {
            sql: SelectStmt {
                distinct: query.distinct,
                items,
                from,
                where_clause: Expr::conjunction(self.predicates),
            },
            bindings,
            limit: query.limit,
            join_keys,
            join_index_targets,
        })
    }

    // Pass 1: constrain node candidate tables from one pattern.
    fn scan_pattern(&mut self, pattern: &TriplePattern) -> OntoResult<()> {
        let predicate = match &pattern.predicate {
            TermPattern::Term(Term::Iri(iri)) => iri.clone(),
            other => {
                return Err(OntoError::Unsupported {
                    message: format!("predicate {other} is not a ground IRI"),
                })
            }
        };
        let subject_key = Self::node_key(&pattern.subject)?;
        if predicate == rdf_type() {
            let class = pattern
                .object
                .as_term()
                .and_then(Term::as_iri)
                .ok_or_else(|| OntoError::Unsupported {
                    message: "rdf:type object must be a ground class IRI".into(),
                })?;
            let table =
                self.mapping
                    .table_by_class(class)
                    .ok_or_else(|| OntoError::Unsupported {
                        message: format!("class {class} is not mapped"),
                    })?;
            let name = table.table_name.clone();
            return self.constrain(subject_key, BTreeSet::from([name]));
        }
        // Tables whose attribute maps this property.
        let mut subject_tables = BTreeSet::new();
        for table in &self.mapping.tables {
            if table.attribute_for_property(&predicate).is_some() {
                subject_tables.insert(table.table_name.clone());
            }
        }
        if let Some(link) = self.mapping.link_table_by_property(&predicate) {
            let subject_target = link
                .subject_attribute
                .foreign_key_target()
                .and_then(|id| self.mapping.table_by_id(id))
                .ok_or_else(|| OntoError::Unsupported {
                    message: format!("link table {:?}: unresolved subject", link.table_name),
                })?;
            let object_target = link
                .object_attribute
                .foreign_key_target()
                .and_then(|id| self.mapping.table_by_id(id))
                .ok_or_else(|| OntoError::Unsupported {
                    message: format!("link table {:?}: unresolved object", link.table_name),
                })?;
            self.constrain(
                subject_key,
                BTreeSet::from([subject_target.table_name.clone()]),
            )?;
            let object_key = Self::node_key(&pattern.object)?;
            return self.constrain(
                object_key,
                BTreeSet::from([object_target.table_name.clone()]),
            );
        }
        if subject_tables.is_empty() {
            return Err(OntoError::Unsupported {
                message: format!("property {predicate} is not mapped"),
            });
        }
        self.constrain(subject_key.clone(), subject_tables.clone())?;
        // FK object properties also constrain the object node.
        let mut object_tables = BTreeSet::new();
        let mut all_fk = true;
        for table_name in &subject_tables {
            let table_map = self.mapping.table(table_name).expect("from mapping");
            let attr = table_map
                .attribute_for_property(&predicate)
                .expect("collected above");
            match (
                &attr.property,
                &attr.value_pattern,
                attr.foreign_key_target(),
            ) {
                (Some(PropertyMapping::Object(_)), None, Some(target)) => {
                    if let Some(target_map) = self.mapping.table_by_id(target) {
                        object_tables.insert(target_map.table_name.clone());
                    }
                }
                _ => all_fk = false,
            }
        }
        if all_fk && !object_tables.is_empty() {
            // Only variable/IRI objects become nodes.
            if matches!(
                pattern.object,
                TermPattern::Variable(_) | TermPattern::Term(Term::Iri(_))
            ) {
                let object_key = Self::node_key(&pattern.object)?;
                self.constrain(object_key, object_tables)?;
            }
        }
        Ok(())
    }

    // Pass 2: emit SQL predicates and variable bindings.
    fn emit_pattern(
        &mut self,
        pattern: &TriplePattern,
        resolved: &BTreeMap<NodeKey, String>,
    ) -> OntoResult<()> {
        let predicate = match &pattern.predicate {
            TermPattern::Term(Term::Iri(iri)) => iri.clone(),
            _ => unreachable!("checked in pass 1"),
        };
        if predicate == rdf_type() {
            return Ok(()); // table choice already encodes it
        }
        let subject_key = Self::node_key(&pattern.subject)?;
        let subject_alias = self.nodes[&subject_key].alias.clone();
        let table_name = resolved[&subject_key].clone();

        if let Some(link) = self.mapping.link_table_by_property(&predicate) {
            let link = link.clone();
            let object_key = Self::node_key(&pattern.object)?;
            let object_alias = self.nodes[&object_key].alias.clone();
            let object_table_name = resolved[&object_key].clone();
            let link_alias = self.fresh_alias("l");
            self.link_aliases
                .push((link_alias.clone(), link.table_name.clone()));
            let subject_pk = self.single_key_attr(&table_name)?;
            let object_pk = self.single_key_attr(&object_table_name)?;
            self.predicates.push(Expr::eq(
                Expr::qcol(&link_alias, &link.subject_attribute.attribute_name),
                Expr::qcol(&subject_alias, &subject_pk),
            ));
            self.predicates.push(Expr::eq(
                Expr::qcol(&link_alias, &link.object_attribute.attribute_name),
                Expr::qcol(&object_alias, &object_pk),
            ));
            return Ok(());
        }

        let table_map = self
            .mapping
            .table(&table_name)
            .ok_or_else(|| OntoError::Unsupported {
                message: format!("no table map for {table_name:?}"),
            })?
            .clone();
        let attr = table_map
            .attribute_for_property(&predicate)
            .ok_or_else(|| OntoError::UnknownProperty {
                property: predicate.clone(),
                table: table_name.clone(),
            })?
            .clone();
        let table = self.db.schema().table(&table_name)?;
        let column = table
            .column(&attr.attribute_name)
            .ok_or_else(|| OntoError::Unsupported {
                message: format!("attribute {} missing", attr.attribute_name),
            })?;
        let column_ty = column.ty;
        let col_expr = Expr::qcol(&subject_alias, &attr.attribute_name);

        match attr.property.as_ref().expect("mapped") {
            PropertyMapping::Data(_) => match &pattern.object {
                TermPattern::Term(Term::Literal(lit)) => {
                    let value = literal_to_value(lit, column_ty).map_err(|reason| {
                        OntoError::ValueIncompatible {
                            table: table_name.clone(),
                            attribute: attr.attribute_name.clone(),
                            value: Term::Literal(lit.clone()),
                            reason,
                        }
                    })?;
                    self.predicates.push(Expr::eq(col_expr, Expr::Value(value)));
                }
                TermPattern::Variable(var) => {
                    self.bind_value_var(
                        var,
                        &subject_alias,
                        &attr.attribute_name,
                        VarShape::Literal,
                        column_ty,
                        col_expr,
                    )?;
                }
                TermPattern::Term(other) => {
                    return Err(OntoError::ValueIncompatible {
                        table: table_name.clone(),
                        attribute: attr.attribute_name.clone(),
                        value: other.clone(),
                        reason: "data property object must be a literal or variable".into(),
                    })
                }
            },
            PropertyMapping::Object(_) => {
                if let Some(vpattern) = &attr.value_pattern {
                    match &pattern.object {
                        TermPattern::Term(Term::Iri(iri)) => {
                            let values =
                                vpattern.match_uri(None, iri.as_str()).ok_or_else(|| {
                                    OntoError::ValueIncompatible {
                                        table: table_name.clone(),
                                        attribute: attr.attribute_name.clone(),
                                        value: Term::Iri(iri.clone()),
                                        reason: format!("does not match value pattern {vpattern}"),
                                    }
                                })?;
                            let raw = values
                                .into_iter()
                                .find(|(n, _)| n == &attr.attribute_name)
                                .map(|(_, v)| v)
                                .ok_or_else(|| OntoError::Unsupported {
                                    message: "value pattern does not bind attribute".into(),
                                })?;
                            let value = pattern_value(&raw, column_ty).map_err(|reason| {
                                OntoError::ValueIncompatible {
                                    table: table_name.clone(),
                                    attribute: attr.attribute_name.clone(),
                                    value: Term::Iri(iri.clone()),
                                    reason,
                                }
                            })?;
                            self.predicates.push(Expr::eq(col_expr, Expr::Value(value)));
                        }
                        TermPattern::Variable(var) => {
                            self.bind_value_var(
                                var,
                                &subject_alias,
                                &attr.attribute_name,
                                VarShape::DerivedIri {
                                    pattern: vpattern.clone(),
                                    attribute: attr.attribute_name.clone(),
                                },
                                column_ty,
                                col_expr,
                            )?;
                        }
                        TermPattern::Term(other) => {
                            return Err(OntoError::ValueIncompatible {
                                table: table_name.clone(),
                                attribute: attr.attribute_name.clone(),
                                value: other.clone(),
                                reason: "expected an IRI or variable".into(),
                            })
                        }
                    }
                } else {
                    // FK join: object node's key column equals this
                    // column.
                    let object_key = Self::node_key(&pattern.object)?;
                    let object_alias = self.nodes[&object_key].alias.clone();
                    let object_table = resolved[&object_key].clone();
                    let object_pk = self.single_key_attr(&object_table)?;
                    self.predicates
                        .push(Expr::eq(col_expr, Expr::qcol(&object_alias, &object_pk)));
                }
            }
        }
        Ok(())
    }

    fn bind_value_var(
        &mut self,
        var: &str,
        alias: &str,
        column: &str,
        shape: VarShape,
        column_ty: rel::SqlType,
        col_expr: Expr,
    ) -> OntoResult<()> {
        if self.nodes.contains_key(&NodeKey::Var(var.to_owned())) {
            return Err(OntoError::Unsupported {
                message: format!("?{var} is used both as an instance and as a value"),
            });
        }
        match self.value_vars.get(var) {
            Some(existing) => {
                // Same variable bound twice → join condition.
                self.predicates.push(Expr::eq(
                    Expr::qcol(&existing.alias, &existing.column),
                    col_expr,
                ));
            }
            None => {
                // Pattern requires the triple to exist → attribute
                // non-NULL.
                self.predicates.push(Expr::IsNull {
                    expr: Box::new(col_expr),
                    negated: true,
                });
                self.value_vars.insert(
                    var.to_owned(),
                    ValueVar {
                        alias: alias.to_owned(),
                        column: column.to_owned(),
                        shape,
                        column_ty,
                    },
                );
            }
        }
        Ok(())
    }

    fn single_key_attr(&self, table_name: &str) -> OntoResult<String> {
        let table_map = self
            .mapping
            .table(table_name)
            .ok_or_else(|| OntoError::Unsupported {
                message: format!("no table map for {table_name:?}"),
            })?;
        let attrs = table_map.uri_pattern.attributes();
        if attrs.len() != 1 {
            return Err(OntoError::Unsupported {
                message: format!("table {table_name:?} has a multi-attribute URI pattern"),
            });
        }
        Ok(attrs[0].to_owned())
    }

    fn compile_filter(&mut self, filter: &FilterExpr) -> OntoResult<Expr> {
        match filter {
            FilterExpr::And(a, b) => {
                Ok(Expr::and(self.compile_filter(a)?, self.compile_filter(b)?))
            }
            FilterExpr::Or(a, b) => Ok(Expr::or(self.compile_filter(a)?, self.compile_filter(b)?)),
            FilterExpr::Not(inner) => Ok(Expr::Not(Box::new(self.compile_filter(inner)?))),
            FilterExpr::Bound(var) => {
                // Without OPTIONAL every pattern variable is bound.
                if self.value_vars.contains_key(var)
                    || self.nodes.contains_key(&NodeKey::Var(var.clone()))
                {
                    Ok(Expr::Value(Value::Bool(true)))
                } else {
                    Ok(Expr::Value(Value::Bool(false)))
                }
            }
            FilterExpr::Compare { op, left, right } => {
                let sql_op = match op {
                    CompareOp::Eq => rel::sql::BinOp::Eq,
                    CompareOp::Ne => rel::sql::BinOp::Ne,
                    CompareOp::Lt => rel::sql::BinOp::Lt,
                    CompareOp::Le => rel::sql::BinOp::Le,
                    CompareOp::Gt => rel::sql::BinOp::Gt,
                    CompareOp::Ge => rel::sql::BinOp::Ge,
                };
                let l = self.filter_operand(left, right)?;
                let r = self.filter_operand(right, left)?;
                Ok(Expr::binary(sql_op, l, r))
            }
        }
    }

    // Translate a filter operand; `other` provides type context for
    // literals compared against columns.
    fn filter_operand(&self, operand: &TermPattern, other: &TermPattern) -> OntoResult<Expr> {
        match operand {
            TermPattern::Variable(var) => {
                if let Some(vv) = self.value_vars.get(var) {
                    Ok(Expr::qcol(&vv.alias, &vv.column))
                } else if self.nodes.contains_key(&NodeKey::Var(var.clone())) {
                    Err(OntoError::Unsupported {
                        message: format!(
                            "FILTER comparison on instance variable ?{var} is not supported; \
                             compare a data property value instead"
                        ),
                    })
                } else {
                    Err(OntoError::Unsupported {
                        message: format!("FILTER references unbound variable ?{var}"),
                    })
                }
            }
            TermPattern::Term(Term::Literal(lit)) => {
                // Use the column type of the variable on the other side
                // when available.
                let ty = match other {
                    TermPattern::Variable(var) => self.value_vars.get(var).map(|vv| vv.column_ty),
                    _ => None,
                };
                let value = match ty {
                    Some(ty) => {
                        literal_to_value(lit, ty).map_err(|reason| OntoError::Unsupported {
                            message: format!("FILTER literal {lit}: {reason}"),
                        })?
                    }
                    None => best_effort_value(lit),
                };
                Ok(Expr::Value(value))
            }
            TermPattern::Term(other) => Err(OntoError::Unsupported {
                message: format!("FILTER operand {other} is not supported"),
            }),
        }
    }
}

// Literal → value without a column type hint.
fn best_effort_value(lit: &rdf::Literal) -> Value {
    if let Some(i) = lit.as_int() {
        Value::Int(i)
    } else if let Some(b) = lit.as_bool() {
        Value::Bool(b)
    } else if let Some(d) = lit.as_double() {
        Value::Double(d)
    } else {
        Value::text(lit.lexical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fixture_db_with_rows, parse_query};
    use sparql::QueryOutcome;

    fn select(db: &mut Database, mapping: &Mapping, q: &str) -> Solutions {
        let Query::Select(query) = parse_query(q) else {
            panic!("not a SELECT")
        };
        execute_select(db, mapping, &query).unwrap()
    }

    #[test]
    fn simple_class_query() {
        let (mut db, mapping) = fixture_db_with_rows();
        let sols = select(&mut db, &mapping, "SELECT ?x WHERE { ?x a foaf:Person . }");
        assert_eq!(sols.len(), 2);
        let uris: Vec<String> = sols.bindings.iter().map(|b| b["x"].to_string()).collect();
        assert!(uris.contains(&"<http://example.org/db/author6>".to_owned()));
        assert!(uris.contains(&"<http://example.org/db/author7>".to_owned()));
    }

    #[test]
    fn data_property_binding_and_ground_match() {
        let (mut db, mapping) = fixture_db_with_rows();
        let sols = select(
            &mut db,
            &mapping,
            "SELECT ?x ?n WHERE { ?x foaf:family_name \"Hert\" ; foaf:firstName ?n . }",
        );
        assert_eq!(sols.len(), 1);
        assert_eq!(sols.bindings[0]["n"], Term::plain("Matthias"));
    }

    #[test]
    fn listing_11_where_clause_translates() {
        // The exact WHERE clause of the paper's MODIFY example.
        let (mut db, mapping) = fixture_db_with_rows();
        let sols = select(
            &mut db,
            &mapping,
            "SELECT ?x ?mbox WHERE { ?x rdf:type foaf:Person ; \
               foaf:firstName \"Matthias\" ; foaf:family_name \"Hert\" ; foaf:mbox ?mbox . }",
        );
        assert_eq!(sols.len(), 1);
        assert_eq!(
            sols.bindings[0]["x"],
            Term::iri("http://example.org/db/author6")
        );
        assert_eq!(
            sols.bindings[0]["mbox"],
            Term::iri("mailto:hert@ifi.uzh.ch")
        );
    }

    #[test]
    fn fk_join_between_instances() {
        let (mut db, mapping) = fixture_db_with_rows();
        let sols = select(
            &mut db,
            &mapping,
            "SELECT ?x ?code WHERE { ?x ont:team ?t . ?t ont:teamCode ?code . }",
        );
        assert_eq!(sols.len(), 2);
        assert!(sols
            .bindings
            .iter()
            .all(|b| b["code"] == Term::plain("SEAL")));
    }

    #[test]
    fn link_table_join() {
        let (mut db, mapping) = fixture_db_with_rows();
        let sols = select(
            &mut db,
            &mapping,
            "SELECT ?pub ?last WHERE { ?pub dc:creator ?a . ?a foaf:family_name ?last . }",
        );
        assert_eq!(sols.len(), 1);
        assert_eq!(sols.bindings[0]["last"], Term::plain("Hert"));
        assert_eq!(
            sols.bindings[0]["pub"],
            Term::iri("http://example.org/db/pub1")
        );
    }

    #[test]
    fn ground_subject_query() {
        let (mut db, mapping) = fixture_db_with_rows();
        let sols = select(
            &mut db,
            &mapping,
            "SELECT ?mbox WHERE { ex:author6 foaf:mbox ?mbox . }",
        );
        assert_eq!(sols.len(), 1);
        assert_eq!(
            sols.bindings[0]["mbox"],
            Term::iri("mailto:hert@ifi.uzh.ch")
        );
    }

    #[test]
    fn filter_comparison_on_year() {
        let (mut db, mapping) = fixture_db_with_rows();
        let sols = select(
            &mut db,
            &mapping,
            "SELECT ?p WHERE { ?p ont:pubYear ?y . FILTER (?y >= 2009) }",
        );
        assert_eq!(sols.len(), 1);
        let none = select(
            &mut db,
            &mapping,
            "SELECT ?p WHERE { ?p ont:pubYear ?y . FILTER (?y > 2009) }",
        );
        assert!(none.is_empty());
    }

    #[test]
    fn null_attribute_does_not_match_pattern() {
        let (mut db, mapping) = fixture_db_with_rows();
        // author7 has no mbox → only author6 matches.
        let sols = select(&mut db, &mapping, "SELECT ?x WHERE { ?x foaf:mbox ?m . }");
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn ambiguous_variable_rejected() {
        let (db, mapping) = fixture_db_with_rows();
        // foaf:name maps team.name only — fine. foaf:title maps
        // author.title and publication has dc:title — use a property
        // that exists in two tables: ont:name (publisher) vs foaf:name
        // (team) are distinct, so craft ambiguity with `?x ?nothing`…
        // Simplest: a variable constrained by nothing.
        let Query::Select(query) = parse_query("SELECT ?x WHERE { ?x foaf:name ?n . }") else {
            panic!()
        };
        // foaf:name is only on team → unambiguous, 2 teams.
        let sols = execute_select(&db, &mapping, &query).unwrap();
        assert_eq!(sols.len(), 2);
        let _ = sols;
    }

    #[test]
    fn mbox_derived_iri_ground_object() {
        let (mut db, mapping) = fixture_db_with_rows();
        let sols = select(
            &mut db,
            &mapping,
            "SELECT ?x WHERE { ?x foaf:mbox <mailto:hert@ifi.uzh.ch> . }",
        );
        assert_eq!(sols.len(), 1);
        assert_eq!(
            sols.bindings[0]["x"],
            Term::iri("http://example.org/db/author6")
        );
    }

    #[test]
    fn distinct_dedups_solutions() {
        let (mut db, mapping) = fixture_db_with_rows();
        let sols = select(
            &mut db,
            &mapping,
            "SELECT DISTINCT ?code WHERE { ?x ont:team ?t . ?t ont:teamCode ?code . }",
        );
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn ask_translation() {
        let (db, mapping) = fixture_db_with_rows();
        let q = parse_query("ASK { ?x foaf:family_name \"Hert\" . }");
        assert_eq!(
            execute_query(&db, &mapping, &q).unwrap(),
            QueryOutcome::Boolean(true)
        );
        let q = parse_query("ASK { ?x foaf:family_name \"Nobody\" . }");
        assert_eq!(
            execute_query(&db, &mapping, &q).unwrap(),
            QueryOutcome::Boolean(false)
        );
    }

    #[test]
    fn limit_applies() {
        let (mut db, mapping) = fixture_db_with_rows();
        let sols = select(
            &mut db,
            &mapping,
            "SELECT ?x WHERE { ?x a foaf:Person . } LIMIT 1",
        );
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn unmapped_property_rejected() {
        let (db, mapping) = fixture_db_with_rows();
        let Query::Select(query) =
            parse_query("SELECT ?x WHERE { ?x <http://example.org/unmapped> ?y . }")
        else {
            panic!()
        };
        assert!(matches!(
            execute_select(&db, &mapping, &query),
            Err(OntoError::Unsupported { .. })
        ));
    }

    #[test]
    fn compiled_sql_is_visible_and_parses() {
        let (db, mapping) = fixture_db_with_rows();
        let Query::Select(query) =
            parse_query("SELECT ?x ?mbox WHERE { ?x a foaf:Person ; foaf:mbox ?mbox . }")
        else {
            panic!()
        };
        let compiled = compile_select(&db, &mapping, &query).unwrap();
        let text = compiled.sql.to_string();
        assert!(text.starts_with("SELECT"));
        assert!(text.contains("FROM author"));
        assert!(text.contains("IS NOT NULL"));
        // Round-trips through the SQL parser.
        rel::sql::parse(&text).unwrap();
    }

    #[test]
    fn join_key_metadata_names_fk_and_link_columns() {
        let (db, mapping) = fixture_db_with_rows();
        let Query::Select(query) = parse_query(
            "SELECT ?pub ?code WHERE { ?pub dc:creator ?a . ?a ont:team ?t . \
             ?t ont:teamCode ?code . }",
        ) else {
            panic!()
        };
        let compiled = compile_select(&db, &mapping, &query).unwrap();
        // FK join (author.team = team.id) + two link-table joins.
        assert_eq!(compiled.join_keys.len(), 3);
        let targets = &compiled.join_index_targets;
        assert!(targets.contains(&("author".into(), "team".into())));
        assert!(targets.contains(&("publication_author".into(), "publication".into())));
        assert!(targets.contains(&("publication_author".into(), "author".into())));
        assert!(targets.contains(&("team".into(), "id".into())));
    }

    #[test]
    fn ensure_join_indexes_makes_every_target_probeable() {
        let (mut db, mapping) = fixture_db_with_rows();
        let Query::Select(query) = parse_query(
            "SELECT ?pub ?last WHERE { ?pub dc:creator ?a . ?a foaf:family_name ?last . }",
        ) else {
            panic!()
        };
        let compiled = compile_select(&db, &mapping, &query).unwrap();
        super::ensure_join_indexes(&mut db, &compiled).unwrap();
        for (table, column) in &compiled.join_index_targets {
            assert!(
                db.supports_index_probe(table, column).unwrap(),
                "{table}.{column} not probeable"
            );
        }
    }

    #[test]
    fn ensure_join_indexes_skips_unprobeable_double_columns() {
        use rel::{Column, Schema, SqlType, Table};
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("m")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("score", SqlType::Double))
                    .primary_key(&["id"])
                    .build(),
            )
            .unwrap();
        let mut db = Database::new(schema).unwrap();
        let compiled = CompiledQuery {
            sql: rel::sql::parse("SELECT a.id FROM m a, m b WHERE a.score = b.score;")
                .ok()
                .and_then(|s| match s {
                    rel::sql::Statement::Select(s) => Some(s),
                    _ => None,
                })
                .unwrap(),
            bindings: vec![],
            limit: None,
            join_keys: vec![(("a".into(), "score".into()), ("b".into(), "score".into()))],
            join_index_targets: vec![("m".to_owned(), "score".to_owned())],
        };
        // `m.score` is a join target — but being DOUBLE it can never be
        // probed, so `create_index` no-ops instead of indexing it.
        super::ensure_join_indexes(&mut db, &compiled).unwrap();
        assert!(!db.supports_index_probe("m", "score").unwrap());
    }

    #[test]
    fn matches_native_evaluation_on_materialized_graph() {
        // The relational path and the native path agree.
        let (db, mapping) = fixture_db_with_rows();
        let graph = crate::materialize::materialize(&db, &mapping).unwrap();
        for q in [
            "SELECT ?x WHERE { ?x a foaf:Person . }",
            "SELECT ?x ?n WHERE { ?x foaf:firstName ?n . }",
            "SELECT ?x ?c WHERE { ?x ont:team ?t . ?t ont:teamCode ?c . }",
            "SELECT ?p WHERE { ?p dc:creator ?a . }",
            "SELECT ?p ?y WHERE { ?p ont:pubYear ?y . FILTER (?y > 2000) }",
        ] {
            let Query::Select(query) = parse_query(q) else {
                panic!()
            };
            let mut relational = execute_select(&db, &mapping, &query).unwrap();
            let mut native = sparql::evaluate_select(&graph, &query);
            relational.bindings.sort();
            native.bindings.sort();
            assert_eq!(relational.bindings, native.bindings, "query: {q}");
        }
    }
}
