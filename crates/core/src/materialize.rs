//! Materialize the database's virtual RDF view as a concrete graph.
//!
//! R3M defines how "each row in a database table is mapped to a set of
//! RDF triples" (§4): one `rdf:type` triple identifying the instance,
//! one triple per non-NULL attribute, and one triple per link-table row.
//! This module executes that reading over a whole database — the dump a
//! read-only RDB2RDF tool (D2R-style) would publish, and the reference
//! point of the semantic-equivalence property: an OntoAccess update
//! followed by materialization equals materialization followed by a
//! native triple store update.

use crate::convert::{value_to_pattern, value_to_term};
use crate::error::{OntoError, OntoResult};
use r3m::{Mapping, PropertyMapping, TableMap};
use rdf::namespace::rdf_type;
use rdf::{Graph, Iri, Term, Triple};
use rel::{Database, Value};

/// Materialize the whole database as RDF.
pub fn materialize(db: &Database, mapping: &Mapping) -> OntoResult<Graph> {
    let mut graph = Graph::new();
    for table_map in &mapping.tables {
        let table = db.schema().table(&table_map.table_name)?;
        for (_, row) in db.scan(&table_map.table_name)? {
            let subject = instance_uri(mapping, table_map, table, row)?;
            emit_row(&mut graph, mapping, table_map, table, row, &subject)?;
        }
    }
    for link in &mapping.link_tables {
        let table = db.schema().table(&link.table_name)?;
        let s_idx = table
            .column_index(&link.subject_attribute.attribute_name)
            .ok_or_else(|| OntoError::Unsupported {
                message: format!("link table {:?}: bad subject attribute", link.table_name),
            })?;
        let o_idx = table
            .column_index(&link.object_attribute.attribute_name)
            .ok_or_else(|| OntoError::Unsupported {
                message: format!("link table {:?}: bad object attribute", link.table_name),
            })?;
        let subject_target = link
            .subject_attribute
            .foreign_key_target()
            .and_then(|id| mapping.table_by_id(id))
            .ok_or_else(|| OntoError::Unsupported {
                message: format!(
                    "link table {:?}: unresolved subject target",
                    link.table_name
                ),
            })?;
        let object_target = link
            .object_attribute
            .foreign_key_target()
            .and_then(|id| mapping.table_by_id(id))
            .ok_or_else(|| OntoError::Unsupported {
                message: format!("link table {:?}: unresolved object target", link.table_name),
            })?;
        for (_, row) in db.scan(&link.table_name)? {
            let (s_val, o_val) = (&row[s_idx], &row[o_idx]);
            if s_val.is_null() || o_val.is_null() {
                continue;
            }
            let s = key_instance_uri(mapping, subject_target, s_val)?;
            let o = key_instance_uri(mapping, object_target, o_val)?;
            graph.insert(Triple::new(
                Term::Iri(s),
                link.property.clone(),
                Term::Iri(o),
            ));
        }
    }
    Ok(graph)
}

/// Materialize a single row (used by the endpoint's describe feature).
pub fn materialize_row(
    db: &Database,
    mapping: &Mapping,
    table_map: &TableMap,
    row: &[Value],
) -> OntoResult<Graph> {
    let table = db.schema().table(&table_map.table_name)?;
    let subject = instance_uri(mapping, table_map, table, row)?;
    let mut graph = Graph::new();
    emit_row(&mut graph, mapping, table_map, table, row, &subject)?;
    Ok(graph)
}

fn emit_row(
    graph: &mut Graph,
    mapping: &Mapping,
    table_map: &TableMap,
    table: &rel::Table,
    row: &[Value],
    subject: &Iri,
) -> OntoResult<()> {
    graph.insert(Triple::new(
        Term::Iri(subject.clone()),
        rdf_type(),
        Term::Iri(table_map.class.clone()),
    ));
    for attr in &table_map.attributes {
        let Some(property) = &attr.property else {
            continue;
        };
        let idx =
            table
                .column_index(&attr.attribute_name)
                .ok_or_else(|| OntoError::Unsupported {
                    message: format!(
                        "mapped attribute {}.{} missing",
                        table.name, attr.attribute_name
                    ),
                })?;
        let value = &row[idx];
        if value.is_null() {
            continue;
        }
        let object: Term = match property {
            PropertyMapping::Data(_) => value_to_term(value).expect("non-null value has a term"),
            PropertyMapping::Object(_) => {
                if let Some(pattern) = &attr.value_pattern {
                    let raw = value_to_pattern(value).expect("non-null");
                    let uri = pattern
                        .generate(None, &|name| {
                            (name == attr.attribute_name).then(|| raw.clone())
                        })
                        .map_err(|e| OntoError::Unsupported {
                            message: format!(
                                "value pattern of {}.{}: {e}",
                                table.name, attr.attribute_name
                            ),
                        })?;
                    Term::Iri(Iri::parse(uri).map_err(|e| OntoError::Unsupported {
                        message: e.to_string(),
                    })?)
                } else {
                    let target = attr
                        .foreign_key_target()
                        .and_then(|id| mapping.table_by_id(id))
                        .ok_or_else(|| OntoError::Unsupported {
                            message: format!(
                                "object property on {}.{} lacks FK target",
                                table.name, attr.attribute_name
                            ),
                        })?;
                    Term::Iri(key_instance_uri(mapping, target, value)?)
                }
            }
        };
        graph.insert(Triple::new(
            Term::Iri(subject.clone()),
            property.property().clone(),
            object,
        ));
    }
    Ok(())
}

/// Instance URI of a row (pattern attributes looked up in the row).
pub fn instance_uri(
    mapping: &Mapping,
    table_map: &TableMap,
    table: &rel::Table,
    row: &[Value],
) -> OntoResult<Iri> {
    mapping
        .instance_uri(table_map, &|attr| {
            table
                .column_index(attr)
                .and_then(|idx| value_to_pattern(&row[idx]))
        })
        .map_err(|e| OntoError::Unsupported {
            message: format!("cannot build instance URI for {}: {e}", table.name),
        })
}

/// Instance URI of the row of `target` whose single-column key is
/// `key` — used for FK objects and link-table endpoints, where only the
/// key value is at hand.
pub fn key_instance_uri(mapping: &Mapping, target: &TableMap, key: &Value) -> OntoResult<Iri> {
    let raw = value_to_pattern(key).ok_or_else(|| OntoError::Unsupported {
        message: "NULL key".into(),
    })?;
    mapping
        .instance_uri(target, &|_| Some(raw.clone()))
        .map_err(|e| OntoError::Unsupported {
            message: format!("cannot build instance URI for {}: {e}", target.table_name),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fixture_db_with_rows;
    use rdf::namespace::{dc, foaf, ont};

    #[test]
    fn materializes_rows_links_and_types() {
        let (db, mapping) = fixture_db_with_rows();
        let g = materialize(&db, &mapping).unwrap();
        let author6 = Term::iri("http://example.org/db/author6");
        // Type triple.
        assert_eq!(
            g.object(&author6, &rdf_type()),
            Some(Term::Iri(foaf::Person()))
        );
        // Data attribute.
        assert_eq!(
            g.object(&author6, &foaf::family_name()),
            Some(Term::plain("Hert"))
        );
        // Derived-IRI attribute (mbox).
        assert_eq!(
            g.object(&author6, &foaf::mbox()),
            Some(Term::iri("mailto:hert@ifi.uzh.ch"))
        );
        // FK object attribute.
        assert_eq!(
            g.object(&author6, &ont::team()),
            Some(Term::iri("http://example.org/db/team5"))
        );
        // Link table row.
        assert!(g.contains(&Triple::new(
            Term::iri("http://example.org/db/pub1"),
            dc::creator(),
            author6,
        )));
    }

    #[test]
    fn null_attributes_produce_no_triples() {
        let (db, mapping) = fixture_db_with_rows();
        let g = materialize(&db, &mapping).unwrap();
        // author7 (Reif) has no email/title.
        let author7 = Term::iri("http://example.org/db/author7");
        assert_eq!(g.object(&author7, &foaf::mbox()), None);
        assert_eq!(g.object(&author7, &foaf::title()), None);
        assert_eq!(
            g.object(&author7, &foaf::firstName()),
            Some(Term::plain("Gerald"))
        );
    }

    #[test]
    fn typed_column_values_materialize_as_typed_literals() {
        let (db, mapping) = fixture_db_with_rows();
        let g = materialize(&db, &mapping).unwrap();
        let pub1 = Term::iri("http://example.org/db/pub1");
        assert_eq!(
            g.object(&pub1, &ont::pubYear()),
            Some(Term::Literal(rdf::Literal::integer(2009)))
        );
        assert_eq!(
            g.object(&pub1, &ont::pubType()),
            Some(Term::iri("http://example.org/db/pubtype4"))
        );
    }

    #[test]
    fn empty_database_materializes_empty() {
        let (db, mapping) = crate::testutil::endpoint_fixture();
        assert!(materialize(&db, &mapping).unwrap().is_empty());
    }

    #[test]
    fn triple_count_matches_row_contents() {
        let (db, mapping) = fixture_db_with_rows();
        let g = materialize(&db, &mapping).unwrap();
        // team4: type+name+code=3, team5: 3, author6: type+5 attrs=6,
        // author7: type+firstname+lastname+team=4, pubtype4: 2,
        // publisher3: 2, pub1: type+title+year+type+publisher=5, link: 1.
        assert_eq!(g.len(), 3 + 3 + 6 + 4 + 2 + 2 + 5 + 1);
    }
}
