//! The OntoAccess mediator facade (paper §6) — compatibility wrapper.
//!
//! The paper's prototype is an HTTP endpoint: requests are parsed,
//! translated, executed, and answered with an RDF feedback document.
//! The concurrent core of that endpoint lives in [`crate::mediator`]:
//! a shared [`Mediator`] handing out [`crate::mediator::ReadSession`]s
//! and [`crate::mediator::WriteTxn`]s. This type is the original
//! single-owner facade, kept so existing callers migrate mechanically —
//! every method delegates to a privately held [`Mediator`]. New code
//! (and anything that serves concurrent traffic) should construct a
//! [`Mediator`] directly.

use crate::error::OntoResult;
use crate::feedback::Feedback;
use crate::mediator::{DatabaseReadGuard, DatabaseWriteGuard, Mediator};
pub use crate::mediator::{ScriptError, UpdateOutcome};
use r3m::Mapping;
use rdf::namespace::PrefixMap;
use rdf::Graph;
use rel::Database;
use sparql::{Solutions, UpdateOp};

/// The mediator facade: a database + an R3M mapping + the translation
/// machinery, owned by one caller. A thin wrapper over [`Mediator`];
/// use [`Endpoint::mediator`] to share the same state concurrently.
#[derive(Debug)]
pub struct Endpoint {
    mediator: Mediator,
}

impl Endpoint {
    /// Create an endpoint, validating the mapping against the schema.
    pub fn new(db: Database, mapping: Mapping) -> OntoResult<Self> {
        Ok(Endpoint {
            mediator: Mediator::new(db, mapping)?,
        })
    }

    /// Create an endpoint over a durable data directory (see
    /// [`Mediator::open_durable`]): recover the committed state, then
    /// persist every later update through the directory's write-ahead
    /// log. Returns the endpoint and what recovery found.
    pub fn open_durable(
        dir: impl AsRef<std::path::Path>,
        initial: Database,
        mapping: Mapping,
    ) -> OntoResult<(Self, dur::RecoveryReport)> {
        let (mediator, report) = Mediator::open_durable(dir, initial, mapping)?;
        Ok((Endpoint { mediator }, report))
    }

    /// The shared mediator behind this endpoint. Clones of the returned
    /// handle (and its read sessions / write transactions) observe the
    /// same database and query cache as this endpoint.
    pub fn mediator(&self) -> &Mediator {
        &self.mediator
    }

    /// Consume the endpoint, returning its mediator.
    pub fn into_mediator(self) -> Mediator {
        self.mediator
    }

    /// The underlying database (read access): a pinned snapshot of the
    /// newest published version. Holding the guard never blocks
    /// writers; it simply keeps seeing its pinned state.
    pub fn database(&self) -> DatabaseReadGuard {
        self.mediator.database()
    }

    #[doc(hidden)]
    /// Raw mutable database access, **bypassing the mediator** (no
    /// mapping validation, no translation). Test support only — see
    /// [`Mediator::database_mut_for_tests`].
    pub fn database_mut_for_tests(&mut self) -> DatabaseWriteGuard<'_> {
        self.mediator.database_mut_for_tests()
    }

    /// The mapping.
    pub fn mapping(&self) -> &Mapping {
        self.mediator.mapping()
    }

    /// Prefixes used for parsing requests and rendering output
    /// (the common vocabularies plus `ex:` for the instance namespace).
    pub fn prefixes(&self) -> &PrefixMap {
        self.mediator.prefixes()
    }

    // ------------------------------------------------------------------
    // Updates
    // ------------------------------------------------------------------

    /// Execute a SPARQL/Update given as text (one transaction).
    pub fn execute_update(&mut self, text: &str) -> OntoResult<UpdateOutcome> {
        self.mediator.execute_update(text)
    }

    /// Execute a parsed SPARQL/Update operation (one transaction).
    pub fn execute_update_op(&mut self, op: &UpdateOp) -> OntoResult<UpdateOutcome> {
        self.mediator.execute_update_op(op)
    }

    /// Execute a SPARQL 1.1 style update request: one or more operations
    /// separated by `;`.
    ///
    /// Each operation is one transaction (the paper's §5.1 atomicity
    /// unit); `atomic_script` additionally makes the *whole request*
    /// all-or-nothing — on any failure earlier operations are undone and
    /// the error reports the failing operation's index.
    pub fn execute_script(
        &mut self,
        text: &str,
        atomic_script: bool,
    ) -> Result<Vec<UpdateOutcome>, ScriptError> {
        self.mediator.execute_script(text, atomic_script)
    }

    /// Execute an update and convert the result into a feedback document
    /// (what the HTTP endpoint would send back).
    pub fn execute_update_with_feedback(
        &mut self,
        text: &str,
    ) -> (Feedback, OntoResult<UpdateOutcome>) {
        self.mediator.execute_update_with_feedback(text)
    }

    // ------------------------------------------------------------------
    // Queries (read-only: `&self`)
    // ------------------------------------------------------------------

    /// Execute a SPARQL query given as text. Compiled queries are
    /// cached per query text with clock (second-chance) eviction:
    /// repeated requests skip parsing and translation and go straight
    /// to the planner, and hot entries survive capacity pressure from
    /// one-off queries.
    pub fn execute_query(&self, text: &str) -> OntoResult<sparql::QueryOutcome> {
        self.mediator.execute_query(text)
    }

    /// Number of compiled queries currently cached.
    pub fn cached_query_count(&self) -> usize {
        self.mediator.cached_query_count()
    }

    /// Whether `text` currently has a cached compilation.
    pub fn is_query_cached(&self, text: &str) -> bool {
        self.mediator.is_query_cached(text)
    }

    /// Set the compiled-query cache capacity (≥ 1). Nothing is evicted
    /// immediately; a cache above the new capacity shrinks to it as
    /// later misses evict.
    pub fn set_query_cache_capacity(&mut self, capacity: usize) {
        self.mediator.set_query_cache_capacity(capacity);
    }

    /// Execute a SELECT given as text.
    pub fn select(&self, text: &str) -> OntoResult<Solutions> {
        self.mediator.select(text)
    }

    /// Materialize the database's full RDF view.
    pub fn materialize(&self) -> OntoResult<Graph> {
        self.mediator.materialize()
    }

    /// Describe one instance URI: the triples of its row plus its
    /// link-table triples (in either role). The D2R-style
    /// "dereferenceable URI" read the paper's related work describes
    /// (§2), here over the live database.
    pub fn describe(&self, uri: &rdf::Iri) -> OntoResult<Graph> {
        self.mediator.describe(uri)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::OntoError;
    use crate::testutil::fixture_db_with_rows;
    use rdf::namespace::foaf;
    use rdf::Term;

    fn endpoint() -> Endpoint {
        let (db, mapping) = fixture_db_with_rows();
        Endpoint::new(db, mapping).unwrap()
    }

    #[test]
    fn full_insert_query_delete_cycle() {
        let mut ep = endpoint();
        let outcome = ep
            .execute_update(
                "INSERT DATA { ex:author8 foaf:family_name \"Gall\" ; \
                 foaf:firstName \"Harald\" . }",
            )
            .unwrap();
        assert_eq!(outcome.statements_executed, 1);

        let sols = ep
            .select("SELECT ?x WHERE { ?x foaf:family_name \"Gall\" . }")
            .unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(
            sols.bindings[0]["x"],
            Term::iri("http://example.org/db/author8")
        );

        ep.execute_update("DELETE DATA { ex:author8 foaf:firstName \"Harald\" . }")
            .unwrap();
        let sols = ep
            .select("SELECT ?n WHERE { ex:author8 foaf:firstName ?n . }")
            .unwrap();
        assert!(sols.is_empty());
    }

    #[test]
    fn rejected_update_produces_rejection_feedback() {
        let mut ep = endpoint();
        let (feedback, result) = ep.execute_update_with_feedback(
            "INSERT DATA { ex:author9 foaf:firstName \"No Lastname\" . }",
        );
        assert!(result.is_err());
        assert!(!feedback.is_success());
        let text = feedback.to_turtle();
        assert!(text.contains("MissingRequiredProperty"));
    }

    #[test]
    fn successful_update_produces_confirmation_feedback() {
        let mut ep = endpoint();
        let (feedback, result) =
            ep.execute_update_with_feedback("INSERT DATA { ex:team9 foaf:name \"T9\" . }");
        assert!(result.is_ok());
        assert!(feedback.is_success());
        assert!(feedback.to_turtle().contains("fb:Confirmation"));
    }

    #[test]
    fn parse_error_is_reported() {
        let mut ep = endpoint();
        let err = ep.execute_update("INSERT GARBAGE").unwrap_err();
        assert!(matches!(err, OntoError::Parse { .. }));
    }

    #[test]
    fn parse_error_feedback_without_double_parse() {
        let mut ep = endpoint();
        let (feedback, result) = ep.execute_update_with_feedback("INSERT GARBAGE");
        assert!(matches!(result, Err(OntoError::Parse { .. })));
        assert!(!feedback.is_success());
    }

    #[test]
    fn modify_through_endpoint_is_atomic() {
        let mut ep = endpoint();
        let before = ep.materialize().unwrap();
        // Second binding fails (dangling team) → nothing changes, even
        // though the first binding alone would have succeeded.
        let err = ep
            .execute_update(
                "MODIFY DELETE { } INSERT { ?x ont:team ex:team99 . } \
                 WHERE { ?x a foaf:Person . }",
            )
            .unwrap_err();
        assert!(matches!(err, OntoError::DanglingObject { .. }));
        assert_eq!(ep.materialize().unwrap(), before);
    }

    #[test]
    fn query_cache_hits_and_stays_fresh_across_updates() {
        let mut ep = endpoint();
        let q = "SELECT ?x WHERE { ?x a foaf:Person . }";
        assert_eq!(ep.cached_query_count(), 0);
        assert_eq!(ep.select(q).unwrap().len(), 2);
        assert_eq!(ep.cached_query_count(), 1);
        // Cached compilation re-executes against fresh data.
        ep.execute_update("INSERT DATA { ex:author8 foaf:family_name \"Gall\" . }")
            .unwrap();
        assert_eq!(ep.select(q).unwrap().len(), 3);
        assert_eq!(ep.cached_query_count(), 1);
        // ASK goes through the same cache.
        ep.execute_query("ASK { ?x foaf:family_name \"Gall\" . }")
            .unwrap();
        assert_eq!(ep.cached_query_count(), 2);
        // Unparseable/uncompilable texts are not cached.
        assert!(ep.execute_query("SELECT nonsense").is_err());
        assert_eq!(ep.cached_query_count(), 2);
    }

    #[test]
    fn query_cache_evicts_cold_and_keeps_hot_entries() {
        let mut ep = endpoint();
        ep.set_query_cache_capacity(3);
        let hot = "SELECT ?x WHERE { ?x a foaf:Person . }";
        ep.select(hot).unwrap();
        // Fill the cache with one-off queries while re-touching the hot
        // entry between each, so its referenced bit stays set and the
        // clock always finds a colder victim.
        for year in [2001, 2002, 2003, 2004, 2005] {
            let cold = format!("SELECT ?p WHERE {{ ?p ont:pubYear \"{year}\" . }}");
            ep.select(&cold).unwrap();
            ep.select(hot).unwrap();
        }
        assert!(ep.cached_query_count() <= 3);
        assert!(ep.is_query_cached(hot), "hot entry evicted by the clock");
        // The most recent cold query survived; the oldest did not.
        assert!(ep.is_query_cached("SELECT ?p WHERE { ?p ont:pubYear \"2005\" . }"));
        assert!(!ep.is_query_cached("SELECT ?p WHERE { ?p ont:pubYear \"2001\" . }"));
        // Evicted entries recompile and still answer correctly.
        assert_eq!(ep.select(hot).unwrap().len(), 2);
        // Lowering the capacity converges on the next miss: the cache
        // shrinks below the old high-water size instead of pinning it.
        ep.set_query_cache_capacity(2);
        ep.select("SELECT ?p WHERE { ?p ont:pubYear \"2010\" . }")
            .unwrap();
        assert_eq!(ep.cached_query_count(), 2);
    }

    #[test]
    fn ask_through_endpoint() {
        let ep = endpoint();
        let outcome = ep
            .execute_query("ASK { ?x foaf:family_name \"Hert\" . }")
            .unwrap();
        assert_eq!(outcome, sparql::QueryOutcome::Boolean(true));
    }

    #[test]
    fn script_executes_multiple_operations() {
        let mut ep = endpoint();
        let outcomes = ep
            .execute_script(
                "INSERT DATA { ex:team9 foaf:name \"T9\" . } ;\n\
                 INSERT DATA { ex:author8 foaf:family_name \"Gall\" ; ont:team ex:team9 . } ;\n\
                 DELETE DATA { ex:author8 ont:team ex:team9 . }",
                false,
            )
            .unwrap();
        assert_eq!(outcomes.len(), 3);
        assert_eq!(ep.database().row_count("team").unwrap(), 3);
    }

    #[test]
    fn atomic_script_rolls_back_earlier_operations() {
        let mut ep = endpoint();
        let before = ep.materialize().unwrap();
        let err = ep
            .execute_script(
                "INSERT DATA { ex:team9 foaf:name \"T9\" . } ;\n\
                 INSERT DATA { ex:author8 ont:team ex:team424242 . }",
                true,
            )
            .unwrap_err();
        assert_eq!(err.operation_index, 1);
        assert_eq!(err.completed.len(), 1);
        assert_eq!(ep.materialize().unwrap(), before);
    }

    #[test]
    fn non_atomic_script_keeps_earlier_operations() {
        let mut ep = endpoint();
        let err = ep
            .execute_script(
                "INSERT DATA { ex:team9 foaf:name \"T9\" . } ;\n\
                 INSERT DATA { ex:author8 ont:team ex:team424242 . }",
                false,
            )
            .unwrap_err();
        assert_eq!(err.operation_index, 1);
        assert_eq!(ep.database().row_count("team").unwrap(), 3);
    }

    #[test]
    fn endpoint_rejects_inconsistent_mapping() {
        let (db, mut mapping) = fixture_db_with_rows();
        mapping.tables[0].table_name = "ghost".into();
        assert!(Endpoint::new(db, mapping).is_err());
    }

    #[test]
    fn materialization_tracks_updates() {
        let mut ep = endpoint();
        let before = ep.materialize().unwrap().len();
        ep.execute_update("INSERT DATA { ex:team9 foaf:name \"T9\" ; ont:teamCode \"T\" . }")
            .unwrap();
        let after = ep.materialize().unwrap().len();
        assert_eq!(after, before + 3); // type + name + code
    }

    #[test]
    fn update_equivalence_with_native_store() {
        // The paper's core semantic claim, end to end: updating through
        // OntoAccess then materializing equals materializing then
        // updating a native triple store.
        // Note: creating a row *entails* its rdf:type triple in the
        // relational view, so exact commutation requires the request to
        // assert the type explicitly (the conceptual gap of §3).
        let mut ep = endpoint();
        let mut native = ep.materialize().unwrap();
        let updates = [
            "INSERT DATA { ex:team9 a foaf:Group ; foaf:name \"T9\" . }",
            "INSERT DATA { ex:author8 a foaf:Person ; foaf:family_name \"Gall\" ; ont:team ex:team9 . }",
            "DELETE DATA { ex:author6 foaf:title \"Mr\" . }",
            "MODIFY DELETE { ?x foaf:mbox ?m . } \
             INSERT { ?x foaf:mbox <mailto:new@uzh.ch> . } \
             WHERE { ?x foaf:family_name \"Hert\" ; foaf:mbox ?m . }",
        ];
        for update in updates {
            ep.execute_update(update).unwrap();
            let op = sparql::parse_update_with_prefixes(update, ep.prefixes().clone()).unwrap();
            sparql::apply(&mut native, &op).unwrap();
            assert_eq!(
                ep.materialize().unwrap(),
                native,
                "divergence after: {update}"
            );
        }
        let _ = foaf::name();
    }
}

#[cfg(test)]
mod check_constraint_tests {
    use super::*;
    use crate::error::OntoError;
    use r3m::ConstraintInfo;
    use rel::{Column, Schema, SqlType, Table};

    // A schema with a CHECK on publication.year, plus a mapping that
    // records it — exercising the §8 "assertions" extension end to end.
    fn endpoint_with_check() -> Endpoint {
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("publication")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("title", SqlType::Varchar).not_null())
                    .column(Column::new("year", SqlType::Integer))
                    .primary_key(&["id"])
                    .check("year_range", "year >= 1900 AND year <= 2100")
                    .build(),
            )
            .unwrap();
        let mut mapping = crate::usecase::mapping();
        mapping.tables.retain(|t| t.table_name == "publication");
        mapping.link_tables.clear();
        let publication = &mut mapping.tables[0];
        publication
            .attributes
            .retain(|a| ["id", "title", "year"].contains(&a.attribute_name.as_str()));
        publication
            .attributes
            .iter_mut()
            .find(|a| a.attribute_name == "year")
            .unwrap()
            .constraints = vec![ConstraintInfo::Check {
            name: "year_range".into(),
            predicate: "year >= 1900 AND year <= 2100".into(),
        }];
        // year is nullable in this cut-down schema.
        Endpoint::new(rel::Database::new(schema).unwrap(), mapping).unwrap()
    }

    #[test]
    fn check_violation_is_rejected_with_feedback() {
        let mut ep = endpoint_with_check();
        ep.execute_update("INSERT DATA { ex:pub1 dc:title \"ok\" ; ont:pubYear \"2009\" . }")
            .unwrap();
        let (feedback, result) = ep.execute_update_with_feedback(
            "INSERT DATA { ex:pub2 dc:title \"bad\" ; ont:pubYear \"1492\" . }",
        );
        let err = result.unwrap_err();
        assert!(matches!(
            err,
            OntoError::Database(rel::RelError::CheckViolation { ref name, .. })
                if name == "year_range"
        ));
        assert!(feedback.to_turtle().contains("DatabaseError"));
        // Atomicity: the violating row is absent.
        assert_eq!(ep.database().row_count("publication").unwrap(), 1);
    }

    #[test]
    fn check_violation_on_update_path() {
        let mut ep = endpoint_with_check();
        ep.execute_update("INSERT DATA { ex:pub1 dc:title \"ok\" ; ont:pubYear \"2000\" . }")
            .unwrap();
        let err = ep
            .execute_update(
                "MODIFY DELETE { ex:pub1 ont:pubYear ?y . } \
                 INSERT { ex:pub1 ont:pubYear \"9999\" . } \
                 WHERE { ex:pub1 ont:pubYear ?y . }",
            )
            .unwrap_err();
        assert!(matches!(
            err,
            OntoError::Database(rel::RelError::CheckViolation { .. })
        ));
    }
}

#[cfg(test)]
mod describe_tests {
    use super::*;
    use crate::error::OntoError;
    use crate::testutil::fixture_db_with_rows;
    use rdf::namespace::{dc, foaf, rdf_type};
    use rdf::Term;

    fn endpoint() -> Endpoint {
        let (db, mapping) = fixture_db_with_rows();
        Endpoint::new(db, mapping).unwrap()
    }

    #[test]
    fn describe_author_includes_attributes_and_links() {
        let ep = endpoint();
        let uri = rdf::Iri::parse("http://example.org/db/author6").unwrap();
        let g = ep.describe(&uri).unwrap();
        let author6 = Term::Iri(uri);
        assert_eq!(
            g.object(&author6, &rdf_type()),
            Some(Term::Iri(foaf::Person()))
        );
        assert_eq!(
            g.object(&author6, &foaf::family_name()),
            Some(Term::plain("Hert"))
        );
        // Link triple with author6 in object position.
        assert!(g.contains(&rdf::Triple::new(
            Term::iri("http://example.org/db/pub1"),
            dc::creator(),
            author6,
        )));
        // But not the whole database.
        assert!(g
            .triples_for_subject(&Term::iri("http://example.org/db/team4"))
            .is_empty());
    }

    #[test]
    fn describe_publication_includes_creator_links_as_subject() {
        let ep = endpoint();
        let uri = rdf::Iri::parse("http://example.org/db/pub1").unwrap();
        let g = ep.describe(&uri).unwrap();
        assert!(g.contains(&rdf::Triple::new(
            Term::Iri(uri),
            dc::creator(),
            Term::iri("http://example.org/db/author6"),
        )));
    }

    #[test]
    fn describe_absent_row_is_empty() {
        let ep = endpoint();
        let uri = rdf::Iri::parse("http://example.org/db/author999").unwrap();
        assert!(ep.describe(&uri).unwrap().is_empty());
    }

    #[test]
    fn describe_unmapped_uri_is_error() {
        let ep = endpoint();
        let uri = rdf::Iri::parse("http://example.org/db/wizard1").unwrap();
        assert!(matches!(
            ep.describe(&uri),
            Err(OntoError::UnknownSubject { .. })
        ));
    }
}
