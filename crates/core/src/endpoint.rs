//! The OntoAccess mediator facade (paper §6).
//!
//! The paper's prototype is an HTTP endpoint: requests are parsed,
//! translated, executed, and answered with an RDF feedback document.
//! This type is that endpoint minus the socket: a transport layer can
//! wrap [`Endpoint::execute_update`] /
//! [`Endpoint::execute_query`] unchanged. The mapping is validated
//! against the schema at construction — a disagreeing mapping would let
//! invalid updates through or reject valid ones.

use crate::error::{OntoError, OntoResult};
use crate::feedback::Feedback;
use crate::modify::ModifyReport;
use crate::query::CompiledQuery;
use crate::translate::{execute_sorted, TranslateOptions};
use r3m::Mapping;
use rdf::namespace::PrefixMap;
use rdf::Graph;
use rel::sql::Statement;
use rel::Database;
use sparql::{Query, Solutions, UpdateOp};
use std::collections::HashMap;

/// Result of a successful update.
#[derive(Debug, Clone)]
pub struct UpdateOutcome {
    /// Operation kind (`INSERT DATA`, `DELETE DATA`, `MODIFY`).
    pub operation: String,
    /// SQL statements executed, in execution order — one per
    /// table-level group on the set-based write path.
    pub statements: Vec<Statement>,
    /// Number of statement groups executed (0 = request was a no-op).
    pub statements_executed: usize,
    /// Total rows inserted/updated/deleted across all groups.
    pub rows_affected: usize,
    /// MODIFY-specific artifacts (Algorithm 2's intermediate steps).
    pub modify: Option<ModifyReport>,
}

/// Failure of a multi-operation update request.
#[derive(Debug, Clone)]
pub struct ScriptError {
    /// Zero-based index of the failing operation.
    pub operation_index: usize,
    /// Outcomes of the operations that completed before the failure
    /// (already rolled back when the script ran atomically).
    pub completed: Vec<UpdateOutcome>,
    /// The failing operation's error.
    pub error: OntoError,
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "operation {} of the update request failed: {}",
            self.operation_index + 1,
            self.error
        )
    }
}

impl std::error::Error for ScriptError {}

// A parse+compile result cached per query text. Compilation depends
// only on the schema and the mapping — both fixed after construction —
// so cached entries never go stale as data changes.
#[derive(Debug, Clone)]
enum CachedQuery {
    Select(CompiledQuery),
    Ask(CompiledQuery),
}

// One cache slot: the compiled query plus its last-use stamp for LRU
// eviction.
#[derive(Debug, Clone)]
struct CacheEntry {
    compiled: CachedQuery,
    last_used: u64,
}

// Default number of cached texts (repeated endpoint workloads use a
// handful of query shapes; the bound only guards degenerate clients).
const QUERY_CACHE_CAPACITY: usize = 256;

/// The mediator: a database + an R3M mapping + the translation
/// machinery.
#[derive(Debug, Clone)]
pub struct Endpoint {
    db: Database,
    mapping: Mapping,
    prefixes: PrefixMap,
    query_cache: HashMap<String, CacheEntry>,
    query_cache_capacity: usize,
    cache_clock: u64,
}

impl Endpoint {
    /// Create an endpoint, validating the mapping against the schema.
    pub fn new(db: Database, mapping: Mapping) -> OntoResult<Self> {
        r3m::validate_strict(&mapping, db.schema()).map_err(|issue| OntoError::Unsupported {
            message: format!("mapping rejected: {issue}"),
        })?;
        let mut prefixes = PrefixMap::common();
        if let Some(prefix) = &mapping.uri_prefix {
            prefixes.insert("ex", prefix.clone());
        }
        Ok(Endpoint {
            db,
            mapping,
            prefixes,
            query_cache: HashMap::new(),
            query_cache_capacity: QUERY_CACHE_CAPACITY,
            cache_clock: 0,
        })
    }

    /// The underlying database (read access).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The underlying database (mutable — bypasses the mediator; used by
    /// fixtures and tests to seed data).
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The mapping.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// Prefixes used for parsing requests and rendering output
    /// (the common vocabularies plus `ex:` for the instance namespace).
    pub fn prefixes(&self) -> &PrefixMap {
        &self.prefixes
    }

    // ------------------------------------------------------------------
    // Updates
    // ------------------------------------------------------------------

    /// Execute a SPARQL/Update given as text.
    pub fn execute_update(&mut self, text: &str) -> OntoResult<UpdateOutcome> {
        let op = sparql::parse_update_with_prefixes(text, self.prefixes.clone())?;
        self.execute_update_op(&op)
    }

    /// Execute a parsed SPARQL/Update operation.
    pub fn execute_update_op(&mut self, op: &UpdateOp) -> OntoResult<UpdateOutcome> {
        match op {
            UpdateOp::InsertData { triples } => {
                let stmts = crate::translate::insert::translate_insert_data(
                    &self.db,
                    &self.mapping,
                    triples,
                    TranslateOptions::default(),
                )?;
                let executed = execute_sorted(&mut self.db, stmts)?;
                Ok(UpdateOutcome {
                    operation: "INSERT DATA".into(),
                    statements_executed: executed.statements.len(),
                    rows_affected: executed.rows_affected,
                    statements: executed.statements,
                    modify: None,
                })
            }
            UpdateOp::DeleteData { triples } => {
                let stmts = crate::translate::delete::translate_delete_data(
                    &self.db,
                    &self.mapping,
                    triples,
                )?;
                let executed = execute_sorted(&mut self.db, stmts)?;
                Ok(UpdateOutcome {
                    operation: "DELETE DATA".into(),
                    statements_executed: executed.statements.len(),
                    rows_affected: executed.rows_affected,
                    statements: executed.statements,
                    modify: None,
                })
            }
            UpdateOp::Modify {
                delete,
                insert,
                pattern,
            } => {
                // MODIFY is atomic: run rounds against a scratch copy;
                // adopt it only if everything succeeded.
                let mut scratch = self.db.clone();
                let report = crate::modify::execute_modify(
                    &mut scratch,
                    &self.mapping,
                    delete,
                    insert,
                    pattern,
                )?;
                self.db = scratch;
                Ok(UpdateOutcome {
                    operation: "MODIFY".into(),
                    statements_executed: report.executed.len(),
                    rows_affected: report.rows_affected,
                    statements: report.executed.clone(),
                    modify: Some(report),
                })
            }
        }
    }

    /// Execute a SPARQL 1.1 style update request: one or more operations
    /// separated by `;`.
    ///
    /// Each operation is one transaction (the paper's §5.1 atomicity
    /// unit); `atomic_script` additionally makes the *whole request*
    /// all-or-nothing — on any failure earlier operations are undone and
    /// the error reports the failing operation's index.
    pub fn execute_script(
        &mut self,
        text: &str,
        atomic_script: bool,
    ) -> Result<Vec<UpdateOutcome>, ScriptError> {
        let ops =
            sparql::parse_update_script(text, self.prefixes.clone()).map_err(|e| ScriptError {
                operation_index: 0,
                completed: Vec::new(),
                error: e.into(),
            })?;
        let snapshot = if atomic_script {
            Some(self.db.clone())
        } else {
            None
        };
        let mut outcomes = Vec::with_capacity(ops.len());
        for (i, op) in ops.iter().enumerate() {
            match self.execute_update_op(op) {
                Ok(outcome) => outcomes.push(outcome),
                Err(error) => {
                    if let Some(snapshot) = snapshot {
                        self.db = snapshot;
                    }
                    return Err(ScriptError {
                        operation_index: i,
                        completed: outcomes,
                        error,
                    });
                }
            }
        }
        Ok(outcomes)
    }

    /// Execute an update and convert the result into a feedback document
    /// (what the HTTP endpoint would send back).
    pub fn execute_update_with_feedback(
        &mut self,
        text: &str,
    ) -> (Feedback, OntoResult<UpdateOutcome>) {
        let operation = sparql::parse_update_with_prefixes(text, self.prefixes.clone())
            .map(|op| op.name().to_owned())
            .unwrap_or_else(|_| "unparsed".to_owned());
        let result = self.execute_update(text);
        let feedback = match &result {
            Ok(outcome) => Feedback::Success {
                operation: outcome.operation.clone(),
                statements: outcome.statements_executed,
                rows: outcome.rows_affected,
            },
            Err(error) => Feedback::Rejection {
                operation,
                error: error.clone(),
            },
        };
        (feedback, result)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Execute a SPARQL query given as text. Compiled queries are
    /// cached per query text with LRU eviction: repeated requests skip
    /// parsing and translation and go straight to the planner, and hot
    /// entries survive capacity pressure from one-off queries.
    pub fn execute_query(&mut self, text: &str) -> OntoResult<sparql::QueryOutcome> {
        self.cache_clock += 1;
        let stamp = self.cache_clock;
        if !self.query_cache.contains_key(text) {
            let query: Query = sparql::parse_query_with_prefixes(text, self.prefixes.clone())?;
            let compiled = match &query {
                Query::Select(select) => CachedQuery::Select(crate::query::compile_select(
                    &self.db,
                    &self.mapping,
                    select,
                )?),
                Query::Ask(ask) => CachedQuery::Ask(crate::query::compile_select(
                    &self.db,
                    &self.mapping,
                    &crate::query::ask_to_select(ask),
                )?),
            };
            // Evict least-recently-used entries until the new insertion
            // fits. An O(capacity) scan per eviction, paid only on a
            // miss at capacity — the hit path stays a single hash
            // lookup. The loop (not a single eviction) lets a lowered
            // capacity converge from a larger high-water size.
            while self.query_cache.len() >= self.query_cache_capacity {
                let Some(coldest) = self
                    .query_cache
                    .iter()
                    .min_by_key(|(_, entry)| entry.last_used)
                    .map(|(text, _)| text.clone())
                else {
                    break;
                };
                self.query_cache.remove(&coldest);
            }
            self.query_cache.insert(
                text.to_owned(),
                CacheEntry {
                    compiled,
                    last_used: stamp,
                },
            );
        }
        // Disjoint field borrows: the compiled entry stays in the cache
        // while execution mutates only `self.db` — no per-hit clone.
        let entry = self.query_cache.get_mut(text).expect("just ensured");
        entry.last_used = stamp;
        match &entry.compiled {
            CachedQuery::Select(compiled) => Ok(sparql::QueryOutcome::Solutions(
                crate::query::run_compiled(&mut self.db, compiled)?,
            )),
            CachedQuery::Ask(compiled) => {
                let solutions = crate::query::run_compiled(&mut self.db, compiled)?;
                Ok(sparql::QueryOutcome::Boolean(!solutions.is_empty()))
            }
        }
    }

    /// Number of compiled queries currently cached.
    pub fn cached_query_count(&self) -> usize {
        self.query_cache.len()
    }

    /// Whether `text` currently has a cached compilation.
    pub fn is_query_cached(&self, text: &str) -> bool {
        self.query_cache.contains_key(text)
    }

    /// Set the compiled-query cache capacity (≥ 1). Nothing is evicted
    /// immediately; a cache above the new capacity shrinks to it as
    /// later misses evict least-recently-used entries. Production
    /// deployments can size this to their distinct-query working set.
    pub fn set_query_cache_capacity(&mut self, capacity: usize) {
        self.query_cache_capacity = capacity.max(1);
    }

    /// Execute a SELECT given as text.
    pub fn select(&mut self, text: &str) -> OntoResult<Solutions> {
        match self.execute_query(text)? {
            sparql::QueryOutcome::Solutions(s) => Ok(s),
            sparql::QueryOutcome::Boolean(_) => Err(OntoError::Unsupported {
                message: "expected a SELECT query".into(),
            }),
        }
    }

    /// Materialize the database's full RDF view.
    pub fn materialize(&self) -> OntoResult<Graph> {
        crate::materialize::materialize(&self.db, &self.mapping)
    }

    /// Describe one instance URI: the triples of its row plus its
    /// link-table triples (in either role). The D2R-style
    /// "dereferenceable URI" read the paper's related work describes
    /// (§2), here over the live database.
    pub fn describe(&self, uri: &rdf::Iri) -> OntoResult<Graph> {
        let identified =
            crate::translate::identify(&self.db, &self.mapping, &rdf::Term::Iri(uri.clone()))?;
        let table = self.db.schema().table(&identified.table_map.table_name)?;
        let Some(row_id) = crate::translate::find_row(&self.db, &identified)? else {
            return Ok(Graph::new()); // mapped but absent: empty description
        };
        let row = self
            .db
            .row(&identified.table_map.table_name, row_id)?
            .expect("row id valid")
            .clone();
        let mut graph = crate::materialize::materialize_row(
            &self.db,
            &self.mapping,
            identified.table_map,
            &row,
        )?;
        // Link-table triples where this instance is subject or object.
        let key = identified.pk_values(table)?;
        if key.len() == 1 {
            let key = &key[0];
            for link in &self.mapping.link_tables {
                let link_table = self.db.schema().table(&link.table_name)?;
                let s_idx = link_table
                    .column_index(&link.subject_attribute.attribute_name)
                    .expect("validated mapping");
                let o_idx = link_table
                    .column_index(&link.object_attribute.attribute_name)
                    .expect("validated mapping");
                let s_target = link
                    .subject_attribute
                    .foreign_key_target()
                    .and_then(|id| self.mapping.table_by_id(id));
                let o_target = link
                    .object_attribute
                    .foreign_key_target()
                    .and_then(|id| self.mapping.table_by_id(id));
                let (Some(s_target), Some(o_target)) = (s_target, o_target) else {
                    continue;
                };
                let as_subject = s_target.table_name == identified.table_map.table_name;
                let as_object = o_target.table_name == identified.table_map.table_name;
                // Candidate link rows by index on whichever endpoint
                // columns reference this instance (both are FK columns,
                // so normally indexed); a failed probe falls back to
                // scanning.
                let mut candidates: Option<Vec<rel::RowId>> = Some(Vec::new());
                for (role_active, column) in [
                    (as_subject, &link.subject_attribute.attribute_name),
                    (as_object, &link.object_attribute.attribute_name),
                ] {
                    if !role_active {
                        continue;
                    }
                    match self.db.index_probe(&link.table_name, column, key)? {
                        Some(ids) => {
                            if let Some(c) = &mut candidates {
                                c.extend(ids);
                            }
                        }
                        None => candidates = None,
                    }
                }
                let link_rows: Vec<&Vec<rel::Value>> = match candidates {
                    Some(mut ids) => {
                        ids.sort_unstable();
                        ids.dedup();
                        let mut rows = Vec::with_capacity(ids.len());
                        for id in ids {
                            rows.push(self.db.row(&link.table_name, id)?.expect("live id"));
                        }
                        rows
                    }
                    None => self.db.scan(&link.table_name)?.map(|(_, r)| r).collect(),
                };
                for link_row in link_rows {
                    let s_val = &link_row[s_idx];
                    let o_val = &link_row[o_idx];
                    if s_val.is_null() || o_val.is_null() {
                        continue;
                    }
                    let relevant = (as_subject && s_val.sql_eq(key) == Some(true))
                        || (as_object && o_val.sql_eq(key) == Some(true));
                    if relevant {
                        let s =
                            crate::materialize::key_instance_uri(&self.mapping, s_target, s_val)?;
                        let o =
                            crate::materialize::key_instance_uri(&self.mapping, o_target, o_val)?;
                        graph.insert(rdf::Triple::new(
                            rdf::Term::Iri(s),
                            link.property.clone(),
                            rdf::Term::Iri(o),
                        ));
                    }
                }
            }
        }
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fixture_db_with_rows;
    use rdf::namespace::foaf;
    use rdf::Term;

    fn endpoint() -> Endpoint {
        let (db, mapping) = fixture_db_with_rows();
        Endpoint::new(db, mapping).unwrap()
    }

    #[test]
    fn full_insert_query_delete_cycle() {
        let mut ep = endpoint();
        let outcome = ep
            .execute_update(
                "INSERT DATA { ex:author8 foaf:family_name \"Gall\" ; \
                 foaf:firstName \"Harald\" . }",
            )
            .unwrap();
        assert_eq!(outcome.statements_executed, 1);

        let sols = ep
            .select("SELECT ?x WHERE { ?x foaf:family_name \"Gall\" . }")
            .unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(
            sols.bindings[0]["x"],
            Term::iri("http://example.org/db/author8")
        );

        ep.execute_update("DELETE DATA { ex:author8 foaf:firstName \"Harald\" . }")
            .unwrap();
        let sols = ep
            .select("SELECT ?n WHERE { ex:author8 foaf:firstName ?n . }")
            .unwrap();
        assert!(sols.is_empty());
    }

    #[test]
    fn rejected_update_produces_rejection_feedback() {
        let mut ep = endpoint();
        let (feedback, result) = ep.execute_update_with_feedback(
            "INSERT DATA { ex:author9 foaf:firstName \"No Lastname\" . }",
        );
        assert!(result.is_err());
        assert!(!feedback.is_success());
        let text = feedback.to_turtle();
        assert!(text.contains("MissingRequiredProperty"));
    }

    #[test]
    fn successful_update_produces_confirmation_feedback() {
        let mut ep = endpoint();
        let (feedback, result) =
            ep.execute_update_with_feedback("INSERT DATA { ex:team9 foaf:name \"T9\" . }");
        assert!(result.is_ok());
        assert!(feedback.is_success());
        assert!(feedback.to_turtle().contains("fb:Confirmation"));
    }

    #[test]
    fn parse_error_is_reported() {
        let mut ep = endpoint();
        let err = ep.execute_update("INSERT GARBAGE").unwrap_err();
        assert!(matches!(err, OntoError::Parse { .. }));
    }

    #[test]
    fn modify_through_endpoint_is_atomic() {
        let mut ep = endpoint();
        let before = ep.materialize().unwrap();
        // Second binding fails (dangling team) → nothing changes, even
        // though the first binding alone would have succeeded.
        let err = ep
            .execute_update(
                "MODIFY DELETE { } INSERT { ?x ont:team ex:team99 . } \
                 WHERE { ?x a foaf:Person . }",
            )
            .unwrap_err();
        assert!(matches!(err, OntoError::DanglingObject { .. }));
        assert_eq!(ep.materialize().unwrap(), before);
    }

    #[test]
    fn query_cache_hits_and_stays_fresh_across_updates() {
        let mut ep = endpoint();
        let q = "SELECT ?x WHERE { ?x a foaf:Person . }";
        assert_eq!(ep.cached_query_count(), 0);
        assert_eq!(ep.select(q).unwrap().len(), 2);
        assert_eq!(ep.cached_query_count(), 1);
        // Cached compilation re-executes against fresh data.
        ep.execute_update("INSERT DATA { ex:author8 foaf:family_name \"Gall\" . }")
            .unwrap();
        assert_eq!(ep.select(q).unwrap().len(), 3);
        assert_eq!(ep.cached_query_count(), 1);
        // ASK goes through the same cache.
        ep.execute_query("ASK { ?x foaf:family_name \"Gall\" . }")
            .unwrap();
        assert_eq!(ep.cached_query_count(), 2);
        // Unparseable/uncompilable texts are not cached.
        assert!(ep.execute_query("SELECT nonsense").is_err());
        assert_eq!(ep.cached_query_count(), 2);
    }

    #[test]
    fn query_cache_evicts_lru_and_keeps_hot_entries() {
        let mut ep = endpoint();
        ep.set_query_cache_capacity(3);
        let hot = "SELECT ?x WHERE { ?x a foaf:Person . }";
        ep.select(hot).unwrap();
        // Fill the cache with one-off queries while re-touching the hot
        // entry between each, so it is never the least recently used.
        for year in [2001, 2002, 2003, 2004, 2005] {
            let cold = format!("SELECT ?p WHERE {{ ?p ont:pubYear \"{year}\" . }}");
            ep.select(&cold).unwrap();
            ep.select(hot).unwrap();
        }
        assert!(ep.cached_query_count() <= 3);
        assert!(ep.is_query_cached(hot), "hot entry evicted under LRU");
        // The most recent cold query survived; the oldest did not.
        assert!(ep.is_query_cached("SELECT ?p WHERE { ?p ont:pubYear \"2005\" . }"));
        assert!(!ep.is_query_cached("SELECT ?p WHERE { ?p ont:pubYear \"2001\" . }"));
        // Evicted entries recompile and still answer correctly.
        assert_eq!(ep.select(hot).unwrap().len(), 2);
        // Lowering the capacity converges on the next miss: the cache
        // shrinks below the old high-water size instead of pinning it.
        ep.set_query_cache_capacity(2);
        ep.select("SELECT ?p WHERE { ?p ont:pubYear \"2010\" . }")
            .unwrap();
        assert_eq!(ep.cached_query_count(), 2);
    }

    #[test]
    fn ask_through_endpoint() {
        let mut ep = endpoint();
        let outcome = ep
            .execute_query("ASK { ?x foaf:family_name \"Hert\" . }")
            .unwrap();
        assert_eq!(outcome, sparql::QueryOutcome::Boolean(true));
    }

    #[test]
    fn script_executes_multiple_operations() {
        let mut ep = endpoint();
        let outcomes = ep
            .execute_script(
                "INSERT DATA { ex:team9 foaf:name \"T9\" . } ;\n\
                 INSERT DATA { ex:author8 foaf:family_name \"Gall\" ; ont:team ex:team9 . } ;\n\
                 DELETE DATA { ex:author8 ont:team ex:team9 . }",
                false,
            )
            .unwrap();
        assert_eq!(outcomes.len(), 3);
        assert_eq!(ep.database().row_count("team").unwrap(), 3);
    }

    #[test]
    fn atomic_script_rolls_back_earlier_operations() {
        let mut ep = endpoint();
        let before = ep.materialize().unwrap();
        let err = ep
            .execute_script(
                "INSERT DATA { ex:team9 foaf:name \"T9\" . } ;\n\
                 INSERT DATA { ex:author8 ont:team ex:team424242 . }",
                true,
            )
            .unwrap_err();
        assert_eq!(err.operation_index, 1);
        assert_eq!(err.completed.len(), 1);
        assert_eq!(ep.materialize().unwrap(), before);
    }

    #[test]
    fn non_atomic_script_keeps_earlier_operations() {
        let mut ep = endpoint();
        let err = ep
            .execute_script(
                "INSERT DATA { ex:team9 foaf:name \"T9\" . } ;\n\
                 INSERT DATA { ex:author8 ont:team ex:team424242 . }",
                false,
            )
            .unwrap_err();
        assert_eq!(err.operation_index, 1);
        assert_eq!(ep.database().row_count("team").unwrap(), 3);
    }

    #[test]
    fn endpoint_rejects_inconsistent_mapping() {
        let (db, mut mapping) = fixture_db_with_rows();
        mapping.tables[0].table_name = "ghost".into();
        assert!(Endpoint::new(db, mapping).is_err());
    }

    #[test]
    fn materialization_tracks_updates() {
        let mut ep = endpoint();
        let before = ep.materialize().unwrap().len();
        ep.execute_update("INSERT DATA { ex:team9 foaf:name \"T9\" ; ont:teamCode \"T\" . }")
            .unwrap();
        let after = ep.materialize().unwrap().len();
        assert_eq!(after, before + 3); // type + name + code
    }

    #[test]
    fn update_equivalence_with_native_store() {
        // The paper's core semantic claim, end to end: updating through
        // OntoAccess then materializing equals materializing then
        // updating a native triple store.
        // Note: creating a row *entails* its rdf:type triple in the
        // relational view, so exact commutation requires the request to
        // assert the type explicitly (the conceptual gap of §3).
        let mut ep = endpoint();
        let mut native = ep.materialize().unwrap();
        let updates = [
            "INSERT DATA { ex:team9 a foaf:Group ; foaf:name \"T9\" . }",
            "INSERT DATA { ex:author8 a foaf:Person ; foaf:family_name \"Gall\" ; ont:team ex:team9 . }",
            "DELETE DATA { ex:author6 foaf:title \"Mr\" . }",
            "MODIFY DELETE { ?x foaf:mbox ?m . } \
             INSERT { ?x foaf:mbox <mailto:new@uzh.ch> . } \
             WHERE { ?x foaf:family_name \"Hert\" ; foaf:mbox ?m . }",
        ];
        for update in updates {
            ep.execute_update(update).unwrap();
            let op = sparql::parse_update_with_prefixes(update, ep.prefixes().clone()).unwrap();
            sparql::apply(&mut native, &op).unwrap();
            assert_eq!(
                ep.materialize().unwrap(),
                native,
                "divergence after: {update}"
            );
        }
        let _ = foaf::name();
    }
}

#[cfg(test)]
mod check_constraint_tests {
    use super::*;
    use r3m::ConstraintInfo;
    use rel::{Column, Schema, SqlType, Table};

    // A schema with a CHECK on publication.year, plus a mapping that
    // records it — exercising the §8 "assertions" extension end to end.
    fn endpoint_with_check() -> Endpoint {
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("publication")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("title", SqlType::Varchar).not_null())
                    .column(Column::new("year", SqlType::Integer))
                    .primary_key(&["id"])
                    .check("year_range", "year >= 1900 AND year <= 2100")
                    .build(),
            )
            .unwrap();
        let mut mapping = crate::usecase::mapping();
        mapping.tables.retain(|t| t.table_name == "publication");
        mapping.link_tables.clear();
        let publication = &mut mapping.tables[0];
        publication
            .attributes
            .retain(|a| ["id", "title", "year"].contains(&a.attribute_name.as_str()));
        publication
            .attributes
            .iter_mut()
            .find(|a| a.attribute_name == "year")
            .unwrap()
            .constraints = vec![ConstraintInfo::Check {
            name: "year_range".into(),
            predicate: "year >= 1900 AND year <= 2100".into(),
        }];
        // year is nullable in this cut-down schema.
        Endpoint::new(rel::Database::new(schema).unwrap(), mapping).unwrap()
    }

    #[test]
    fn check_violation_is_rejected_with_feedback() {
        let mut ep = endpoint_with_check();
        ep.execute_update("INSERT DATA { ex:pub1 dc:title \"ok\" ; ont:pubYear \"2009\" . }")
            .unwrap();
        let (feedback, result) = ep.execute_update_with_feedback(
            "INSERT DATA { ex:pub2 dc:title \"bad\" ; ont:pubYear \"1492\" . }",
        );
        let err = result.unwrap_err();
        assert!(matches!(
            err,
            OntoError::Database(rel::RelError::CheckViolation { ref name, .. })
                if name == "year_range"
        ));
        assert!(feedback.to_turtle().contains("DatabaseError"));
        // Atomicity: the violating row is absent.
        assert_eq!(ep.database().row_count("publication").unwrap(), 1);
    }

    #[test]
    fn check_violation_on_update_path() {
        let mut ep = endpoint_with_check();
        ep.execute_update("INSERT DATA { ex:pub1 dc:title \"ok\" ; ont:pubYear \"2000\" . }")
            .unwrap();
        let err = ep
            .execute_update(
                "MODIFY DELETE { ex:pub1 ont:pubYear ?y . } \
                 INSERT { ex:pub1 ont:pubYear \"9999\" . } \
                 WHERE { ex:pub1 ont:pubYear ?y . }",
            )
            .unwrap_err();
        assert!(matches!(
            err,
            OntoError::Database(rel::RelError::CheckViolation { .. })
        ));
    }
}

#[cfg(test)]
mod describe_tests {
    use super::*;
    use crate::testutil::fixture_db_with_rows;
    use rdf::namespace::{dc, foaf, rdf_type};
    use rdf::Term;

    fn endpoint() -> Endpoint {
        let (db, mapping) = fixture_db_with_rows();
        Endpoint::new(db, mapping).unwrap()
    }

    #[test]
    fn describe_author_includes_attributes_and_links() {
        let ep = endpoint();
        let uri = rdf::Iri::parse("http://example.org/db/author6").unwrap();
        let g = ep.describe(&uri).unwrap();
        let author6 = Term::Iri(uri);
        assert_eq!(
            g.object(&author6, &rdf_type()),
            Some(Term::Iri(foaf::Person()))
        );
        assert_eq!(
            g.object(&author6, &foaf::family_name()),
            Some(Term::plain("Hert"))
        );
        // Link triple with author6 in object position.
        assert!(g.contains(&rdf::Triple::new(
            Term::iri("http://example.org/db/pub1"),
            dc::creator(),
            author6,
        )));
        // But not the whole database.
        assert!(g
            .triples_for_subject(&Term::iri("http://example.org/db/team4"))
            .is_empty());
    }

    #[test]
    fn describe_publication_includes_creator_links_as_subject() {
        let ep = endpoint();
        let uri = rdf::Iri::parse("http://example.org/db/pub1").unwrap();
        let g = ep.describe(&uri).unwrap();
        assert!(g.contains(&rdf::Triple::new(
            Term::Iri(uri),
            dc::creator(),
            Term::iri("http://example.org/db/author6"),
        )));
    }

    #[test]
    fn describe_absent_row_is_empty() {
        let ep = endpoint();
        let uri = rdf::Iri::parse("http://example.org/db/author999").unwrap();
        assert!(ep.describe(&uri).unwrap().is_empty());
    }

    #[test]
    fn describe_unmapped_uri_is_error() {
        let ep = endpoint();
        let uri = rdf::Iri::parse("http://example.org/db/wizard1").unwrap();
        assert!(matches!(
            ep.describe(&uri),
            Err(OntoError::UnknownSubject { .. })
        ));
    }
}
