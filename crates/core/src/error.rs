//! The mediator's error type.
//!
//! Every rejection reason is a distinct, data-carrying variant because
//! the paper's feedback protocol (§3, §8) promises "semantically rich
//! feedback": the cause of a rejection and directions for improvement,
//! in a machine-readable format. [`crate::feedback`] turns these
//! variants into RDF documents.

use rdf::{Iri, Term};
use std::fmt;

/// Convenience result alias.
pub type OntoResult<T> = Result<T, OntoError>;

/// Everything the mediator can reject or fail on.
#[derive(Debug, Clone, PartialEq)]
pub enum OntoError {
    /// The SPARQL/Update or SPARQL text did not parse.
    Parse {
        /// Parser message with position.
        message: String,
    },
    /// A subject URI matches no TableMap URI pattern (Algorithm 1,
    /// step 2 failure).
    UnknownSubject {
        /// The unidentifiable subject.
        subject: Term,
    },
    /// Blank node subjects cannot be mapped to rows (no primary key can
    /// be derived).
    BlankNodeSubject {
        /// The blank node label.
        label: String,
    },
    /// A property is not mapped for the subject's table (and is no link
    /// table property either).
    UnknownProperty {
        /// The unmapped property.
        property: Iri,
        /// Table identified for the subject.
        table: String,
    },
    /// An `rdf:type` triple names a class that differs from the class
    /// the subject's table maps to.
    ClassMismatch {
        /// Table identified for the subject.
        table: String,
        /// Class the table maps to.
        expected: Iri,
        /// Class in the request.
        found: Term,
    },
    /// A literal/IRI object cannot be stored in the mapped attribute
    /// (type error, or literal where an instance IRI is required and
    /// vice versa).
    ValueIncompatible {
        /// Target table.
        table: String,
        /// Target attribute.
        attribute: String,
        /// Offending object term.
        value: Term,
        /// Why it does not fit.
        reason: String,
    },
    /// An object-property object does not identify a row of the
    /// referenced table.
    DanglingObject {
        /// Referencing table.
        table: String,
        /// Referencing attribute.
        attribute: String,
        /// Expected referenced table.
        expected_table: String,
        /// The object term.
        object: Term,
    },
    /// INSERT DATA for a new entity lacks a property whose attribute is
    /// NOT NULL without default (§5: "a triple must be present containing
    /// a property for every corresponding database attribute that has a
    /// NotNull constraint but no Default value").
    MissingRequiredProperty {
        /// Target table.
        table: String,
        /// The NOT NULL attribute.
        attribute: String,
        /// The property that must be supplied, if the attribute is
        /// mapped to one.
        property: Option<Iri>,
    },
    /// INSERT DATA supplies a second, different value for an attribute
    /// that is already set — a tuple holds one value per attribute, so
    /// the triple-level insert has no relational counterpart.
    AttributeAlreadySet {
        /// Target table.
        table: String,
        /// The attribute.
        attribute: String,
        /// Value currently stored (rendered).
        existing: String,
        /// Value in the request.
        requested: Term,
    },
    /// DELETE DATA names a triple that is not present in the (virtual)
    /// RDF view of the database.
    TripleNotPresent {
        /// Target table.
        table: String,
        /// Explanation (attribute and value comparison).
        detail: String,
    },
    /// DELETE DATA would set a NOT NULL attribute to NULL without
    /// removing the whole row.
    NotNullDelete {
        /// Target table.
        table: String,
        /// The protected attribute.
        attribute: String,
    },
    /// DELETE DATA removes the `rdf:type` triple while keeping other
    /// data — entities cannot lose their class membership in the
    /// relational model without being deleted.
    CannotRemoveType {
        /// Target table.
        table: String,
    },
    /// The SPARQL fragment is outside what the translation supports
    /// (e.g. a predicate variable over unmapped space).
    Unsupported {
        /// Explanation.
        message: String,
    },
    /// A WHERE-clause subject variable cannot be resolved to exactly one
    /// table.
    AmbiguousPattern {
        /// The variable.
        variable: String,
        /// Candidate tables (empty = none).
        candidates: Vec<String>,
    },
    /// The database engine rejected a translated statement (constraint
    /// violation the early check could not see, e.g. concurrent state).
    Database(rel::RelError),
    /// The durability layer failed to persist a commit (WAL append or
    /// fsync error, poisoned log). The transaction was rolled back (or,
    /// for a post-commit fsync failure, its durability cannot be
    /// acknowledged); the request itself is fine and may be retried
    /// once the storage fault is resolved.
    Storage {
        /// What the durability layer reported.
        message: String,
    },
    /// This mediator is a read replica: it applies the leader's WAL and
    /// accepts no local writes (the one-durable-writer topology). The
    /// request itself may be valid — resend it to the leader.
    ReadOnlyReplica {
        /// Address of the leader that accepts writes.
        leader: String,
    },
}

impl fmt::Display for OntoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OntoError::Parse { message } => write!(f, "parse error: {message}"),
            OntoError::UnknownSubject { subject } => write!(
                f,
                "subject {subject} matches no URI pattern of the mapping"
            ),
            OntoError::BlankNodeSubject { label } => write!(
                f,
                "blank node subject _:{label} cannot be mapped to a database row"
            ),
            OntoError::UnknownProperty { property, table } => write!(
                f,
                "property {property} is not mapped for table {table:?}"
            ),
            OntoError::ClassMismatch {
                table,
                expected,
                found,
            } => write!(
                f,
                "rdf:type {found} conflicts with table {table:?} (maps to {expected})"
            ),
            OntoError::ValueIncompatible {
                table,
                attribute,
                value,
                reason,
            } => write!(
                f,
                "value {value} does not fit {table}.{attribute}: {reason}"
            ),
            OntoError::DanglingObject {
                table,
                attribute,
                expected_table,
                object,
            } => write!(
                f,
                "object {object} of {table}.{attribute} does not identify a row of {expected_table:?}"
            ),
            OntoError::MissingRequiredProperty {
                table,
                attribute,
                property,
            } => match property {
                Some(p) => write!(
                    f,
                    "insert into {table:?} lacks required property {p} ({table}.{attribute} is NOT NULL without default)"
                ),
                None => write!(
                    f,
                    "insert into {table:?} lacks a value for {table}.{attribute} (NOT NULL without default, not derivable from the subject URI)"
                ),
            },
            OntoError::AttributeAlreadySet {
                table,
                attribute,
                existing,
                requested,
            } => write!(
                f,
                "{table}.{attribute} already holds {existing}; inserting {requested} would need a multi-valued attribute"
            ),
            OntoError::TripleNotPresent { table, detail } => {
                write!(f, "triple not present in table {table:?}: {detail}")
            }
            OntoError::NotNullDelete { table, attribute } => write!(
                f,
                "cannot delete value of {table}.{attribute}: attribute is NOT NULL (delete the whole entity instead)"
            ),
            OntoError::CannotRemoveType { table } => write!(
                f,
                "cannot remove the rdf:type triple of a {table:?} row while keeping its data"
            ),
            OntoError::Unsupported { message } => write!(f, "unsupported request: {message}"),
            OntoError::AmbiguousPattern {
                variable,
                candidates,
            } => {
                if candidates.is_empty() {
                    write!(
                        f,
                        "variable ?{variable} cannot be resolved to any mapped table"
                    )
                } else {
                    write!(
                        f,
                        "variable ?{variable} is ambiguous over tables {candidates:?}; add an rdf:type pattern"
                    )
                }
            }
            OntoError::Database(e) => write!(f, "database error: {e}"),
            OntoError::Storage { message } => write!(f, "durable storage error: {message}"),
            OntoError::ReadOnlyReplica { leader } => write!(
                f,
                "this endpoint is a read replica of {leader}; it accepts no writes"
            ),
        }
    }
}

impl std::error::Error for OntoError {}

impl From<rel::RelError> for OntoError {
    fn from(e: rel::RelError) -> Self {
        OntoError::Database(e)
    }
}

impl From<sparql::ParseError> for OntoError {
    fn from(e: sparql::ParseError) -> Self {
        OntoError::Parse {
            message: e.to_string(),
        }
    }
}

impl From<dur::DurError> for OntoError {
    fn from(e: dur::DurError) -> Self {
        OntoError::Storage {
            message: e.to_string(),
        }
    }
}

impl OntoError {
    /// Stable machine-readable code for the feedback protocol.
    pub fn code(&self) -> &'static str {
        match self {
            OntoError::Parse { .. } => "ParseError",
            OntoError::UnknownSubject { .. } => "UnknownSubject",
            OntoError::BlankNodeSubject { .. } => "BlankNodeSubject",
            OntoError::UnknownProperty { .. } => "UnknownProperty",
            OntoError::ClassMismatch { .. } => "ClassMismatch",
            OntoError::ValueIncompatible { .. } => "ValueIncompatible",
            OntoError::DanglingObject { .. } => "DanglingObject",
            OntoError::MissingRequiredProperty { .. } => "MissingRequiredProperty",
            OntoError::AttributeAlreadySet { .. } => "AttributeAlreadySet",
            OntoError::TripleNotPresent { .. } => "TripleNotPresent",
            OntoError::NotNullDelete { .. } => "NotNullDelete",
            OntoError::CannotRemoveType { .. } => "CannotRemoveType",
            OntoError::Unsupported { .. } => "Unsupported",
            OntoError::AmbiguousPattern { .. } => "AmbiguousPattern",
            OntoError::Database(_) => "DatabaseError",
            OntoError::Storage { .. } => "StorageError",
            OntoError::ReadOnlyReplica { .. } => "ReadOnlyReplica",
        }
    }

    /// A human-readable hint on how to fix the request (the "directions
    /// for improvement" the paper's feedback protocol promises).
    pub fn hint(&self) -> Option<String> {
        match self {
            OntoError::UnknownSubject { .. } => {
                Some("use an instance URI built from a TableMap uriPattern of this mapping".into())
            }
            OntoError::MissingRequiredProperty { property, .. } => property
                .as_ref()
                .map(|p| format!("add a triple with property {p} to the request")),
            OntoError::NotNullDelete { .. } => {
                Some("delete every remaining triple of the entity to remove the whole row".into())
            }
            OntoError::AmbiguousPattern { .. } => {
                Some("add an rdf:type triple pattern for the variable".into())
            }
            OntoError::AttributeAlreadySet { .. } => {
                Some("use MODIFY (DELETE/INSERT) to replace the existing value".into())
            }
            OntoError::ReadOnlyReplica { leader } => {
                Some(format!("send the update to the leader at {leader}"))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct_for_distinct_variants() {
        let a = OntoError::Unsupported {
            message: "x".into(),
        };
        let b = OntoError::Parse {
            message: "x".into(),
        };
        assert_ne!(a.code(), b.code());
    }

    #[test]
    fn display_mentions_payload() {
        let e = OntoError::UnknownProperty {
            property: rdf::namespace::foaf::mbox(),
            table: "author".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("mbox"));
        assert!(msg.contains("author"));
    }

    #[test]
    fn hints_exist_for_actionable_errors() {
        let e = OntoError::MissingRequiredProperty {
            table: "author".into(),
            attribute: "lastname".into(),
            property: Some(rdf::namespace::foaf::family_name()),
        };
        assert!(e.hint().unwrap().contains("family_name"));
    }
}
