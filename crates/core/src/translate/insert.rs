//! `INSERT DATA` → SQL (paper §5.1).
//!
//! Per subject group the translation produces either an insert row plan
//! (entity not yet in the database) or an update plan filling NULL
//! attributes (entity exists — the paper's "second INSERT DATA with the
//! additional data" case). Link-table triples (`dc:creator`) become
//! separate insert plans for the link table. The default emission folds
//! plans of one (table, column-shape) into one set-based statement
//! ([`crate::translate::emit_grouped`]); the per-row reference emission
//! reproduces the seed's one-statement-per-row stream.

use crate::convert::{object_literal_to_value, pattern_value};
use crate::error::{OntoError, OntoResult};
use crate::translate::{
    emit_grouped, emit_per_row, group_by_subject, identify, IdentifiedSubject, RowOp,
    TranslateOptions,
};
use r3m::{Mapping, PropertyMapping};
use rdf::namespace::rdf_type;
use rdf::{Iri, Term, Triple};
use rel::sql::Statement;
use rel::{Database, Value};
use std::collections::BTreeMap;

/// Translate a full `INSERT DATA` operation (all subject groups) into
/// unsorted, grouped SQL statements (one per table and column shape).
pub fn translate_insert_data(
    db: &Database,
    mapping: &Mapping,
    triples: &[Triple],
    options: TranslateOptions,
) -> OntoResult<Vec<Statement>> {
    Ok(emit_grouped(
        db.schema(),
        insert_plans(db, mapping, triples, options)?,
    ))
}

/// Reference translation: the same row plans emitted one statement per
/// row, exactly as the pre-batching pipeline did. Baseline for the
/// batched-vs-per-row differential tests and the `bulk_update` bench.
pub fn translate_insert_data_per_row(
    db: &Database,
    mapping: &Mapping,
    triples: &[Triple],
    options: TranslateOptions,
) -> OntoResult<Vec<Statement>> {
    Ok(emit_per_row(insert_plans(db, mapping, triples, options)?))
}

// Steps 1-4 of Algorithm 1 for `INSERT DATA`: group, identify, check,
// and plan one row operation per subject (plus link rows).
fn insert_plans(
    db: &Database,
    mapping: &Mapping,
    triples: &[Triple],
    options: TranslateOptions,
) -> OntoResult<Vec<RowOp>> {
    let groups = group_by_subject(triples);
    // Entities this operation creates or touches: FK targets may be
    // satisfied by rows that a sibling group inserts (Listing 15 inserts
    // author6 and team5 together; the FK check must accept team5).
    let mut touched: BTreeMap<Iri, String> = BTreeMap::new();
    for (subject, _) in &groups {
        if let Ok(identified) = identify(db, mapping, subject) {
            touched.insert(
                identified.uri.clone(),
                identified.table_map.table_name.clone(),
            );
        }
    }
    let mut plans = Vec::new();
    for (subject, group) in &groups {
        plans.extend(translate_group(
            db, mapping, subject, group, &touched, options,
        )?);
    }
    Ok(plans)
}

fn translate_group(
    db: &Database,
    mapping: &Mapping,
    subject: &Term,
    triples: &[Triple],
    touched: &BTreeMap<Iri, String>,
    options: TranslateOptions,
) -> OntoResult<Vec<RowOp>> {
    let identified = identify(db, mapping, subject)?;
    let table = db.schema().table(&identified.table_map.table_name)?.clone();
    let table_name = table.name.clone();

    let mut assignments: Vec<(String, Value)> = Vec::new();
    let mut link_plans: Vec<RowOp> = Vec::new();

    for triple in triples {
        if triple.predicate == rdf_type() {
            check_type_triple(&identified, &table_name, &triple.object)?;
            continue;
        }
        if let Some(attr) = identified
            .table_map
            .attribute_for_property(&triple.predicate)
        {
            let column = table
                .column(&attr.attribute_name)
                .expect("validated mapping: attribute exists");
            let value = object_value(
                db,
                mapping,
                &table_name,
                attr,
                column.ty,
                &triple.object,
                touched,
            )?;
            match assignments
                .iter()
                .find(|(name, _)| name == &attr.attribute_name)
            {
                Some((_, existing)) if existing == &value => {} // duplicate triple
                Some((_, existing)) => {
                    return Err(OntoError::AttributeAlreadySet {
                        table: table_name.clone(),
                        attribute: attr.attribute_name.clone(),
                        existing: format!("{existing} (earlier in this request)"),
                        requested: triple.object.clone(),
                    })
                }
                None => assignments.push((attr.attribute_name.clone(), value)),
            }
            continue;
        }
        if let Some(link) = mapping.link_table_by_property(&triple.predicate) {
            link_plans.push(translate_link_insert(
                db,
                mapping,
                &identified,
                link,
                triple,
                touched,
            )?);
            continue;
        }
        return Err(OntoError::UnknownProperty {
            property: triple.predicate.clone(),
            table: table_name.clone(),
        });
    }

    // Key attributes extracted from the URI may not be contradicted by a
    // mapped property (rare but possible when a key attribute also maps
    // to a property).
    for (attr, key_value) in &identified.key {
        if let Some((_, assigned)) = assignments.iter().find(|(name, _)| name == attr) {
            if assigned != key_value {
                return Err(OntoError::ValueIncompatible {
                    table: table_name.clone(),
                    attribute: attr.clone(),
                    value: subject.clone(),
                    reason: format!(
                        "subject URI encodes {key_value} but the request supplies {assigned}"
                    ),
                });
            }
        }
    }
    let assignments: Vec<(String, Value)> = assignments
        .into_iter()
        .filter(|(name, _)| !identified.key.iter().any(|(k, _)| k == name))
        .collect();

    let existing_row = crate::translate::find_row(db, &identified)?;
    let mut plans = Vec::new();
    match existing_row {
        None => {
            // New entity: NOT NULL attributes without default must be
            // covered (step 3's completeness check).
            for column in &table.columns {
                let supplied = assignments.iter().any(|(n, _)| n == &column.name)
                    || identified.key.iter().any(|(n, _)| n == &column.name);
                let required = column.not_null || table.is_primary_key(&column.name);
                if required && !supplied && column.default.is_none() && !column.auto_increment {
                    let property = identified
                        .table_map
                        .attribute(&column.name)
                        .and_then(|a| a.property.as_ref())
                        .map(|p| p.property().clone());
                    return Err(OntoError::MissingRequiredProperty {
                        table: table_name.clone(),
                        attribute: column.name.clone(),
                        property,
                    });
                }
            }
            // Columns in schema order: key attributes first as they
            // appear, then the mapped assignments (Listing 10 layout).
            let mut columns = Vec::new();
            let mut values = Vec::new();
            for column in &table.columns {
                let from_key = identified.key.iter().find(|(n, _)| n == &column.name);
                let from_assign = assignments.iter().find(|(n, _)| n == &column.name);
                if let Some((name, value)) = from_key.or(from_assign) {
                    columns.push(name.clone());
                    values.push(*value);
                }
            }
            plans.push(RowOp::Insert {
                table: table_name.clone(),
                columns,
                values,
            });
        }
        Some(row_id) => {
            // Existing entity: only fill attributes; a differing
            // non-NULL current value is a conflict unless Algorithm 2
            // explicitly allows overwriting (§5.2 optimization).
            let current = db
                .row(&table_name, row_id)?
                .expect("row id from index")
                .clone();
            let mut updates = Vec::new();
            for (name, value) in assignments {
                let idx = table.column_index(&name).expect("validated");
                let stored = &current[idx];
                if stored.is_null() {
                    updates.push((name, value));
                } else if stored.sql_eq(&value) == Some(true) {
                    // Triple already present in the RDF view — no-op.
                } else if options.allow_overwrite {
                    updates.push((name, value));
                } else {
                    return Err(OntoError::AttributeAlreadySet {
                        table: table_name.clone(),
                        attribute: name,
                        existing: stored.to_string(),
                        requested: subject.clone(),
                    });
                }
            }
            if !updates.is_empty() {
                plans.push(RowOp::Update {
                    table: table_name.clone(),
                    key: pk_key_pairs(&table, &identified)?,
                    sets: updates,
                });
            }
        }
    }
    plans.extend(link_plans);
    Ok(plans)
}

/// The `(pk column, value)` pairs identifying a subject's row — the
/// plan key behind the paper's `WHERE pk1 = v1 AND pk2 = v2 …`.
pub fn pk_key_pairs(
    table: &rel::Table,
    identified: &IdentifiedSubject<'_>,
) -> OntoResult<Vec<(String, Value)>> {
    let pk_values = identified.pk_values(table)?;
    if table.primary_key.is_empty() {
        return Err(OntoError::Unsupported {
            message: format!("table {:?} has no primary key", table.name),
        });
    }
    Ok(table.primary_key.iter().cloned().zip(pk_values).collect())
}

fn check_type_triple(
    identified: &IdentifiedSubject<'_>,
    table_name: &str,
    object: &Term,
) -> OntoResult<()> {
    if object.as_iri() == Some(&identified.table_map.class) {
        Ok(())
    } else {
        Err(OntoError::ClassMismatch {
            table: table_name.to_owned(),
            expected: identified.table_map.class.clone(),
            found: object.clone(),
        })
    }
}

// Resolve the object term of a mapped attribute to a column value.
fn object_value(
    db: &Database,
    mapping: &Mapping,
    table_name: &str,
    attr: &r3m::AttributeMap,
    ty: rel::SqlType,
    object: &Term,
    touched: &BTreeMap<Iri, String>,
) -> OntoResult<Value> {
    match attr
        .property
        .as_ref()
        .expect("mapped attribute has property")
    {
        PropertyMapping::Data(_) => {
            object_literal_to_value(object, table_name, &attr.attribute_name, ty)
        }
        PropertyMapping::Object(_) => {
            let object_iri = object
                .as_iri()
                .ok_or_else(|| OntoError::ValueIncompatible {
                    table: table_name.to_owned(),
                    attribute: attr.attribute_name.clone(),
                    value: object.clone(),
                    reason: "an object property requires an IRI object".into(),
                })?;
            // Derived-IRI attribute (foaf:mbox style): extract the value
            // from the value pattern.
            if let Some(pattern) = &attr.value_pattern {
                let values = pattern
                    .match_uri(None, object_iri.as_str())
                    .ok_or_else(|| OntoError::ValueIncompatible {
                        table: table_name.to_owned(),
                        attribute: attr.attribute_name.clone(),
                        value: object.clone(),
                        reason: format!("object does not match value pattern {pattern}"),
                    })?;
                let raw = values
                    .into_iter()
                    .find(|(name, _)| name == &attr.attribute_name)
                    .map(|(_, v)| v)
                    .ok_or_else(|| OntoError::Unsupported {
                        message: format!(
                            "value pattern of {table_name}.{} does not bind the attribute",
                            attr.attribute_name
                        ),
                    })?;
                return pattern_value(&raw, ty).map_err(|reason| OntoError::ValueIncompatible {
                    table: table_name.to_owned(),
                    attribute: attr.attribute_name.clone(),
                    value: object.clone(),
                    reason,
                });
            }
            // Foreign key: object must be an instance of the referenced
            // table; its key value is stored.
            let target_map_id =
                attr.foreign_key_target()
                    .ok_or_else(|| OntoError::Unsupported {
                        message: format!(
                            "object property on {table_name}.{} has neither a ForeignKey \
                             constraint nor a value pattern",
                            attr.attribute_name
                        ),
                    })?;
            let expected_table =
                mapping
                    .table_by_id(target_map_id)
                    .ok_or_else(|| OntoError::Unsupported {
                        message: format!("foreign key references unknown map node {target_map_id}"),
                    })?;
            resolve_instance_ref(
                db,
                mapping,
                table_name,
                &attr.attribute_name,
                &expected_table.table_name,
                object,
                touched,
            )
        }
    }
}

/// Resolve an instance IRI used as an FK/link endpoint: identify it,
/// verify it denotes the expected table, verify the row exists (in the
/// database or among the entities this operation creates), and return
/// its key value.
pub fn resolve_instance_ref(
    db: &Database,
    mapping: &Mapping,
    table_name: &str,
    attribute: &str,
    expected_table: &str,
    object: &Term,
    touched: &BTreeMap<Iri, String>,
) -> OntoResult<Value> {
    let dangling = || OntoError::DanglingObject {
        table: table_name.to_owned(),
        attribute: attribute.to_owned(),
        expected_table: expected_table.to_owned(),
        object: object.clone(),
    };
    let identified = identify(db, mapping, object).map_err(|_| dangling())?;
    if identified.table_map.table_name != expected_table {
        return Err(dangling());
    }
    let target_table = db.schema().table(expected_table)?;
    let pk_values = identified.pk_values(target_table)?;
    let exists_in_db = db.find_by_pk(expected_table, &pk_values)?.is_some();
    let created_here = touched
        .get(&identified.uri)
        .is_some_and(|t| t == expected_table);
    if !exists_in_db && !created_here {
        return Err(dangling());
    }
    if pk_values.len() != 1 {
        return Err(OntoError::Unsupported {
            message: format!(
                "foreign key to composite-key table {expected_table:?} is not supported"
            ),
        });
    }
    Ok(pk_values.into_iter().next().expect("len checked"))
}

// A link triple inside a subject group: subject is this group's entity,
// the object an instance of the table the link's object attribute
// references.
fn translate_link_insert(
    db: &Database,
    mapping: &Mapping,
    identified: &IdentifiedSubject<'_>,
    link: &r3m::LinkTableMap,
    triple: &Triple,
    touched: &BTreeMap<Iri, String>,
) -> OntoResult<RowOp> {
    let subject_target = link
        .subject_attribute
        .foreign_key_target()
        .and_then(|id| mapping.table_by_id(id))
        .ok_or_else(|| OntoError::Unsupported {
            message: format!(
                "link table {:?}: unresolved subject attribute target",
                link.table_name
            ),
        })?;
    let object_target = link
        .object_attribute
        .foreign_key_target()
        .and_then(|id| mapping.table_by_id(id))
        .ok_or_else(|| OntoError::Unsupported {
            message: format!(
                "link table {:?}: unresolved object attribute target",
                link.table_name
            ),
        })?;
    // The group's entity must be on the subject side of this property.
    if identified.table_map.table_name != subject_target.table_name {
        return Err(OntoError::UnknownProperty {
            property: triple.predicate.clone(),
            table: identified.table_map.table_name.clone(),
        });
    }
    let table = db.schema().table(&identified.table_map.table_name)?;
    let subject_pk = identified.pk_values(table)?;
    if subject_pk.len() != 1 {
        return Err(OntoError::Unsupported {
            message: "link tables over composite keys are not supported".into(),
        });
    }
    let object_value = resolve_instance_ref(
        db,
        mapping,
        &link.table_name,
        &link.object_attribute.attribute_name,
        &object_target.table_name,
        &triple.object,
        touched,
    )?;
    Ok(RowOp::Insert {
        table: link.table_name.clone(),
        columns: vec![
            link.subject_attribute.attribute_name.clone(),
            link.object_attribute.attribute_name.clone(),
        ],
        values: vec![
            subject_pk.into_iter().next().expect("len checked"),
            object_value,
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{
        fixture_db_teams_only, fixture_db_with_rows, insert_data, parse_update, render,
    };

    #[test]
    fn listing_9_translates_to_listing_10() {
        // team5 must exist for the FK (the paper's running example
        // assumes it); author6 must not exist yet.
        let (db, mapping) = fixture_db_teams_only();
        let op = parse_update(
            "INSERT DATA {
               ex:author6 foaf:title \"Mr\" ;
                 foaf:firstName \"Matthias\" ;
                 foaf:family_name \"Hert\" ;
                 foaf:mbox <mailto:hert@ifi.uzh.ch> ;
                 ont:team ex:team5 .
             }",
        );
        let stmts = translate_insert_data(
            &db,
            &mapping,
            &insert_data(&op),
            TranslateOptions::default(),
        )
        .unwrap();
        assert_eq!(
            render(&stmts),
            vec![
                "INSERT INTO author (id, title, firstname, lastname, email, team) \
             VALUES (6, 'Mr', 'Matthias', 'Hert', 'hert@ifi.uzh.ch', 5);"
            ]
        );
    }

    #[test]
    fn listing_13_translates_to_listing_14() {
        let (db, mapping) = fixture_db_teams_only();
        let op = parse_update(
            "INSERT DATA {
               ex:team4 foaf:name \"Database Technology\" ;
                 ont:teamCode \"DBTG\" .
             }",
        );
        let stmts = translate_insert_data(
            &db,
            &mapping,
            &insert_data(&op),
            TranslateOptions::default(),
        )
        .unwrap();
        assert_eq!(
            render(&stmts),
            vec!["INSERT INTO team (id, name, code) VALUES (4, 'Database Technology', 'DBTG');"]
        );
    }

    #[test]
    fn second_insert_becomes_update_filling_nulls() {
        // §5.1: "The second INSERT DATA operation (with the additional
        // data) translates to an SQL UPDATE statement that replaces the
        // NULLs with actual values."
        let (mut db, mapping) = fixture_db_with_rows();
        let first = parse_update("INSERT DATA { ex:author9 foaf:family_name \"Gall\" . }");
        let stmts = translate_insert_data(
            &db,
            &mapping,
            &insert_data(&first),
            TranslateOptions::default(),
        )
        .unwrap();
        assert_eq!(
            render(&stmts),
            vec!["INSERT INTO author (id, lastname) VALUES (9, 'Gall');"]
        );
        crate::translate::execute_sorted(&mut db, stmts).unwrap();

        let second = parse_update(
            "INSERT DATA { ex:author9 foaf:firstName \"Harald\" ; \
             foaf:mbox <mailto:gall@ifi.uzh.ch> . }",
        );
        let stmts = translate_insert_data(
            &db,
            &mapping,
            &insert_data(&second),
            TranslateOptions::default(),
        )
        .unwrap();
        assert_eq!(
            render(&stmts),
            vec!["UPDATE author SET firstname = 'Harald', email = 'gall@ifi.uzh.ch' WHERE id = 9;"]
        );
    }

    #[test]
    fn missing_not_null_property_rejected() {
        let (db, mapping) = fixture_db_with_rows();
        // A new author without foaf:family_name (lastname NOT NULL).
        let op = parse_update("INSERT DATA { ex:author9 foaf:firstName \"X\" . }");
        let err = translate_insert_data(
            &db,
            &mapping,
            &insert_data(&op),
            TranslateOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            OntoError::MissingRequiredProperty { ref attribute, .. } if attribute == "lastname"
        ));
    }

    #[test]
    fn dangling_fk_object_rejected() {
        let (db, mapping) = fixture_db_with_rows();
        let op = parse_update(
            "INSERT DATA { ex:author9 foaf:family_name \"X\" ; ont:team ex:team99 . }",
        );
        let err = translate_insert_data(
            &db,
            &mapping,
            &insert_data(&op),
            TranslateOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, OntoError::DanglingObject { .. }));
    }

    #[test]
    fn same_shape_subjects_fold_into_one_multi_row_insert() {
        let (db, mapping) = fixture_db_with_rows();
        let op = parse_update(
            "INSERT DATA {
               ex:team7 foaf:name \"T7\" ; ont:teamCode \"C7\" .
               ex:team8 foaf:name \"T8\" ; ont:teamCode \"C8\" .
               ex:team9 foaf:name \"T9\" ; ont:teamCode \"C9\" .
             }",
        );
        let stmts = translate_insert_data(
            &db,
            &mapping,
            &insert_data(&op),
            TranslateOptions::default(),
        )
        .unwrap();
        assert_eq!(
            render(&stmts),
            vec![
                "INSERT INTO team (id, name, code) \
             VALUES (7, 'T7', 'C7'), (8, 'T8', 'C8'), (9, 'T9', 'C9');"
            ]
        );
        // The per-row reference path still emits one statement per row.
        let per_row = translate_insert_data_per_row(
            &db,
            &mapping,
            &insert_data(&op),
            TranslateOptions::default(),
        )
        .unwrap();
        assert_eq!(per_row.len(), 3);
    }

    #[test]
    fn shape_change_breaks_the_insert_run() {
        // A different column shape in the middle closes the table's
        // open group: rows must keep plan order so the physical heap
        // matches the per-row reference emission byte for byte.
        let (db, mapping) = fixture_db_with_rows();
        let op = parse_update(
            "INSERT DATA {
               ex:team7 foaf:name \"T7\" ; ont:teamCode \"C7\" .
               ex:team8 foaf:name \"T8\" .
               ex:team9 foaf:name \"T9\" ; ont:teamCode \"C9\" .
             }",
        );
        let stmts = translate_insert_data(
            &db,
            &mapping,
            &insert_data(&op),
            TranslateOptions::default(),
        )
        .unwrap();
        assert_eq!(
            render(&stmts),
            vec![
                "INSERT INTO team (id, name, code) VALUES (7, 'T7', 'C7');",
                "INSERT INTO team (id, name) VALUES (8, 'T8');",
                "INSERT INTO team (id, name, code) VALUES (9, 'T9', 'C9');",
            ]
        );
    }

    #[test]
    fn existing_subjects_fold_into_one_grouped_update() {
        let (db, mapping) = fixture_db_with_rows();
        // Both authors exist; both get their title filled.
        let op = parse_update(
            "INSERT DATA {
               ex:author6 foaf:mbox <mailto:six@x.ch> .
               ex:author7 foaf:mbox <mailto:seven@x.ch> .
             }",
        );
        let stmts = translate_insert_data(
            &db,
            &mapping,
            &insert_data(&op),
            TranslateOptions {
                allow_overwrite: true,
            },
        )
        .unwrap();
        assert_eq!(
            render(&stmts),
            vec![
                "UPDATE author BY (id) SET (email) \
             VALUES (6, 'six@x.ch'), (7, 'seven@x.ch');"
            ]
        );
    }

    #[test]
    fn link_inserts_fold_into_one_multi_row_insert() {
        let (db, mapping) = fixture_db_with_rows();
        let op = parse_update(
            "INSERT DATA { ex:pub1 dc:creator ex:author7 . \
             ex:author7 foaf:mbox <mailto:seven@x.ch> . }",
        );
        let stmts = translate_insert_data(
            &db,
            &mapping,
            &insert_data(&op),
            TranslateOptions::default(),
        )
        .unwrap();
        assert_eq!(
            render(&stmts),
            vec![
                "UPDATE author SET email = 'seven@x.ch' WHERE id = 7;",
                "INSERT INTO publication_author (publication, author) VALUES (1, 7);",
            ]
        );
    }

    #[test]
    fn fk_satisfied_by_sibling_group() {
        // Listing 15's shape: the team is created in the same operation.
        let (db, mapping) = fixture_db_with_rows();
        let op = parse_update(
            "INSERT DATA {
               ex:author9 foaf:family_name \"New\" ; ont:team ex:team7 .
               ex:team7 foaf:name \"Fresh Team\" .
             }",
        );
        let stmts = translate_insert_data(
            &db,
            &mapping,
            &insert_data(&op),
            TranslateOptions::default(),
        )
        .unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn conflicting_value_for_set_attribute_rejected() {
        let (db, mapping) = fixture_db_with_rows();
        // author6 exists with lastname 'Hert'.
        let op = parse_update("INSERT DATA { ex:author6 foaf:family_name \"Other\" . }");
        let err = translate_insert_data(
            &db,
            &mapping,
            &insert_data(&op),
            TranslateOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, OntoError::AttributeAlreadySet { .. }));
        // …but allowed with the MODIFY overwrite option.
        let stmts = translate_insert_data(
            &db,
            &mapping,
            &insert_data(&op),
            TranslateOptions {
                allow_overwrite: true,
            },
        )
        .unwrap();
        assert_eq!(
            render(&stmts),
            vec!["UPDATE author SET lastname = 'Other' WHERE id = 6;"]
        );
    }

    #[test]
    fn reasserting_existing_triple_is_noop() {
        let (db, mapping) = fixture_db_with_rows();
        let op = parse_update("INSERT DATA { ex:author6 foaf:family_name \"Hert\" . }");
        let stmts = translate_insert_data(
            &db,
            &mapping,
            &insert_data(&op),
            TranslateOptions::default(),
        )
        .unwrap();
        assert!(stmts.is_empty());
    }

    #[test]
    fn type_triple_checked_against_class() {
        let (db, mapping) = fixture_db_with_rows();
        let ok = parse_update("INSERT DATA { ex:team7 a foaf:Group ; foaf:name \"T\" . }");
        assert!(translate_insert_data(
            &db,
            &mapping,
            &insert_data(&ok),
            TranslateOptions::default()
        )
        .is_ok());
        let bad = parse_update("INSERT DATA { ex:team7 a foaf:Person ; foaf:name \"T\" . }");
        let err = translate_insert_data(
            &db,
            &mapping,
            &insert_data(&bad),
            TranslateOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, OntoError::ClassMismatch { .. }));
    }

    #[test]
    fn unknown_property_rejected() {
        let (db, mapping) = fixture_db_with_rows();
        let op =
            parse_update("INSERT DATA { ex:team7 foaf:name \"T\" ; foaf:mbox <mailto:t@x.ch> . }");
        // foaf:mbox is an author property, not a team property.
        let err = translate_insert_data(
            &db,
            &mapping,
            &insert_data(&op),
            TranslateOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            OntoError::UnknownProperty { ref table, .. } if table == "team"
        ));
    }

    #[test]
    fn link_triple_translates_to_link_table_insert() {
        let (db, mapping) = fixture_db_with_rows();
        let op = parse_update("INSERT DATA { ex:pub1 dc:creator ex:author6 . }");
        let stmts = translate_insert_data(
            &db,
            &mapping,
            &insert_data(&op),
            TranslateOptions::default(),
        )
        .unwrap();
        assert_eq!(
            render(&stmts),
            vec!["INSERT INTO publication_author (publication, author) VALUES (1, 6);"]
        );
    }

    #[test]
    fn type_mismatch_in_literal_rejected() {
        let (db, mapping) = fixture_db_with_rows();
        let op =
            parse_update("INSERT DATA { ex:pub9 dc:title \"T\" ; ont:pubYear \"not-a-year\" . }");
        let err = translate_insert_data(
            &db,
            &mapping,
            &insert_data(&op),
            TranslateOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, OntoError::ValueIncompatible { .. }));
    }

    #[test]
    fn mbox_value_pattern_extracts_email() {
        let (db, mapping) = fixture_db_with_rows();
        let op = parse_update(
            "INSERT DATA { ex:author9 foaf:family_name \"G\" ; \
             foaf:mbox <mailto:g@ifi.uzh.ch> . }",
        );
        let stmts = translate_insert_data(
            &db,
            &mapping,
            &insert_data(&op),
            TranslateOptions::default(),
        )
        .unwrap();
        assert_eq!(
            render(&stmts),
            vec!["INSERT INTO author (id, lastname, email) VALUES (9, 'G', 'g@ifi.uzh.ch');"]
        );
        // Non-mailto object rejected.
        let bad = parse_update(
            "INSERT DATA { ex:author9 foaf:family_name \"G\" ; \
             foaf:mbox <http://not-a-mailbox.org/> . }",
        );
        assert!(matches!(
            translate_insert_data(
                &db,
                &mapping,
                &insert_data(&bad),
                TranslateOptions::default()
            ),
            Err(OntoError::ValueIncompatible { .. })
        ));
    }
}
