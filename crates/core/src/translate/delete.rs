//! `DELETE DATA` → SQL (paper §5.1).
//!
//! Per subject group: if the request covers *all* remaining (non-NULL)
//! data of the row — including its `rdf:type` triple — the row is
//! removed with `DELETE FROM`; if it covers a proper subset, the
//! mentioned attributes are set to NULL with an `UPDATE` (Listing 17 →
//! Listing 18), rejected early when an attribute is NOT NULL. Link
//! triples delete the corresponding link-table row. The default
//! emission groups row plans per (table, column-shape) — pk deletes
//! fold into `WHERE pk IN (…)`, null-updates into the grouped
//! `UPDATE … BY …` — while the per-row reference emission reproduces
//! the seed's one-statement-per-row stream.

use crate::convert::literal_matches_value;
use crate::error::{OntoError, OntoResult};
use crate::translate::insert::pk_key_pairs;
use crate::translate::{
    emit_grouped, emit_per_row, group_by_subject, identify, IdentifiedSubject, RowOp,
};
use r3m::{Mapping, PropertyMapping};
use rdf::namespace::rdf_type;
use rdf::{Term, Triple};
use rel::sql::Statement;
use rel::{Database, Value};

/// Translate a full `DELETE DATA` operation into unsorted, grouped SQL
/// statements (one per table and column shape).
pub fn translate_delete_data(
    db: &Database,
    mapping: &Mapping,
    triples: &[Triple],
) -> OntoResult<Vec<Statement>> {
    Ok(emit_grouped(
        db.schema(),
        delete_plans(db, mapping, triples)?,
    ))
}

/// Reference translation: the same row plans emitted one statement per
/// row, exactly as the pre-batching pipeline did.
pub fn translate_delete_data_per_row(
    db: &Database,
    mapping: &Mapping,
    triples: &[Triple],
) -> OntoResult<Vec<Statement>> {
    Ok(emit_per_row(delete_plans(db, mapping, triples)?))
}

fn delete_plans(db: &Database, mapping: &Mapping, triples: &[Triple]) -> OntoResult<Vec<RowOp>> {
    let mut plans = Vec::new();
    for (subject, group) in group_by_subject(triples) {
        plans.extend(translate_group(db, mapping, &subject, &group)?);
    }
    Ok(plans)
}

fn translate_group(
    db: &Database,
    mapping: &Mapping,
    subject: &Term,
    triples: &[Triple],
) -> OntoResult<Vec<RowOp>> {
    let identified = identify(db, mapping, subject)?;
    let table = db.schema().table(&identified.table_map.table_name)?.clone();
    let table_name = table.name.clone();

    let row_id = crate::translate::find_row(db, &identified)?.ok_or_else(|| {
        OntoError::TripleNotPresent {
            table: table_name.clone(),
            detail: format!("no row for subject {subject}"),
        }
    })?;
    let row = db.row(&table_name, row_id)?.expect("row id valid").clone();

    let mut has_type = false;
    let mut mentioned: Vec<(String, Value)> = Vec::new();
    let mut link_plans: Vec<RowOp> = Vec::new();

    for triple in triples {
        if triple.predicate == rdf_type() {
            if triple.object.as_iri() != Some(&identified.table_map.class) {
                return Err(OntoError::TripleNotPresent {
                    table: table_name.clone(),
                    detail: format!(
                        "subject is a {} instance, not {}",
                        identified.table_map.class, triple.object
                    ),
                });
            }
            has_type = true;
            continue;
        }
        if let Some(attr) = identified
            .table_map
            .attribute_for_property(&triple.predicate)
        {
            let idx = table
                .column_index(&attr.attribute_name)
                .expect("validated mapping");
            let stored = &row[idx];
            verify_object_matches(
                mapping,
                &identified,
                attr,
                &triple.object,
                stored,
                &table_name,
            )?;
            if table.is_primary_key(&attr.attribute_name) {
                return Err(OntoError::Unsupported {
                    message: format!(
                        "cannot delete the key attribute {}.{} of an existing row",
                        table_name, attr.attribute_name
                    ),
                });
            }
            if !mentioned.iter().any(|(n, _)| n == &attr.attribute_name) {
                mentioned.push((attr.attribute_name.clone(), *stored));
            }
            continue;
        }
        if let Some(link) = mapping.link_table_by_property(&triple.predicate) {
            link_plans.push(translate_link_delete(
                db,
                mapping,
                &identified,
                link,
                triple,
            )?);
            continue;
        }
        return Err(OntoError::UnknownProperty {
            property: triple.predicate.clone(),
            table: table_name.clone(),
        });
    }

    let mut plans = Vec::new();
    if !mentioned.is_empty() || has_type {
        // All non-NULL, non-key mapped attributes of the row.
        let all_set: Vec<String> = identified
            .table_map
            .attributes
            .iter()
            .filter(|a| a.property.is_some())
            .filter(|a| !table.is_primary_key(&a.attribute_name))
            .filter(|a| {
                let idx = table.column_index(&a.attribute_name).expect("validated");
                !row[idx].is_null()
            })
            .map(|a| a.attribute_name.clone())
            .collect();
        let covered_all = all_set
            .iter()
            .all(|name| mentioned.iter().any(|(n, _)| n == name));

        if has_type && covered_all {
            // The request equals all remaining data → remove the row.
            plans.push(RowOp::Delete {
                table: table_name.clone(),
                key: pk_key_pairs(&table, &identified)?,
            });
        } else if has_type {
            return Err(OntoError::CannotRemoveType { table: table_name });
        } else {
            // Subset → UPDATE … SET attr = NULL (Listing 18), guarded by
            // the NOT NULL check of step 3.
            for (name, _) in &mentioned {
                let column = table.column(name).expect("validated");
                if column.not_null {
                    return Err(OntoError::NotNullDelete {
                        table: table_name.clone(),
                        attribute: name.clone(),
                    });
                }
            }
            // Key: pk = … plus attr = current-value … (paper's Listing
            // 18 includes the value equality as a guard).
            let mut key = pk_key_pairs(&table, &identified)?;
            key.extend(mentioned.iter().cloned());
            plans.push(RowOp::Update {
                table: table_name.clone(),
                key,
                sets: mentioned
                    .iter()
                    .map(|(n, _)| (n.clone(), Value::Null))
                    .collect(),
            });
        }
    }
    plans.extend(link_plans);
    Ok(plans)
}

// The triple being deleted must actually exist in the RDF view: the
// stored value must match the object term.
fn verify_object_matches(
    mapping: &Mapping,
    _identified: &IdentifiedSubject<'_>,
    attr: &r3m::AttributeMap,
    object: &Term,
    stored: &Value,
    table_name: &str,
) -> OntoResult<()> {
    let not_present = |detail: String| OntoError::TripleNotPresent {
        table: table_name.to_owned(),
        detail,
    };
    if stored.is_null() {
        return Err(not_present(format!(
            "{}.{} is NULL (no such triple)",
            table_name, attr.attribute_name
        )));
    }
    match attr.property.as_ref().expect("mapped attribute") {
        PropertyMapping::Data(_) => {
            let lit = object.as_literal().ok_or_else(|| {
                not_present(format!(
                    "{}.{} is a data attribute but the object is {object}",
                    table_name, attr.attribute_name
                ))
            })?;
            if !literal_matches_value(lit, stored) {
                return Err(not_present(format!(
                    "{}.{} holds {stored}, not {object}",
                    table_name, attr.attribute_name
                )));
            }
        }
        PropertyMapping::Object(_) => {
            let expected_uri: Option<String> = if let Some(pattern) = &attr.value_pattern {
                crate::convert::value_to_pattern(stored).and_then(|raw| {
                    pattern
                        .generate(None, &|name| {
                            (name == attr.attribute_name).then(|| raw.clone())
                        })
                        .ok()
                })
            } else {
                attr.foreign_key_target()
                    .and_then(|id| mapping.table_by_id(id))
                    .and_then(|target| {
                        mapping
                            .instance_uri(target, &|name| {
                                // Single-column keys only (enforced on
                                // the insert path as well).
                                let _ = name;
                                crate::convert::value_to_pattern(stored)
                            })
                            .ok()
                            .map(|iri| iri.into_string())
                    })
            };
            let object_str = object.as_iri().map(|i| i.as_str().to_owned());
            if expected_uri.is_none() || object_str != expected_uri {
                return Err(not_present(format!(
                    "{}.{} does not link to {object}",
                    table_name, attr.attribute_name
                )));
            }
        }
    }
    Ok(())
}

fn translate_link_delete(
    db: &Database,
    mapping: &Mapping,
    identified: &IdentifiedSubject<'_>,
    link: &r3m::LinkTableMap,
    triple: &Triple,
) -> OntoResult<RowOp> {
    let subject_target = link
        .subject_attribute
        .foreign_key_target()
        .and_then(|id| mapping.table_by_id(id))
        .ok_or_else(|| OntoError::Unsupported {
            message: format!(
                "link table {:?}: unresolved subject target",
                link.table_name
            ),
        })?;
    if identified.table_map.table_name != subject_target.table_name {
        return Err(OntoError::UnknownProperty {
            property: triple.predicate.clone(),
            table: identified.table_map.table_name.clone(),
        });
    }
    let object_target = link
        .object_attribute
        .foreign_key_target()
        .and_then(|id| mapping.table_by_id(id))
        .ok_or_else(|| OntoError::Unsupported {
            message: format!("link table {:?}: unresolved object target", link.table_name),
        })?;
    let object_identified =
        identify(db, mapping, &triple.object).map_err(|_| OntoError::TripleNotPresent {
            table: link.table_name.clone(),
            detail: format!("object {} is not a mapped instance", triple.object),
        })?;
    if object_identified.table_map.table_name != object_target.table_name {
        return Err(OntoError::TripleNotPresent {
            table: link.table_name.clone(),
            detail: format!(
                "object {} is a {} instance, expected {}",
                triple.object, object_identified.table_map.table_name, object_target.table_name
            ),
        });
    }
    let subject_table = db.schema().table(&identified.table_map.table_name)?;
    let object_table = db.schema().table(&object_identified.table_map.table_name)?;
    let s_val = identified.pk_values(subject_table)?;
    let o_val = object_identified.pk_values(object_table)?;
    if s_val.len() != 1 || o_val.len() != 1 {
        return Err(OntoError::Unsupported {
            message: "link tables over composite keys are not supported".into(),
        });
    }
    let (s_val, o_val) = (
        s_val.into_iter().next().unwrap(),
        o_val.into_iter().next().unwrap(),
    );

    // The link row must exist (DELETE DATA removes *known* triples).
    // The subject column is a FK column and therefore hash-indexed:
    // resolve its candidates by index and check the object side only on
    // those, instead of scanning the whole link table per triple.
    let link_table = db.schema().table(&link.table_name)?;
    let s_idx = link_table
        .column_index(&link.subject_attribute.attribute_name)
        .expect("validated mapping");
    let o_idx = link_table
        .column_index(&link.object_attribute.attribute_name)
        .expect("validated mapping");
    let exists = match db.index_probe(
        &link.table_name,
        &link.subject_attribute.attribute_name,
        &s_val,
    )? {
        Some(ids) => {
            let mut found = false;
            for id in ids {
                let row = db.row(&link.table_name, id)?.expect("probe id is live");
                if row[o_idx].sql_eq(&o_val) == Some(true) {
                    found = true;
                    break;
                }
            }
            found
        }
        None => db.scan(&link.table_name)?.any(|(_, row)| {
            row[s_idx].sql_eq(&s_val) == Some(true) && row[o_idx].sql_eq(&o_val) == Some(true)
        }),
    };
    if !exists {
        return Err(OntoError::TripleNotPresent {
            table: link.table_name.clone(),
            detail: format!(
                "no {} row links {} to {}",
                link.table_name, identified.uri, triple.object
            ),
        });
    }
    Ok(RowOp::Delete {
        table: link.table_name.clone(),
        key: vec![
            (link.subject_attribute.attribute_name.clone(), s_val),
            (link.object_attribute.attribute_name.clone(), o_val),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{delete_data, fixture_db_with_rows, parse_update, render};

    #[test]
    fn listing_17_translates_to_listing_18() {
        let (db, mapping) = fixture_db_with_rows();
        let op = parse_update("DELETE DATA { ex:author6 foaf:mbox <mailto:hert@ifi.uzh.ch> . }");
        let stmts = translate_delete_data(&db, &mapping, &delete_data(&op)).unwrap();
        assert_eq!(
            render(&stmts),
            vec!["UPDATE author SET email = NULL WHERE id = 6 AND email = 'hert@ifi.uzh.ch';"]
        );
    }

    #[test]
    fn full_coverage_with_type_becomes_row_delete() {
        let (db, mapping) = fixture_db_with_rows();
        // team4 row: id=4, name='Database Technology', code='DBTG'.
        let op = parse_update(
            "DELETE DATA { ex:team4 a foaf:Group ; \
               foaf:name \"Database Technology\" ; ont:teamCode \"DBTG\" . }",
        );
        let stmts = translate_delete_data(&db, &mapping, &delete_data(&op)).unwrap();
        assert_eq!(render(&stmts), vec!["DELETE FROM team WHERE id = 4;"]);
    }

    #[test]
    fn type_with_partial_coverage_rejected() {
        let (db, mapping) = fixture_db_with_rows();
        let op = parse_update("DELETE DATA { ex:team4 a foaf:Group ; ont:teamCode \"DBTG\" . }");
        let err = translate_delete_data(&db, &mapping, &delete_data(&op)).unwrap_err();
        assert!(matches!(err, OntoError::CannotRemoveType { .. }));
    }

    #[test]
    fn deleting_not_null_attribute_rejected() {
        let (db, mapping) = fixture_db_with_rows();
        let op = parse_update("DELETE DATA { ex:author6 foaf:family_name \"Hert\" . }");
        let err = translate_delete_data(&db, &mapping, &delete_data(&op)).unwrap_err();
        assert!(matches!(
            err,
            OntoError::NotNullDelete { ref attribute, .. } if attribute == "lastname"
        ));
    }

    #[test]
    fn deleting_absent_triple_rejected() {
        let (db, mapping) = fixture_db_with_rows();
        // author6's email is hert@ifi.uzh.ch, not this one.
        let op = parse_update("DELETE DATA { ex:author6 foaf:mbox <mailto:other@x.ch> . }");
        let err = translate_delete_data(&db, &mapping, &delete_data(&op)).unwrap_err();
        assert!(matches!(err, OntoError::TripleNotPresent { .. }));
    }

    #[test]
    fn deleting_from_missing_row_rejected() {
        let (db, mapping) = fixture_db_with_rows();
        let op = parse_update("DELETE DATA { ex:author999 foaf:title \"Dr\" . }");
        let err = translate_delete_data(&db, &mapping, &delete_data(&op)).unwrap_err();
        assert!(matches!(err, OntoError::TripleNotPresent { .. }));
    }

    #[test]
    fn multiple_attributes_nulled_in_one_update() {
        let (db, mapping) = fixture_db_with_rows();
        let op = parse_update(
            "DELETE DATA { ex:author6 foaf:title \"Mr\" ; foaf:firstName \"Matthias\" . }",
        );
        let stmts = translate_delete_data(&db, &mapping, &delete_data(&op)).unwrap();
        assert_eq!(
            render(&stmts),
            vec![
                "UPDATE author SET title = NULL, firstname = NULL \
             WHERE id = 6 AND title = 'Mr' AND firstname = 'Matthias';"
            ]
        );
    }

    #[test]
    fn full_row_deletes_fold_into_one_in_list() {
        let (db, mapping) = fixture_db_with_rows();
        // Remove publication 1's link first so teams are deletable in
        // isolation — here both team rows, fully covered.
        let op = parse_update(
            "DELETE DATA { ex:team4 a foaf:Group ; \
               foaf:name \"Database Technology\" ; ont:teamCode \"DBTG\" . \
               ex:team5 a foaf:Group ; \
               foaf:name \"Software Engineering\" ; ont:teamCode \"SEAL\" . }",
        );
        let stmts = translate_delete_data(&db, &mapping, &delete_data(&op)).unwrap();
        assert_eq!(render(&stmts), vec!["DELETE FROM team WHERE id IN (4, 5);"]);
        // Per-row reference path: one DELETE per row.
        let per_row = translate_delete_data_per_row(&db, &mapping, &delete_data(&op)).unwrap();
        assert_eq!(
            render(&per_row),
            vec![
                "DELETE FROM team WHERE id = 4;",
                "DELETE FROM team WHERE id = 5;",
            ]
        );
    }

    #[test]
    fn same_shape_null_updates_fold_into_grouped_update() {
        let (db, mapping) = fixture_db_with_rows();
        let op = parse_update(
            "DELETE DATA { ex:author6 foaf:firstName \"Matthias\" . \
             ex:author7 foaf:firstName \"Gerald\" . }",
        );
        let stmts = translate_delete_data(&db, &mapping, &delete_data(&op)).unwrap();
        assert_eq!(
            render(&stmts),
            vec![
                "UPDATE author BY (id, firstname) SET (firstname) \
             VALUES (6, 'Matthias', NULL), (7, 'Gerald', NULL);"
            ]
        );
    }

    #[test]
    fn link_deletes_sharing_a_subject_fold_into_an_in_list() {
        let (mut db, mapping) = fixture_db_with_rows();
        // Give pub1 a second author so two links share the subject side.
        db.insert(
            "publication_author",
            &[
                ("publication".to_owned(), Value::Int(1)),
                ("author".to_owned(), Value::Int(7)),
            ],
        )
        .unwrap();
        let op =
            parse_update("DELETE DATA { ex:pub1 dc:creator ex:author6 ; dc:creator ex:author7 . }");
        let stmts = translate_delete_data(&db, &mapping, &delete_data(&op)).unwrap();
        assert_eq!(
            render(&stmts),
            vec!["DELETE FROM publication_author WHERE publication = 1 AND author IN (6, 7);"]
        );
    }

    #[test]
    fn link_triple_deletes_link_row() {
        let (db, mapping) = fixture_db_with_rows();
        let op = parse_update("DELETE DATA { ex:pub1 dc:creator ex:author6 . }");
        let stmts = translate_delete_data(&db, &mapping, &delete_data(&op)).unwrap();
        assert_eq!(
            render(&stmts),
            vec!["DELETE FROM publication_author WHERE publication = 1 AND author = 6;"]
        );
    }

    #[test]
    fn absent_link_row_rejected() {
        let (db, mapping) = fixture_db_with_rows();
        // pub1 is not linked to author7.
        let op = parse_update("DELETE DATA { ex:pub1 dc:creator ex:author7 . }");
        let err = translate_delete_data(&db, &mapping, &delete_data(&op)).unwrap_err();
        assert!(matches!(err, OntoError::TripleNotPresent { .. }));
    }

    #[test]
    fn object_property_triple_verified() {
        let (db, mapping) = fixture_db_with_rows();
        // author6 belongs to team5, not team4.
        let op = parse_update("DELETE DATA { ex:author6 ont:team ex:team4 . }");
        let err = translate_delete_data(&db, &mapping, &delete_data(&op)).unwrap_err();
        assert!(matches!(err, OntoError::TripleNotPresent { .. }));
        let ok = parse_update("DELETE DATA { ex:author6 ont:team ex:team5 . }");
        let stmts = translate_delete_data(&db, &mapping, &delete_data(&ok)).unwrap();
        assert_eq!(
            render(&stmts),
            vec!["UPDATE author SET team = NULL WHERE id = 6 AND team = 5;"]
        );
    }
}
