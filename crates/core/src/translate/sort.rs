//! Step 5 of Algorithm 1 — sorting the generated SQL statements
//! "according to the foreign key relationships among the affected
//! tables" (§5.1).
//!
//! RDBs check referential integrity *during* a transaction, so executing
//! the statements of one SPARQL/Update operation in the wrong order
//! fails even though some order succeeds. Ordering rules (edges are
//! "must run before"):
//!
//! * `INSERT` into a referenced table → before `INSERT`/`UPDATE` on a
//!   referencing table (parents first);
//! * `DELETE`/`UPDATE` on a referencing table → before `DELETE` from a
//!   referenced table (children first).
//!
//! The rules only inspect a statement's kind and target table, so the
//! sort operates on **table-level classes**: all statements of one
//! (kind, table) share one node in the dependency graph, and the edge
//! graph is quadratic in the number of *classes*, not statements. After
//! the set-based write pipeline groups statements per (table, shape),
//! classes and statements coincide; the per-row reference path keeps
//! the seed's statement-pair sort ([`sort_statements_reference`]) as
//! the semantic baseline, and both produce identical output: a stable
//! topological order (statements keep their request order wherever the
//! constraints allow).

use crate::error::{OntoError, OntoResult};
use rel::sql::Statement;
use rel::Schema;
use std::collections::BinaryHeap;

// A statement's dependency class: DML kind + target table. The grouped
// `UPDATE … BY …` is an update; SELECT (never emitted here) stays
// unrelated to everything, as in the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Insert,
    Update,
    Delete,
    Select,
}

fn kind(stmt: &Statement) -> Kind {
    match stmt {
        Statement::Insert(_) => Kind::Insert,
        Statement::Update(_) | Statement::BulkUpdate(_) => Kind::Update,
        Statement::Delete(_) => Kind::Delete,
        Statement::Select(_) => Kind::Select,
    }
}

// Must every statement of class `a` run before every statement of class
// `b`? (The rule set of the seed's statement-pair `must_precede`.)
fn class_must_precede(schema: &Schema, a: (Kind, &str), b: (Kind, &str)) -> bool {
    let ((ka, ta), (kb, tb)) = (a, b);
    if ka == Kind::Select || kb == Kind::Select {
        return false;
    }
    match (ka, kb) {
        // Parent INSERT before dependent INSERT/UPDATE.
        (Kind::Insert, Kind::Insert | Kind::Update) => references(schema, tb, ta),
        // Child DELETE/UPDATE before parent DELETE.
        (Kind::Delete | Kind::Update, Kind::Delete) => references(schema, ta, tb),
        _ => false,
    }
}

/// Sort statements along FK dependencies, class-level. Errors on
/// dependency cycles (self-referencing tables touched by several
/// same-kind statements in one operation — outside the paper's scope).
pub fn sort_statements(schema: &Schema, statements: Vec<Statement>) -> OntoResult<Vec<Statement>> {
    let n = statements.len();
    if n <= 1 {
        return Ok(statements);
    }
    // Classes in first-appearance order; members kept in request order.
    let mut classes: Vec<(Kind, String)> = Vec::new();
    let mut members: Vec<Vec<usize>> = Vec::new();
    let mut class_of = Vec::with_capacity(n);
    for (i, stmt) in statements.iter().enumerate() {
        let key = (kind(stmt), stmt.target_table().unwrap_or("").to_owned());
        let class = match classes.iter().position(|c| *c == key) {
            Some(c) => c,
            None => {
                classes.push(key);
                members.push(Vec::new());
                classes.len() - 1
            }
        };
        members[class].push(i);
        class_of.push(class);
    }
    let c = classes.len();
    // preds[b] = classes that must fully run before class b.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); c];
    let mut pending: Vec<usize> = vec![0; c];
    for a in 0..c {
        for b in 0..c {
            // A class is ordered against itself only when it holds
            // several statements (the seed's pairwise check skips the
            // lone-statement case) — and then only a cycle can result.
            if a == b && members[a].len() <= 1 {
                continue;
            }
            let ca = (classes[a].0, classes[a].1.as_str());
            let cb = (classes[b].0, classes[b].1.as_str());
            if class_must_precede(schema, ca, cb) {
                preds[b].push(a);
                pending[b] += 1;
            }
        }
    }
    // Stable emission: repeatedly take the lowest-index statement whose
    // prerequisite classes are fully emitted — exactly the seed's
    // statement-level Kahn, driven per class. Ready classes sit in a
    // min-heap keyed by their next member's index.
    let mut remaining: Vec<usize> = members.iter().map(Vec::len).collect();
    let mut cursor: Vec<usize> = vec![0; c];
    let mut heap: BinaryHeap<std::cmp::Reverse<(usize, usize)>> = BinaryHeap::new();
    for class in 0..c {
        if pending[class] == 0 {
            heap.push(std::cmp::Reverse((members[class][0], class)));
        }
    }
    let mut order = Vec::with_capacity(n);
    // succs, for releasing classes as their predecessors complete.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); c];
    for (b, ps) in preds.iter().enumerate() {
        for &a in ps {
            succs[a].push(b);
        }
    }
    while let Some(std::cmp::Reverse((index, class))) = heap.pop() {
        order.push(index);
        cursor[class] += 1;
        remaining[class] -= 1;
        if remaining[class] == 0 {
            for &b in &succs[class] {
                pending[b] -= 1;
                if pending[b] == 0 {
                    heap.push(std::cmp::Reverse((members[b][cursor[b]], b)));
                }
            }
        } else {
            heap.push(std::cmp::Reverse((members[class][cursor[class]], class)));
        }
    }
    if order.len() != n {
        return Err(OntoError::Unsupported {
            message: "cyclic foreign-key dependency among generated statements".into(),
        });
    }
    let mut slots: Vec<Option<Statement>> = statements.into_iter().map(Some).collect();
    Ok(order
        .into_iter()
        .map(|i| slots[i].take().expect("each index emitted once"))
        .collect())
}

/// The seed's statement-pair sort, kept verbatim as the reference for
/// the per-row write path (differential tests and the `bulk_update`
/// bench baseline): quadratic in the number of *statements*.
pub fn sort_statements_reference(
    schema: &Schema,
    statements: Vec<Statement>,
) -> OntoResult<Vec<Statement>> {
    let n = statements.len();
    if n <= 1 {
        return Ok(statements);
    }
    // edges[b] contains a ⇒ a must run before b.
    let mut before: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, a) in statements.iter().enumerate() {
        for (j, b) in statements.iter().enumerate() {
            if i == j {
                continue;
            }
            if must_precede(schema, a, b) {
                before[j].push(i);
            }
        }
    }
    // Stable Kahn: repeatedly take the lowest-index statement whose
    // prerequisites are all emitted.
    let mut emitted = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let next = (0..n).find(|&j| !emitted[j] && before[j].iter().all(|&i| emitted[i]));
        match next {
            Some(j) => {
                emitted[j] = true;
                order.push(j);
            }
            None => {
                return Err(OntoError::Unsupported {
                    message: "cyclic foreign-key dependency among generated statements".into(),
                })
            }
        }
    }
    let mut slots: Vec<Option<Statement>> = statements.into_iter().map(Some).collect();
    Ok(order
        .into_iter()
        .map(|i| slots[i].take().expect("each index emitted once"))
        .collect())
}

// Does `a` have to run before `b`?
fn must_precede(schema: &Schema, a: &Statement, b: &Statement) -> bool {
    let (Some(ta), Some(tb)) = (a.target_table(), b.target_table()) else {
        return false;
    };
    class_must_precede(schema, (kind(a), ta), (kind(b), tb))
}

// Does `from` declare a foreign key to `to`?
fn references(schema: &Schema, from: &str, to: &str) -> bool {
    schema.referenced_tables(from).contains(&to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fixture_db_with_rows;
    use rel::sql::parse;

    fn stmts(texts: &[&str]) -> Vec<Statement> {
        texts.iter().map(|t| parse(t).unwrap()).collect()
    }

    fn rendered(statements: &[Statement]) -> Vec<String> {
        statements.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn listing_15_order_constraints_hold() {
        // The paper's Listing 16 shows team/pubtype/publisher before
        // publication before author? No — author references team;
        // publication references pubtype+publisher; the link table
        // references both publication and author. Verify exactly those
        // precedence constraints.
        let (db, _) = fixture_db_with_rows();
        let input = stmts(&[
            "INSERT INTO publication_author (publication, author) VALUES (12, 6);",
            "INSERT INTO publication (id, title, year, type, publisher) VALUES (12, 'R', 2009, 4, 3);",
            "INSERT INTO author (id, lastname, team) VALUES (6, 'Hert', 5);",
            "INSERT INTO team (id, name, code) VALUES (5, 'SE', 'SEAL');",
            "INSERT INTO pubtype (id, type) VALUES (4, 'inproceedings');",
            "INSERT INTO publisher (id, name) VALUES (3, 'Springer');",
        ]);
        let sorted = sort_statements(db.schema(), input).unwrap();
        let pos = |table: &str| {
            sorted
                .iter()
                .position(|s| s.target_table() == Some(table))
                .unwrap()
        };
        assert!(pos("team") < pos("author"));
        assert!(pos("pubtype") < pos("publication"));
        assert!(pos("publisher") < pos("publication"));
        assert!(pos("publication") < pos("publication_author"));
        assert!(pos("author") < pos("publication_author"));
    }

    #[test]
    fn deletes_sorted_children_first() {
        let (db, _) = fixture_db_with_rows();
        let input = stmts(&[
            "DELETE FROM team WHERE id = 5;",
            "DELETE FROM author WHERE id = 6;",
            "DELETE FROM publication_author WHERE publication = 1 AND author = 6;",
        ]);
        let sorted = sort_statements(db.schema(), input).unwrap();
        let tables: Vec<_> = sorted.iter().map(|s| s.target_table().unwrap()).collect();
        assert_eq!(tables, vec!["publication_author", "author", "team"]);
    }

    #[test]
    fn update_nulling_fk_runs_before_parent_delete() {
        let (db, _) = fixture_db_with_rows();
        let input = stmts(&[
            "DELETE FROM team WHERE id = 5;",
            "UPDATE author SET team = NULL WHERE id = 6 AND team = 5;",
        ]);
        let sorted = sort_statements(db.schema(), input).unwrap();
        assert!(matches!(sorted[0], Statement::Update(_)));
        assert!(matches!(sorted[1], Statement::Delete(_)));
    }

    #[test]
    fn bulk_update_participates_in_the_sort_as_an_update() {
        let (db, _) = fixture_db_with_rows();
        let input = stmts(&[
            "DELETE FROM team WHERE id = 5;",
            "UPDATE author BY (id) SET (team) VALUES (6, NULL), (7, NULL);",
        ]);
        let sorted = sort_statements(db.schema(), input).unwrap();
        assert!(matches!(sorted[0], Statement::BulkUpdate(_)));
        assert!(matches!(sorted[1], Statement::Delete(_)));
    }

    #[test]
    fn parent_insert_runs_before_fk_filling_update() {
        let (db, _) = fixture_db_with_rows();
        let input = stmts(&[
            "UPDATE author SET team = 7 WHERE id = 6;",
            "INSERT INTO team (id, name) VALUES (7, 'New');",
        ]);
        let sorted = sort_statements(db.schema(), input).unwrap();
        assert!(matches!(sorted[0], Statement::Insert(_)));
    }

    #[test]
    fn unrelated_statements_keep_request_order() {
        let (db, _) = fixture_db_with_rows();
        let input = stmts(&[
            "INSERT INTO team (id) VALUES (8);",
            "INSERT INTO publisher (id) VALUES (9);",
            "INSERT INTO pubtype (id) VALUES (10);",
        ]);
        let before = rendered(&input);
        let sorted = sort_statements(db.schema(), input).unwrap();
        assert_eq!(rendered(&sorted), before);
    }

    #[test]
    fn empty_and_singleton_pass_through() {
        let (db, _) = fixture_db_with_rows();
        assert!(sort_statements(db.schema(), vec![]).unwrap().is_empty());
        let one = stmts(&["DELETE FROM team WHERE id = 1;"]);
        assert_eq!(sort_statements(db.schema(), one).unwrap().len(), 1);
    }

    #[test]
    fn sorted_order_executes_where_request_order_fails() {
        // End-to-end demonstration of why the sort exists.
        let (mut db, _) = fixture_db_with_rows();
        let wrong_order = stmts(&[
            "INSERT INTO author (id, lastname, team) VALUES (20, 'X', 9);",
            "INSERT INTO team (id, name) VALUES (9, 'T9');",
        ]);
        // Executing verbatim fails on the FK check.
        let mut probe = db.clone();
        probe.begin().unwrap();
        assert!(rel::sql::execute(&mut probe, &wrong_order[0]).is_err());
        probe.rollback().unwrap();
        // Through the sort it succeeds.
        let sorted = sort_statements(db.schema(), wrong_order).unwrap();
        db.begin().unwrap();
        for stmt in &sorted {
            rel::sql::execute(&mut db, stmt).unwrap();
        }
        db.commit().unwrap();
    }

    #[test]
    fn class_sort_matches_reference_sort() {
        // The table-level class sort and the seed's statement-pair sort
        // must order every workload identically.
        let (db, _) = fixture_db_with_rows();
        let workloads: Vec<Vec<&str>> = vec![
            vec![
                "INSERT INTO publication_author (publication, author) VALUES (12, 6);",
                "INSERT INTO publication (id, title, year, type, publisher) VALUES (12, 'R', 2009, 4, 3);",
                "INSERT INTO author (id, lastname, team) VALUES (6, 'Hert', 5);",
                "INSERT INTO team (id, name, code) VALUES (5, 'SE', 'SEAL');",
                "INSERT INTO pubtype (id, type) VALUES (4, 'inproceedings');",
                "INSERT INTO publisher (id, name) VALUES (3, 'Springer');",
            ],
            vec![
                "DELETE FROM team WHERE id = 5;",
                "DELETE FROM author WHERE id = 6;",
                "UPDATE author SET team = NULL WHERE id = 7;",
                "DELETE FROM publication_author WHERE publication = 1 AND author = 6;",
                "INSERT INTO team (id) VALUES (9);",
                "UPDATE publication SET year = 2010 WHERE id = 1;",
            ],
            vec![
                "INSERT INTO author (id, lastname) VALUES (21, 'A');",
                "INSERT INTO author (id, lastname) VALUES (22, 'B');",
                "INSERT INTO team (id) VALUES (9);",
                "DELETE FROM author WHERE id = 6;",
                "INSERT INTO author (id, lastname) VALUES (23, 'C');",
                "DELETE FROM team WHERE id = 4;",
            ],
        ];
        for texts in workloads {
            let input = stmts(&texts);
            let fast = sort_statements(db.schema(), input.clone()).unwrap();
            let reference = sort_statements_reference(db.schema(), input).unwrap();
            assert_eq!(rendered(&fast), rendered(&reference), "input: {texts:?}");
        }
    }

    #[test]
    fn self_referencing_cycles_still_detected() {
        use rel::{Column, Database, Schema, SqlType, Table};
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("node")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("parent", SqlType::Integer))
                    .primary_key(&["id"])
                    .foreign_key("parent", "node", "id")
                    .build(),
            )
            .unwrap();
        let db = Database::new(schema).unwrap();
        // Two inserts into a self-referencing table: unsortable (as in
        // the seed), for the class sort and the reference alike.
        let input = stmts(&[
            "INSERT INTO node (id) VALUES (1);",
            "INSERT INTO node (id, parent) VALUES (2, 1);",
        ]);
        assert!(sort_statements(db.schema(), input.clone()).is_err());
        assert!(sort_statements_reference(db.schema(), input).is_err());
        // A single insert passes.
        let one = stmts(&["INSERT INTO node (id) VALUES (1);"]);
        assert_eq!(sort_statements(db.schema(), one).unwrap().len(), 1);
    }
}
