//! Step 5 of Algorithm 1 — sorting the generated SQL statements
//! "according to the foreign key relationships among the affected
//! tables" (§5.1).
//!
//! RDBs check referential integrity *during* a transaction, so executing
//! the statements of one SPARQL/Update operation in the wrong order
//! fails even though some order succeeds. Ordering rules (edges are
//! "must run before"):
//!
//! * `INSERT` into a referenced table → before `INSERT`/`UPDATE` on a
//!   referencing table (parents first);
//! * `DELETE`/`UPDATE` on a referencing table → before `DELETE` from a
//!   referenced table (children first).
//!
//! The sort is a stable topological sort: statements keep their request
//! order wherever the constraints allow, so output is deterministic.

use crate::error::{OntoError, OntoResult};
use rel::sql::Statement;
use rel::Schema;

/// Sort statements along FK dependencies. Errors on dependency cycles
/// (self-referencing tables inserted and deleted in one operation —
/// outside the paper's scope).
pub fn sort_statements(schema: &Schema, statements: Vec<Statement>) -> OntoResult<Vec<Statement>> {
    let n = statements.len();
    if n <= 1 {
        return Ok(statements);
    }
    // edges[b] contains a ⇒ a must run before b.
    let mut before: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, a) in statements.iter().enumerate() {
        for (j, b) in statements.iter().enumerate() {
            if i == j {
                continue;
            }
            if must_precede(schema, a, b) {
                before[j].push(i);
            }
        }
    }
    // Stable Kahn: repeatedly take the lowest-index statement whose
    // prerequisites are all emitted.
    let mut emitted = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let next = (0..n).find(|&j| !emitted[j] && before[j].iter().all(|&i| emitted[i]));
        match next {
            Some(j) => {
                emitted[j] = true;
                order.push(j);
            }
            None => {
                return Err(OntoError::Unsupported {
                    message: "cyclic foreign-key dependency among generated statements".into(),
                })
            }
        }
    }
    let mut slots: Vec<Option<Statement>> = statements.into_iter().map(Some).collect();
    Ok(order
        .into_iter()
        .map(|i| slots[i].take().expect("each index emitted once"))
        .collect())
}

// Does `a` have to run before `b`?
fn must_precede(schema: &Schema, a: &Statement, b: &Statement) -> bool {
    let (Some(ta), Some(tb)) = (a.target_table(), b.target_table()) else {
        return false;
    };
    match (a, b) {
        // Parent INSERT before dependent INSERT/UPDATE.
        (Statement::Insert(_), Statement::Insert(_) | Statement::Update(_)) => {
            references(schema, tb, ta)
        }
        // Child DELETE/UPDATE before parent DELETE.
        (Statement::Delete(_) | Statement::Update(_), Statement::Delete(_)) => {
            references(schema, ta, tb)
        }
        _ => false,
    }
}

// Does `from` declare a foreign key to `to`?
fn references(schema: &Schema, from: &str, to: &str) -> bool {
    schema.referenced_tables(from).contains(&to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fixture_db_with_rows;
    use rel::sql::parse;

    fn stmts(texts: &[&str]) -> Vec<Statement> {
        texts.iter().map(|t| parse(t).unwrap()).collect()
    }

    fn rendered(statements: &[Statement]) -> Vec<String> {
        statements.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn listing_15_order_constraints_hold() {
        // The paper's Listing 16 shows team/pubtype/publisher before
        // publication before author? No — author references team;
        // publication references pubtype+publisher; the link table
        // references both publication and author. Verify exactly those
        // precedence constraints.
        let (db, _) = fixture_db_with_rows();
        let input = stmts(&[
            "INSERT INTO publication_author (publication, author) VALUES (12, 6);",
            "INSERT INTO publication (id, title, year, type, publisher) VALUES (12, 'R', 2009, 4, 3);",
            "INSERT INTO author (id, lastname, team) VALUES (6, 'Hert', 5);",
            "INSERT INTO team (id, name, code) VALUES (5, 'SE', 'SEAL');",
            "INSERT INTO pubtype (id, type) VALUES (4, 'inproceedings');",
            "INSERT INTO publisher (id, name) VALUES (3, 'Springer');",
        ]);
        let sorted = sort_statements(db.schema(), input).unwrap();
        let pos = |table: &str| {
            sorted
                .iter()
                .position(|s| s.target_table() == Some(table))
                .unwrap()
        };
        assert!(pos("team") < pos("author"));
        assert!(pos("pubtype") < pos("publication"));
        assert!(pos("publisher") < pos("publication"));
        assert!(pos("publication") < pos("publication_author"));
        assert!(pos("author") < pos("publication_author"));
    }

    #[test]
    fn deletes_sorted_children_first() {
        let (db, _) = fixture_db_with_rows();
        let input = stmts(&[
            "DELETE FROM team WHERE id = 5;",
            "DELETE FROM author WHERE id = 6;",
            "DELETE FROM publication_author WHERE publication = 1 AND author = 6;",
        ]);
        let sorted = sort_statements(db.schema(), input).unwrap();
        let tables: Vec<_> = sorted.iter().map(|s| s.target_table().unwrap()).collect();
        assert_eq!(tables, vec!["publication_author", "author", "team"]);
    }

    #[test]
    fn update_nulling_fk_runs_before_parent_delete() {
        let (db, _) = fixture_db_with_rows();
        let input = stmts(&[
            "DELETE FROM team WHERE id = 5;",
            "UPDATE author SET team = NULL WHERE id = 6 AND team = 5;",
        ]);
        let sorted = sort_statements(db.schema(), input).unwrap();
        assert!(matches!(sorted[0], Statement::Update(_)));
        assert!(matches!(sorted[1], Statement::Delete(_)));
    }

    #[test]
    fn parent_insert_runs_before_fk_filling_update() {
        let (db, _) = fixture_db_with_rows();
        let input = stmts(&[
            "UPDATE author SET team = 7 WHERE id = 6;",
            "INSERT INTO team (id, name) VALUES (7, 'New');",
        ]);
        let sorted = sort_statements(db.schema(), input).unwrap();
        assert!(matches!(sorted[0], Statement::Insert(_)));
    }

    #[test]
    fn unrelated_statements_keep_request_order() {
        let (db, _) = fixture_db_with_rows();
        let input = stmts(&[
            "INSERT INTO team (id) VALUES (8);",
            "INSERT INTO publisher (id) VALUES (9);",
            "INSERT INTO pubtype (id) VALUES (10);",
        ]);
        let before = rendered(&input);
        let sorted = sort_statements(db.schema(), input).unwrap();
        assert_eq!(rendered(&sorted), before);
    }

    #[test]
    fn empty_and_singleton_pass_through() {
        let (db, _) = fixture_db_with_rows();
        assert!(sort_statements(db.schema(), vec![]).unwrap().is_empty());
        let one = stmts(&["DELETE FROM team WHERE id = 1;"]);
        assert_eq!(sort_statements(db.schema(), one).unwrap().len(), 1);
    }

    #[test]
    fn sorted_order_executes_where_request_order_fails() {
        // End-to-end demonstration of why the sort exists.
        let (mut db, _) = fixture_db_with_rows();
        let wrong_order = stmts(&[
            "INSERT INTO author (id, lastname, team) VALUES (20, 'X', 9);",
            "INSERT INTO team (id, name) VALUES (9, 'T9');",
        ]);
        // Executing verbatim fails on the FK check.
        let mut probe = db.clone();
        probe.begin().unwrap();
        assert!(rel::sql::execute(&mut probe, &wrong_order[0]).is_err());
        probe.rollback().unwrap();
        // Through the sort it succeeds.
        let sorted = sort_statements(db.schema(), wrong_order).unwrap();
        db.begin().unwrap();
        for stmt in &sorted {
            rel::sql::execute(&mut db, stmt).unwrap();
        }
        db.commit().unwrap();
    }
}
