//! Algorithm 1 (paper §5.1): translating the triples of `INSERT DATA` /
//! `DELETE DATA` operations to SQL DML.
//!
//! The six steps of the paper's Algorithm 1 map to this module as:
//!
//! 1. `groupTriples`   → [`group_by_subject`]
//! 2. `identifyTable`  → [`identify`] (via the R3M URI patterns)
//! 3. `check`          → inside [`insert`] / [`delete`] (constraint
//!    screening against the mapping-recorded constraints)
//! 4. `generateSQL`    → inside [`insert`] / [`delete`]
//! 5. `sortSQL`        → [`sort`] (topological sort along FK edges)
//! 6. `executeSQL`     → [`execute_sorted`] (one transaction per
//!    SPARQL/Update operation)

pub mod delete;
pub mod insert;
pub mod sort;

use crate::convert::pattern_value;
use crate::error::{OntoError, OntoResult};
use r3m::{Mapping, TableMap};
use rdf::{Iri, Term, Triple};
use rel::sql::{BulkRow, BulkUpdateStmt, DeleteStmt, Expr, InsertStmt, Statement, UpdateStmt};
use rel::{Database, IndexKey, Schema, Value};
use std::collections::{BTreeMap, HashMap};

/// Options modulating translation.
#[derive(Debug, Clone, Copy, Default)]
pub struct TranslateOptions {
    /// Allow `INSERT DATA` to overwrite an attribute that already holds
    /// a different value. Off by default (a second value for a
    /// single-valued attribute is an error); Algorithm 2 switches it on
    /// for inserts whose matching delete was optimized away (§5.2).
    pub allow_overwrite: bool,
}

/// Step 1 — group triples by subject: "these triples all represent data
/// about the same entity and therefore target the same table".
/// Deterministic subject order (term order).
pub fn group_by_subject(triples: &[Triple]) -> Vec<(Term, Vec<Triple>)> {
    let mut groups: BTreeMap<Term, Vec<Triple>> = BTreeMap::new();
    for t in triples {
        groups.entry(t.subject.clone()).or_default().push(t.clone());
    }
    groups.into_iter().collect()
}

/// A subject identified against the mapping: its table and the key
/// values extracted from the URI (typed per the schema).
#[derive(Debug, Clone)]
pub struct IdentifiedSubject<'a> {
    /// The subject's instance IRI.
    pub uri: Iri,
    /// Table map the URI pattern resolved to.
    pub table_map: &'a TableMap,
    /// `(attribute, value)` pairs extracted from the URI, converted to
    /// the column types.
    pub key: Vec<(String, Value)>,
}

impl IdentifiedSubject<'_> {
    /// Values of the table's primary key columns, in PK declaration
    /// order (what `find_by_pk` expects).
    pub fn pk_values(&self, table: &rel::Table) -> OntoResult<Vec<Value>> {
        let mut out = Vec::with_capacity(table.primary_key.len());
        for pk in &table.primary_key {
            let value = self
                .key
                .iter()
                .find(|(attr, _)| attr == pk)
                .map(|(_, v)| *v)
                .ok_or_else(|| OntoError::Unsupported {
                    message: format!(
                        "uriPattern of table {:?} does not expose primary key attribute {pk:?}",
                        table.name
                    ),
                })?;
            out.push(value);
        }
        Ok(out)
    }
}

/// Step 2 — identify the table affected by a subject group "through the
/// URI of their subject", extracting key attribute values (e.g.
/// `…/author1` → table `author`, `id = 1`).
pub fn identify<'a>(
    db: &Database,
    mapping: &'a Mapping,
    subject: &Term,
) -> OntoResult<IdentifiedSubject<'a>> {
    let uri = match subject {
        Term::Iri(iri) => iri.clone(),
        Term::Blank(b) => {
            return Err(OntoError::BlankNodeSubject {
                label: b.label().to_owned(),
            })
        }
        Term::Literal(_) => {
            return Err(OntoError::UnknownSubject {
                subject: subject.clone(),
            })
        }
    };
    let (table_map, raw_values) =
        mapping
            .identify(&uri)
            .ok_or_else(|| OntoError::UnknownSubject {
                subject: subject.clone(),
            })?;
    let table = db.schema().table(&table_map.table_name)?;
    let mut key = Vec::with_capacity(raw_values.len());
    for (attr, raw) in raw_values {
        let column = table.column(&attr).ok_or_else(|| OntoError::Unsupported {
            message: format!(
                "uriPattern attribute {attr:?} missing from table {:?}",
                table.name
            ),
        })?;
        let value =
            pattern_value(&raw, column.ty).map_err(|reason| OntoError::ValueIncompatible {
                table: table.name.clone(),
                attribute: attr.clone(),
                value: subject.clone(),
                reason,
            })?;
        key.push((attr, value));
    }
    Ok(IdentifiedSubject {
        uri,
        table_map,
        key,
    })
}

/// Find the row a subject denotes, if present.
pub fn find_row(
    db: &Database,
    identified: &IdentifiedSubject<'_>,
) -> OntoResult<Option<rel::RowId>> {
    let table = db.schema().table(&identified.table_map.table_name)?;
    let pk = identified.pk_values(table)?;
    Ok(db.find_by_pk(&table.name, &pk)?)
}

// ----------------------------------------------------------------------
// Row plans: the neutral output of steps 3+4, before emission
// ----------------------------------------------------------------------

/// One row-level effect of Algorithm 1, produced per subject group
/// before any SQL is rendered. The grouped (default) emission folds all
/// plans of one (table, column-shape) into one set-based statement; the
/// per-row reference emission maps each plan to the classic single-row
/// statement the seed pipeline produced — both from the same plans, so
/// the two paths are semantically identical by construction.
#[derive(Debug, Clone, PartialEq)]
pub enum RowOp {
    /// A new row.
    Insert {
        /// Target table.
        table: String,
        /// Supplied columns, in schema order.
        columns: Vec<String>,
        /// Values, parallel to `columns`.
        values: Vec<Value>,
    },
    /// Assignments to the row(s) matching `key` with SQL equality. The
    /// key lists the primary-key pairs first, then any guard pairs (the
    /// paper's Listing-18 current-value equality).
    Update {
        /// Target table.
        table: String,
        /// `(column, value)` equality pairs identifying the row.
        key: Vec<(String, Value)>,
        /// `(column, value)` assignments.
        sets: Vec<(String, Value)>,
    },
    /// Removal of the row(s) matching `key`.
    Delete {
        /// Target table.
        table: String,
        /// `(column, value)` equality pairs identifying the row.
        key: Vec<(String, Value)>,
    },
}

// `k1 = v1 AND k2 = v2 …` over a plan key.
fn key_predicate(key: &[(String, Value)]) -> Expr {
    Expr::conjunction(
        key.iter()
            .map(|(column, value)| Expr::eq(Expr::col(column), Expr::Value(*value)))
            .collect(),
    )
    .expect("plan keys are non-empty")
}

impl RowOp {
    // The classic single-row statement (the seed's emission, verbatim).
    fn into_single_statement(self) -> Statement {
        match self {
            RowOp::Insert {
                table,
                columns,
                values,
            } => Statement::Insert(InsertStmt::single(table, columns, values)),
            RowOp::Update { table, key, sets } => Statement::Update(UpdateStmt {
                table,
                assignments: sets
                    .into_iter()
                    .map(|(column, value)| (column, Expr::Value(value)))
                    .collect(),
                where_clause: Some(key_predicate(&key)),
            }),
            RowOp::Delete { table, key } => Statement::Delete(DeleteStmt {
                table,
                where_clause: Some(key_predicate(&key)),
            }),
        }
    }
}

/// Per-row reference emission: one statement per plan, exactly the
/// statement stream the pre-batching pipeline produced.
pub fn emit_per_row(plans: Vec<RowOp>) -> Vec<Statement> {
    plans
        .into_iter()
        .map(RowOp::into_single_statement)
        .collect()
}

// Shape keys for update/delete grouping (inserts group by per-table
// runs instead — see [`emit_grouped`]). Deletes additionally fix every
// key column but the last (link-table deletes share the subject side),
// so the varying tail column can fold into one `IN (…)` list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Shape {
    Update(String, Vec<String>, Vec<String>),
    Delete(String, Vec<String>, Vec<IndexKey>),
}

enum Group {
    Insert {
        table: String,
        columns: Vec<String>,
        rows: Vec<Vec<Value>>,
    },
    Update {
        table: String,
        key_columns: Vec<String>,
        set_columns: Vec<String>,
        rows: Vec<BulkRow>,
    },
    Delete {
        table: String,
        prefix: Vec<(String, Value)>,
        tail_column: String,
        tail_values: Vec<Value>,
    },
}

/// Grouped emission: one statement per (table, column-shape), in
/// first-appearance order. Single-plan groups render as the classic
/// single-row statements (the paper's listing shapes); larger groups
/// become multi-row `INSERT`, grouped `UPDATE … BY …`, or `DELETE …
/// IN (…)`. Inserts into and deletes from self-referencing tables are
/// never grouped, preserving the FK sort's cycle detection.
///
/// Inserts fold **runs** per table: a shape change within one table
/// closes that table's open group, so rows of one table always execute
/// in plan order and the physical heap (row ids, auto-increment
/// values) stays byte-identical to the per-row reference emission.
/// Updates and deletes group across the whole plan list — they create
/// no row ids, touch each row at most once per round, and removal
/// order cannot change the final state.
pub fn emit_grouped(schema: &Schema, plans: Vec<RowOp>) -> Vec<Statement> {
    let mut groups: Vec<Group> = Vec::new();
    let mut index: HashMap<Shape, usize> = HashMap::new();
    // Per table: the trailing (still open) insert group and its shape.
    let mut open_insert: HashMap<String, (Vec<String>, usize)> = HashMap::new();
    let self_references = |table: &str| schema.referenced_tables(table).contains(&table);
    for plan in plans {
        match plan {
            RowOp::Insert {
                table,
                columns,
                values,
            } => {
                if self_references(&table) {
                    groups.push(Group::Insert {
                        table,
                        columns,
                        rows: vec![values],
                    });
                    continue;
                }
                match open_insert.get(&table) {
                    Some((open_columns, at)) if *open_columns == columns => {
                        let Group::Insert { rows, .. } = &mut groups[*at] else {
                            unreachable!("open_insert points at an insert group")
                        };
                        rows.push(values);
                    }
                    _ => {
                        open_insert.insert(table.clone(), (columns.clone(), groups.len()));
                        groups.push(Group::Insert {
                            table,
                            columns,
                            rows: vec![values],
                        });
                    }
                }
            }
            RowOp::Update { table, key, sets } => {
                let key_columns: Vec<String> = key.iter().map(|(c, _)| c.clone()).collect();
                let set_columns: Vec<String> = sets.iter().map(|(c, _)| c.clone()).collect();
                let row = BulkRow {
                    key: key.into_iter().map(|(_, v)| v).collect(),
                    set: sets.into_iter().map(|(_, v)| v).collect(),
                };
                let shape = Shape::Update(table.clone(), key_columns.clone(), set_columns.clone());
                match index.get(&shape) {
                    Some(&at) => {
                        let Group::Update { rows, .. } = &mut groups[at] else {
                            unreachable!("shape key fixes the variant")
                        };
                        rows.push(row);
                    }
                    None => {
                        index.insert(shape, groups.len());
                        groups.push(Group::Update {
                            table,
                            key_columns,
                            set_columns,
                            rows: vec![row],
                        });
                    }
                }
            }
            RowOp::Delete { table, mut key } => {
                let (tail_column, tail_value) = key.pop().expect("plan keys are non-empty");
                if self_references(&table) {
                    groups.push(Group::Delete {
                        table,
                        prefix: key,
                        tail_column,
                        tail_values: vec![tail_value],
                    });
                    continue;
                }
                let columns: Vec<String> = key
                    .iter()
                    .map(|(c, _)| c.clone())
                    .chain(std::iter::once(tail_column.clone()))
                    .collect();
                let prefix_keys: Vec<IndexKey> = key.iter().map(|(_, v)| v.index_key()).collect();
                let shape = Shape::Delete(table.clone(), columns, prefix_keys);
                match index.get(&shape) {
                    Some(&at) => {
                        let Group::Delete { tail_values, .. } = &mut groups[at] else {
                            unreachable!("shape key fixes the variant")
                        };
                        tail_values.push(tail_value);
                    }
                    None => {
                        index.insert(shape, groups.len());
                        groups.push(Group::Delete {
                            table,
                            prefix: key,
                            tail_column,
                            tail_values: vec![tail_value],
                        });
                    }
                }
            }
        }
    }
    groups
        .into_iter()
        .map(|group| match group {
            Group::Insert {
                table,
                columns,
                rows,
            } => Statement::Insert(InsertStmt {
                table,
                columns,
                rows,
            }),
            Group::Update {
                table,
                key_columns,
                set_columns,
                mut rows,
            } => {
                if rows.len() == 1 {
                    let row = rows.remove(0);
                    RowOp::Update {
                        table,
                        key: key_columns.into_iter().zip(row.key).collect(),
                        sets: set_columns.into_iter().zip(row.set).collect(),
                    }
                    .into_single_statement()
                } else {
                    Statement::BulkUpdate(BulkUpdateStmt {
                        table,
                        key_columns,
                        set_columns,
                        rows,
                    })
                }
            }
            Group::Delete {
                table,
                prefix,
                tail_column,
                mut tail_values,
            } => {
                if tail_values.len() == 1 {
                    let mut key = prefix;
                    key.push((tail_column, tail_values.remove(0)));
                    RowOp::Delete { table, key }.into_single_statement()
                } else {
                    let mut conjuncts: Vec<Expr> = prefix
                        .iter()
                        .map(|(column, value)| Expr::eq(Expr::col(column), Expr::Value(*value)))
                        .collect();
                    conjuncts.push(Expr::col_in_values(&tail_column, tail_values));
                    Statement::Delete(DeleteStmt {
                        table,
                        where_clause: Expr::conjunction(conjuncts),
                    })
                }
            }
        })
        .collect()
}

// ----------------------------------------------------------------------
// Execution (steps 5+6)
// ----------------------------------------------------------------------

/// What one sorted execution did: the statements in execution order
/// (one per table-level group on the batched path) plus the total row
/// count they affected — the group-level accounting the endpoint and
/// the feedback protocol report.
#[derive(Debug, Clone, Default)]
pub struct ExecutionReport {
    /// Statements in execution order.
    pub statements: Vec<Statement>,
    /// Rows inserted, updated, or deleted across all statements.
    pub rows_affected: usize,
}

/// An atomic write scope over the live database: a top-level
/// transaction when none is open, a savepoint inside an already-open
/// one. This is how every unit of the write pipeline (one SPARQL/Update
/// operation, one MODIFY round, one scripted operation) gets
/// all-or-nothing semantics without cloning the database — commit cost
/// is dropping the scope, rollback cost is O(rows touched).
#[derive(Debug)]
pub enum WriteScope {
    /// The scope opened the transaction and owns its end.
    Transaction,
    /// The scope nests inside an open transaction as a savepoint.
    Savepoint(rel::SavepointId),
}

impl WriteScope {
    /// Open a scope: `BEGIN`, or `SAVEPOINT` when a transaction is
    /// already open.
    pub fn open(db: &mut Database) -> OntoResult<Self> {
        if db.in_transaction() {
            Ok(WriteScope::Savepoint(db.savepoint("write_scope")?))
        } else {
            db.begin()?;
            Ok(WriteScope::Transaction)
        }
    }

    /// Keep the scope's changes (`COMMIT` / `RELEASE SAVEPOINT`; a
    /// released savepoint's changes end with the enclosing scope).
    pub fn commit(self, db: &mut Database) -> OntoResult<()> {
        match self {
            WriteScope::Transaction => db.commit()?,
            WriteScope::Savepoint(sp) => db.release_savepoint(sp)?,
        }
        Ok(())
    }

    /// Undo every change made inside the scope (`ROLLBACK` / `ROLLBACK
    /// TO SAVEPOINT` + release).
    pub fn rollback(self, db: &mut Database) -> OntoResult<()> {
        match self {
            WriteScope::Transaction => db.rollback()?,
            WriteScope::Savepoint(sp) => {
                db.rollback_to_savepoint(sp)?;
                db.release_savepoint(sp)?;
            }
        }
        Ok(())
    }
}

/// Steps 5+6 — sort the collected statements by FK dependencies
/// (table-level groups) and execute them inside one atomic write scope
/// (a transaction, or a savepoint when the caller already holds one).
/// On any failure the scope is rolled back and the database is
/// unchanged.
pub fn execute_sorted(
    db: &mut Database,
    statements: Vec<Statement>,
) -> OntoResult<ExecutionReport> {
    execute_sorted_timed(db, statements).map(|(report, _, _)| report)
}

/// [`execute_sorted`] with the sort and execute stage wall times
/// returned alongside the report — the update-profiling path
/// (`?profile=1` on `POST /update`). The stages also carry trace spans
/// (`update.sort`, `update.execute`), recorded only under an active
/// trace.
pub fn execute_sorted_timed(
    db: &mut Database,
    statements: Vec<Statement>,
) -> OntoResult<(ExecutionReport, std::time::Duration, std::time::Duration)> {
    let sort_started = std::time::Instant::now();
    let sort_span = obs::trace::span("update.sort");
    let sorted = sort::sort_statements(db.schema(), statements)?;
    drop(sort_span);
    let sort = sort_started.elapsed();
    let execute_started = std::time::Instant::now();
    let execute_span = obs::trace::span("update.execute");
    let report = run_in_scope(db, sorted)?;
    if execute_span.armed() {
        execute_span.attr_u64("statements", report.statements.len() as u64);
        execute_span.attr_u64("rows_affected", report.rows_affected as u64);
    }
    drop(execute_span);
    Ok((report, sort, execute_started.elapsed()))
}

/// Reference variant of [`execute_sorted`] for the per-row statement
/// stream: the seed's statement-pair sort, then one engine call per
/// single-row statement. Kept as the differential-test and benchmark
/// baseline, mirroring `execute_select_reference` on the read side.
pub fn execute_sorted_reference(
    db: &mut Database,
    statements: Vec<Statement>,
) -> OntoResult<ExecutionReport> {
    let sorted = sort::sort_statements_reference(db.schema(), statements)?;
    run_in_scope(db, sorted)
}

fn run_in_scope(db: &mut Database, sorted: Vec<Statement>) -> OntoResult<ExecutionReport> {
    let scope = WriteScope::open(db)?;
    let mut rows_affected = 0;
    for stmt in &sorted {
        match rel::sql::execute(db, stmt) {
            Ok(outcome) => rows_affected += outcome.affected(),
            Err(e) => {
                scope.rollback(db)?;
                return Err(OntoError::Database(e));
            }
        }
    }
    scope.commit(db)?;
    Ok(ExecutionReport {
        statements: sorted,
        rows_affected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{endpoint_fixture, parse_update};

    #[test]
    fn grouping_is_by_subject_and_deterministic() {
        let (_, mapping) = endpoint_fixture();
        let _ = &mapping;
        let op = parse_update(
            "INSERT DATA {
               ex:team5 foaf:name \"SE\" .
               ex:author6 foaf:family_name \"Hert\" ; foaf:title \"Mr\" .
               ex:team5 ont:teamCode \"SEAL\" .
             }",
        );
        let sparql::UpdateOp::InsertData { triples } = op else {
            panic!()
        };
        let groups = group_by_subject(&triples);
        assert_eq!(groups.len(), 2);
        // Term order: author6 < team5.
        assert_eq!(groups[0].1.len(), 2);
        assert_eq!(groups[1].1.len(), 2);
    }

    #[test]
    fn identify_extracts_typed_key() {
        let (db, mapping) = endpoint_fixture();
        let subject = Term::iri("http://example.org/db/author1");
        let identified = identify(&db, &mapping, &subject).unwrap();
        assert_eq!(identified.table_map.table_name, "author");
        assert_eq!(identified.key, vec![("id".to_owned(), Value::Int(1))]);
    }

    #[test]
    fn identify_rejects_unknown_pattern() {
        let (db, mapping) = endpoint_fixture();
        let subject = Term::iri("http://example.org/db/wizard9");
        assert!(matches!(
            identify(&db, &mapping, &subject),
            Err(OntoError::UnknownSubject { .. })
        ));
    }

    #[test]
    fn identify_rejects_blank_nodes() {
        let (db, mapping) = endpoint_fixture();
        assert!(matches!(
            identify(&db, &mapping, &Term::blank("b0")),
            Err(OntoError::BlankNodeSubject { .. })
        ));
    }

    #[test]
    fn identify_rejects_non_numeric_key_for_integer_pk() {
        let (db, mapping) = endpoint_fixture();
        let subject = Term::iri("http://example.org/db/authorXY");
        assert!(matches!(
            identify(&db, &mapping, &subject),
            Err(OntoError::ValueIncompatible { .. })
        ));
    }
}
