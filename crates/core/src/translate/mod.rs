//! Algorithm 1 (paper §5.1): translating the triples of `INSERT DATA` /
//! `DELETE DATA` operations to SQL DML.
//!
//! The six steps of the paper's Algorithm 1 map to this module as:
//!
//! 1. `groupTriples`   → [`group_by_subject`]
//! 2. `identifyTable`  → [`identify`] (via the R3M URI patterns)
//! 3. `check`          → inside [`insert`] / [`delete`] (constraint
//!    screening against the mapping-recorded constraints)
//! 4. `generateSQL`    → inside [`insert`] / [`delete`]
//! 5. `sortSQL`        → [`sort`] (topological sort along FK edges)
//! 6. `executeSQL`     → [`execute_sorted`] (one transaction per
//!    SPARQL/Update operation)

pub mod delete;
pub mod insert;
pub mod sort;

use crate::convert::pattern_value;
use crate::error::{OntoError, OntoResult};
use r3m::{Mapping, TableMap};
use rdf::{Iri, Term, Triple};
use rel::sql::Statement;
use rel::{Database, Value};
use std::collections::BTreeMap;

/// Options modulating translation.
#[derive(Debug, Clone, Copy, Default)]
pub struct TranslateOptions {
    /// Allow `INSERT DATA` to overwrite an attribute that already holds
    /// a different value. Off by default (a second value for a
    /// single-valued attribute is an error); Algorithm 2 switches it on
    /// for inserts whose matching delete was optimized away (§5.2).
    pub allow_overwrite: bool,
}

/// Step 1 — group triples by subject: "these triples all represent data
/// about the same entity and therefore target the same table".
/// Deterministic subject order (term order).
pub fn group_by_subject(triples: &[Triple]) -> Vec<(Term, Vec<Triple>)> {
    let mut groups: BTreeMap<Term, Vec<Triple>> = BTreeMap::new();
    for t in triples {
        groups.entry(t.subject.clone()).or_default().push(t.clone());
    }
    groups.into_iter().collect()
}

/// A subject identified against the mapping: its table and the key
/// values extracted from the URI (typed per the schema).
#[derive(Debug, Clone)]
pub struct IdentifiedSubject<'a> {
    /// The subject's instance IRI.
    pub uri: Iri,
    /// Table map the URI pattern resolved to.
    pub table_map: &'a TableMap,
    /// `(attribute, value)` pairs extracted from the URI, converted to
    /// the column types.
    pub key: Vec<(String, Value)>,
}

impl IdentifiedSubject<'_> {
    /// Values of the table's primary key columns, in PK declaration
    /// order (what `find_by_pk` expects).
    pub fn pk_values(&self, table: &rel::Table) -> OntoResult<Vec<Value>> {
        let mut out = Vec::with_capacity(table.primary_key.len());
        for pk in &table.primary_key {
            let value = self
                .key
                .iter()
                .find(|(attr, _)| attr == pk)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| OntoError::Unsupported {
                    message: format!(
                        "uriPattern of table {:?} does not expose primary key attribute {pk:?}",
                        table.name
                    ),
                })?;
            out.push(value);
        }
        Ok(out)
    }
}

/// Step 2 — identify the table affected by a subject group "through the
/// URI of their subject", extracting key attribute values (e.g.
/// `…/author1` → table `author`, `id = 1`).
pub fn identify<'a>(
    db: &Database,
    mapping: &'a Mapping,
    subject: &Term,
) -> OntoResult<IdentifiedSubject<'a>> {
    let uri = match subject {
        Term::Iri(iri) => iri.clone(),
        Term::Blank(b) => {
            return Err(OntoError::BlankNodeSubject {
                label: b.label().to_owned(),
            })
        }
        Term::Literal(_) => {
            return Err(OntoError::UnknownSubject {
                subject: subject.clone(),
            })
        }
    };
    let (table_map, raw_values) =
        mapping
            .identify(&uri)
            .ok_or_else(|| OntoError::UnknownSubject {
                subject: subject.clone(),
            })?;
    let table = db.schema().table(&table_map.table_name)?;
    let mut key = Vec::with_capacity(raw_values.len());
    for (attr, raw) in raw_values {
        let column = table.column(&attr).ok_or_else(|| OntoError::Unsupported {
            message: format!(
                "uriPattern attribute {attr:?} missing from table {:?}",
                table.name
            ),
        })?;
        let value =
            pattern_value(&raw, column.ty).map_err(|reason| OntoError::ValueIncompatible {
                table: table.name.clone(),
                attribute: attr.clone(),
                value: subject.clone(),
                reason,
            })?;
        key.push((attr, value));
    }
    Ok(IdentifiedSubject {
        uri,
        table_map,
        key,
    })
}

/// Find the row a subject denotes, if present.
pub fn find_row(
    db: &Database,
    identified: &IdentifiedSubject<'_>,
) -> OntoResult<Option<rel::RowId>> {
    let table = db.schema().table(&identified.table_map.table_name)?;
    let pk = identified.pk_values(table)?;
    Ok(db.find_by_pk(&table.name, &pk)?)
}

/// Steps 5+6 — sort the collected statements by FK dependencies and
/// execute them inside one transaction. On any failure the transaction
/// is rolled back and the database is unchanged.
///
/// Returns the statements in execution order.
pub fn execute_sorted(db: &mut Database, statements: Vec<Statement>) -> OntoResult<Vec<Statement>> {
    let sorted = sort::sort_statements(db.schema(), statements)?;
    db.begin()?;
    for stmt in &sorted {
        if let Err(e) = rel::sql::execute(db, stmt) {
            db.rollback()?;
            return Err(OntoError::Database(e));
        }
    }
    db.commit()?;
    Ok(sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{endpoint_fixture, parse_update};

    #[test]
    fn grouping_is_by_subject_and_deterministic() {
        let (_, mapping) = endpoint_fixture();
        let _ = &mapping;
        let op = parse_update(
            "INSERT DATA {
               ex:team5 foaf:name \"SE\" .
               ex:author6 foaf:family_name \"Hert\" ; foaf:title \"Mr\" .
               ex:team5 ont:teamCode \"SEAL\" .
             }",
        );
        let sparql::UpdateOp::InsertData { triples } = op else {
            panic!()
        };
        let groups = group_by_subject(&triples);
        assert_eq!(groups.len(), 2);
        // Term order: author6 < team5.
        assert_eq!(groups[0].1.len(), 2);
        assert_eq!(groups[1].1.len(), 2);
    }

    #[test]
    fn identify_extracts_typed_key() {
        let (db, mapping) = endpoint_fixture();
        let subject = Term::iri("http://example.org/db/author1");
        let identified = identify(&db, &mapping, &subject).unwrap();
        assert_eq!(identified.table_map.table_name, "author");
        assert_eq!(identified.key, vec![("id".to_owned(), Value::Int(1))]);
    }

    #[test]
    fn identify_rejects_unknown_pattern() {
        let (db, mapping) = endpoint_fixture();
        let subject = Term::iri("http://example.org/db/wizard9");
        assert!(matches!(
            identify(&db, &mapping, &subject),
            Err(OntoError::UnknownSubject { .. })
        ));
    }

    #[test]
    fn identify_rejects_blank_nodes() {
        let (db, mapping) = endpoint_fixture();
        assert!(matches!(
            identify(&db, &mapping, &Term::blank("b0")),
            Err(OntoError::BlankNodeSubject { .. })
        ));
    }

    #[test]
    fn identify_rejects_non_numeric_key_for_integer_pk() {
        let (db, mapping) = endpoint_fixture();
        let subject = Term::iri("http://example.org/db/authorXY");
        assert!(matches!(
            identify(&db, &mapping, &subject),
            Err(OntoError::ValueIncompatible { .. })
        ));
    }
}
