//! Shared test helpers over the publication use case (test builds only).

#![cfg(test)]

use r3m::Mapping;
use rdf::namespace::PrefixMap;
use rdf::Triple;
use rel::sql::Statement;
use rel::{Database, Value};
use sparql::UpdateOp;

/// Empty Figure-1 database plus the Table-1 mapping.
pub fn endpoint_fixture() -> (Database, Mapping) {
    (crate::usecase::database(), crate::usecase::mapping())
}

/// Database preloaded with the rows the paper's examples assume:
/// teams 4 (DBTG) and 5 (SEAL), authors 6 (Hert, team 5, with mbox) and
/// 7 (Reif, team 5), pubtype 4, publisher 3, publication 1 authored by
/// author 6.
pub fn fixture_db_with_rows() -> (Database, Mapping) {
    let (mut db, mapping) = endpoint_fixture();
    let a = |name: &str, v: Value| (name.to_owned(), v);
    db.insert(
        "team",
        &[
            a("id", Value::Int(4)),
            a("name", Value::text("Database Technology")),
            a("code", Value::text("DBTG")),
        ],
    )
    .unwrap();
    db.insert(
        "team",
        &[
            a("id", Value::Int(5)),
            a("name", Value::text("Software Engineering")),
            a("code", Value::text("SEAL")),
        ],
    )
    .unwrap();
    db.insert(
        "author",
        &[
            a("id", Value::Int(6)),
            a("title", Value::text("Mr")),
            a("firstname", Value::text("Matthias")),
            a("lastname", Value::text("Hert")),
            a("email", Value::text("hert@ifi.uzh.ch")),
            a("team", Value::Int(5)),
        ],
    )
    .unwrap();
    db.insert(
        "author",
        &[
            a("id", Value::Int(7)),
            a("firstname", Value::text("Gerald")),
            a("lastname", Value::text("Reif")),
            a("team", Value::Int(5)),
        ],
    )
    .unwrap();
    db.insert(
        "pubtype",
        &[
            a("id", Value::Int(4)),
            a("type", Value::text("inproceedings")),
        ],
    )
    .unwrap();
    db.insert(
        "publisher",
        &[a("id", Value::Int(3)), a("name", Value::text("Springer"))],
    )
    .unwrap();
    db.insert(
        "publication",
        &[
            a("id", Value::Int(1)),
            a(
                "title",
                Value::text("Relational Databases as Semantic Web Endpoints"),
            ),
            a("year", Value::Int(2009)),
            a("type", Value::Int(4)),
            a("publisher", Value::Int(3)),
        ],
    )
    .unwrap();
    db.insert(
        "publication_author",
        &[a("publication", Value::Int(1)), a("author", Value::Int(6))],
    )
    .unwrap();
    (db, mapping)
}

/// Database holding only the two teams — the state the paper's
/// Listing 9 (insert author6 with `ont:team ex:team5`) assumes.
pub fn fixture_db_teams_only() -> (Database, Mapping) {
    let (mut db, mapping) = endpoint_fixture();
    let a = |name: &str, v: Value| (name.to_owned(), v);
    db.insert(
        "team",
        &[
            a("id", Value::Int(5)),
            a("name", Value::text("Software Engineering")),
            a("code", Value::text("SEAL")),
        ],
    )
    .unwrap();
    (db, mapping)
}

/// Parse a SPARQL/Update with the use case prefixes (`ex:`, `foaf:`,
/// `dc:`, `ont:`, …) preloaded.
pub fn parse_update(body: &str) -> UpdateOp {
    let mut prefixes = PrefixMap::common();
    prefixes.insert("ex", crate::usecase::URI_PREFIX);
    sparql::parse_update_with_prefixes(body, prefixes).expect("test update parses")
}

/// Parse a SPARQL query with the use case prefixes preloaded.
pub fn parse_query(body: &str) -> sparql::Query {
    let mut prefixes = PrefixMap::common();
    prefixes.insert("ex", crate::usecase::URI_PREFIX);
    sparql::parse_query_with_prefixes(body, prefixes).expect("test query parses")
}

/// Extract the triples of an `INSERT DATA`.
pub fn insert_data(op: &UpdateOp) -> Vec<Triple> {
    match op {
        UpdateOp::InsertData { triples } => triples.clone(),
        other => panic!("expected INSERT DATA, got {}", other.name()),
    }
}

/// Extract the triples of a `DELETE DATA`.
pub fn delete_data(op: &UpdateOp) -> Vec<Triple> {
    match op {
        UpdateOp::DeleteData { triples } => triples.clone(),
        other => panic!("expected DELETE DATA, got {}", other.name()),
    }
}

/// Render statements as SQL text.
pub fn render(statements: &[Statement]) -> Vec<String> {
    statements.iter().map(|s| s.to_string()).collect()
}
