//! The paper's publication use case (§3, §7): the Figure 1 relational
//! schema, the Figure 2 domain ontology, and the Table 1 R3M mapping.
//!
//! Living in the core crate so the translator's own tests, the fixtures
//! crate, examples, and benches all share one definition.
//!
//! Two documented reconciliations with the paper's figures:
//!
//! * **`pubtype.type` is `VARCHAR`**, not the `INTEGER` Figure 1 shows —
//!   Listing 16 inserts `'inproceedings'` into it, so the figure's type
//!   annotation is taken as a typo.
//! * **`author` column order follows Listing 10** (`id, title,
//!   firstname, lastname, email, team`); Figure 1 lists `email` before
//!   `firstname`, but the paper's own generated SQL uses this order.

use r3m::{
    AttributeMap, ConstraintInfo, LinkTableMap, Mapping, PropertyMapping, TableMap, UriPattern,
};
use rdf::namespace::{dc, foaf, ont, ont_type, owl, rdf_type, rdfs, xsd};
use rdf::{Graph, Iri, Term, Triple};
use rel::{Column, Schema, SqlType, Table};

/// Instance URI prefix used throughout the paper (`ex:` in the
/// listings).
pub const URI_PREFIX: &str = "http://example.org/db/";

/// Namespace for the mapping document nodes (`map:` in the listings).
pub const MAP_NS: &str = "http://example.org/map#";

/// Figure 1 — the publication system's relational schema: six tables
/// with primary keys, foreign keys, and NOT NULL constraints.
pub fn schema() -> Schema {
    let mut schema = Schema::new();
    schema
        .add_table(
            Table::builder("publication")
                .column(Column::new("id", SqlType::Integer).not_null())
                .column(Column::new("title", SqlType::Varchar).not_null())
                .column(Column::new("year", SqlType::Integer).not_null())
                .column(Column::new("type", SqlType::Integer))
                .column(Column::new("publisher", SqlType::Integer))
                .primary_key(&["id"])
                .foreign_key("type", "pubtype", "id")
                .foreign_key("publisher", "publisher", "id")
                .build(),
        )
        .expect("fresh schema");
    schema
        .add_table(
            Table::builder("author")
                .column(Column::new("id", SqlType::Integer).not_null())
                .column(Column::new("title", SqlType::Varchar))
                .column(Column::new("firstname", SqlType::Varchar))
                .column(Column::new("lastname", SqlType::Varchar).not_null())
                .column(Column::new("email", SqlType::Varchar))
                .column(Column::new("team", SqlType::Integer))
                .primary_key(&["id"])
                .foreign_key("team", "team", "id")
                .build(),
        )
        .expect("fresh schema");
    schema
        .add_table(
            Table::builder("publisher")
                .column(Column::new("id", SqlType::Integer).not_null())
                .column(Column::new("name", SqlType::Varchar))
                .primary_key(&["id"])
                .build(),
        )
        .expect("fresh schema");
    schema
        .add_table(
            Table::builder("pubtype")
                .column(Column::new("id", SqlType::Integer).not_null())
                .column(Column::new("type", SqlType::Varchar))
                .primary_key(&["id"])
                .build(),
        )
        .expect("fresh schema");
    schema
        .add_table(
            Table::builder("team")
                .column(Column::new("id", SqlType::Integer).not_null())
                .column(Column::new("name", SqlType::Varchar))
                .column(Column::new("code", SqlType::Varchar))
                .primary_key(&["id"])
                .build(),
        )
        .expect("fresh schema");
    schema
        .add_table(
            Table::builder("publication_author")
                .column(
                    Column::new("id", SqlType::Integer)
                        .not_null()
                        .auto_increment(),
                )
                .column(Column::new("publication", SqlType::Integer).not_null())
                .column(Column::new("author", SqlType::Integer).not_null())
                .primary_key(&["id"])
                .foreign_key("publication", "publication", "id")
                .foreign_key("author", "author", "id")
                .build(),
        )
        .expect("fresh schema");
    schema
}

/// An empty [`rel::Database`] over the Figure 1 schema.
pub fn database() -> rel::Database {
    rel::Database::new(schema()).expect("Figure 1 schema is valid")
}

fn map_iri(local: &str) -> Iri {
    Iri::new_unchecked(format!("{MAP_NS}{local}"))
}

fn pattern(text: &str) -> UriPattern {
    UriPattern::parse(text).expect("use case patterns are valid")
}

fn attr(
    table: &str,
    name: &str,
    property: Option<PropertyMapping>,
    constraints: Vec<ConstraintInfo>,
) -> AttributeMap {
    AttributeMap {
        id: map_iri(&format!("{table}_{name}")),
        attribute_name: name.to_owned(),
        property,
        value_pattern: None,
        constraints,
    }
}

/// Table 1 — the use case mapping: tables → classes (FOAF/DC/ONT) and
/// attributes → properties, with all constraints of Figure 1 recorded.
pub fn mapping() -> Mapping {
    let fk = |target: &str| ConstraintInfo::ForeignKey {
        references: map_iri(target),
    };
    let publication = TableMap {
        id: map_iri("publication"),
        table_name: "publication".into(),
        class: foaf::Document(),
        uri_pattern: pattern("pub%%id%%"),
        attributes: vec![
            attr("publication", "id", None, vec![ConstraintInfo::PrimaryKey]),
            attr(
                "publication",
                "title",
                Some(PropertyMapping::Data(dc::title())),
                vec![ConstraintInfo::NotNull],
            ),
            attr(
                "publication",
                "year",
                Some(PropertyMapping::Data(ont::pubYear())),
                vec![ConstraintInfo::NotNull],
            ),
            attr(
                "publication",
                "type",
                Some(PropertyMapping::Object(ont::pubType())),
                vec![fk("pubtype")],
            ),
            attr(
                "publication",
                "publisher",
                Some(PropertyMapping::Object(dc::publisher())),
                vec![fk("publisher")],
            ),
        ],
    };
    let mut email = attr(
        "author",
        "email",
        Some(PropertyMapping::Object(foaf::mbox())),
        vec![],
    );
    // foaf:mbox objects are mailto: IRIs derived from the email value
    // (Listing 9 ↔ Listing 10).
    email.value_pattern = Some(pattern("mailto:%%email%%"));
    let author = TableMap {
        id: map_iri("author"),
        table_name: "author".into(),
        class: foaf::Person(),
        uri_pattern: pattern("author%%id%%"),
        attributes: vec![
            attr("author", "id", None, vec![ConstraintInfo::PrimaryKey]),
            attr(
                "author",
                "title",
                Some(PropertyMapping::Data(foaf::title())),
                vec![],
            ),
            attr(
                "author",
                "firstname",
                Some(PropertyMapping::Data(foaf::firstName())),
                vec![],
            ),
            attr(
                "author",
                "lastname",
                Some(PropertyMapping::Data(foaf::family_name())),
                vec![ConstraintInfo::NotNull],
            ),
            email,
            attr(
                "author",
                "team",
                Some(PropertyMapping::Object(ont::team())),
                vec![fk("team")],
            ),
        ],
    };
    let publisher = TableMap {
        id: map_iri("publisher"),
        table_name: "publisher".into(),
        class: ont::Publisher(),
        uri_pattern: pattern("publisher%%id%%"),
        attributes: vec![
            attr("publisher", "id", None, vec![ConstraintInfo::PrimaryKey]),
            attr(
                "publisher",
                "name",
                Some(PropertyMapping::Data(ont::name())),
                vec![],
            ),
        ],
    };
    let pubtype = TableMap {
        id: map_iri("pubtype"),
        table_name: "pubtype".into(),
        class: ont::PubType(),
        uri_pattern: pattern("pubtype%%id%%"),
        attributes: vec![
            attr("pubtype", "id", None, vec![ConstraintInfo::PrimaryKey]),
            attr(
                "pubtype",
                "type",
                Some(PropertyMapping::Data(ont_type())),
                vec![],
            ),
        ],
    };
    let team = TableMap {
        id: map_iri("team"),
        table_name: "team".into(),
        class: foaf::Group(),
        uri_pattern: pattern("team%%id%%"),
        attributes: vec![
            attr("team", "id", None, vec![ConstraintInfo::PrimaryKey]),
            attr(
                "team",
                "name",
                Some(PropertyMapping::Data(foaf::name())),
                vec![],
            ),
            attr(
                "team",
                "code",
                Some(PropertyMapping::Data(ont::teamCode())),
                vec![],
            ),
        ],
    };
    let publication_author = LinkTableMap {
        id: map_iri("publication_author"),
        table_name: "publication_author".into(),
        property: dc::creator(),
        subject_attribute: attr(
            "pa",
            "publication",
            None,
            vec![
                ConstraintInfo::NotNull,
                ConstraintInfo::ForeignKey {
                    references: map_iri("publication"),
                },
            ],
        ),
        object_attribute: attr(
            "pa",
            "author",
            None,
            vec![
                ConstraintInfo::NotNull,
                ConstraintInfo::ForeignKey {
                    references: map_iri("author"),
                },
            ],
        ),
    };
    Mapping {
        id: map_iri("database"),
        jdbc_driver: Some("com.mysql.jdbc.Driver".into()),
        jdbc_url: Some("jdbc:mysql://localhost/db".into()),
        username: Some("user".into()),
        password: Some("pw".into()),
        uri_prefix: Some(URI_PREFIX.to_owned()),
        tables: vec![publication, author, publisher, pubtype, team],
        link_tables: vec![publication_author],
    }
}

/// Figure 2 — the domain ontology as an RDF graph: the five classes with
/// their properties' domains and ranges (FOAF, DC, and ONT terms).
pub fn ontology() -> Graph {
    let mut g = Graph::new();
    let class = |g: &mut Graph, c: Iri| {
        g.insert(Triple::new(
            Term::Iri(c.clone()),
            rdf_type(),
            Term::Iri(owl::Class()),
        ));
        g.insert(Triple::new(
            Term::Iri(c),
            rdfs::subClassOf(),
            Term::Iri(owl::Thing()),
        ));
    };
    class(&mut g, foaf::Document());
    class(&mut g, foaf::Person());
    class(&mut g, foaf::Group());
    class(&mut g, ont::Publisher());
    class(&mut g, ont::PubType());

    let prop = |g: &mut Graph, p: Iri, kind: Iri, domain: Iri, range: Iri| {
        g.insert(Triple::new(
            Term::Iri(p.clone()),
            rdf_type(),
            Term::Iri(kind),
        ));
        g.insert(Triple::new(
            Term::Iri(p.clone()),
            rdfs::domain(),
            Term::Iri(domain),
        ));
        g.insert(Triple::new(Term::Iri(p), rdfs::range(), Term::Iri(range)));
    };
    // foaf:Document properties.
    prop(
        &mut g,
        dc::title(),
        owl::DatatypeProperty(),
        foaf::Document(),
        xsd::string(),
    );
    prop(
        &mut g,
        ont::pubYear(),
        owl::DatatypeProperty(),
        foaf::Document(),
        xsd::int(),
    );
    prop(
        &mut g,
        ont::pubType(),
        owl::ObjectProperty(),
        foaf::Document(),
        ont::PubType(),
    );
    prop(
        &mut g,
        dc::publisher(),
        owl::ObjectProperty(),
        foaf::Document(),
        ont::Publisher(),
    );
    prop(
        &mut g,
        dc::creator(),
        owl::ObjectProperty(),
        foaf::Document(),
        foaf::Person(),
    );
    // foaf:Person properties.
    prop(
        &mut g,
        foaf::title(),
        owl::DatatypeProperty(),
        foaf::Person(),
        xsd::string(),
    );
    prop(
        &mut g,
        foaf::mbox(),
        owl::ObjectProperty(),
        foaf::Person(),
        owl::Thing(),
    );
    prop(
        &mut g,
        foaf::firstName(),
        owl::DatatypeProperty(),
        foaf::Person(),
        xsd::string(),
    );
    prop(
        &mut g,
        foaf::family_name(),
        owl::DatatypeProperty(),
        foaf::Person(),
        xsd::string(),
    );
    prop(
        &mut g,
        ont::team(),
        owl::ObjectProperty(),
        foaf::Person(),
        foaf::Group(),
    );
    // foaf:Group properties.
    prop(
        &mut g,
        foaf::name(),
        owl::DatatypeProperty(),
        foaf::Group(),
        xsd::string(),
    );
    prop(
        &mut g,
        ont::teamCode(),
        owl::DatatypeProperty(),
        foaf::Group(),
        xsd::string(),
    );
    // ont:Publisher / ont:PubType properties.
    prop(
        &mut g,
        ont::name(),
        owl::DatatypeProperty(),
        ont::Publisher(),
        xsd::string(),
    );
    prop(
        &mut g,
        ont_type(),
        owl::DatatypeProperty(),
        ont::PubType(),
        xsd::string(),
    );
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_is_valid_and_complete() {
        let s = schema();
        s.validate().unwrap();
        assert_eq!(s.len(), 6);
        let author = s.table("author").unwrap();
        assert_eq!(
            author
                .columns
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            vec!["id", "title", "firstname", "lastname", "email", "team"]
        );
        assert!(author.column("lastname").unwrap().not_null);
        assert!(
            s.table("publication")
                .unwrap()
                .column("title")
                .unwrap()
                .not_null
        );
        assert!(
            s.table("publication")
                .unwrap()
                .column("year")
                .unwrap()
                .not_null
        );
        assert!(
            s.table("publication_author")
                .unwrap()
                .column("id")
                .unwrap()
                .auto_increment
        );
    }

    #[test]
    fn mapping_validates_against_schema() {
        let issues = r3m::validate_strict(&mapping(), &schema()).unwrap();
        // Only benign warnings allowed (none expected for the use case).
        assert!(issues.is_empty(), "unexpected warnings: {issues:?}");
    }

    #[test]
    fn mapping_matches_table_1() {
        let m = mapping();
        // Table 1, column 1: tables → classes.
        for (table, class) in [
            ("publication", foaf::Document()),
            ("publisher", ont::Publisher()),
            ("pubtype", ont::PubType()),
            ("author", foaf::Person()),
            ("team", foaf::Group()),
        ] {
            assert_eq!(m.table(table).unwrap().class, class, "class of {table}");
        }
        // Table 1, column 2 (spot checks): attributes → properties.
        let check = |table: &str, attr: &str, prop: Iri| {
            assert_eq!(
                m.table(table)
                    .unwrap()
                    .attribute(attr)
                    .unwrap()
                    .property
                    .as_ref()
                    .map(|p| p.property().clone()),
                Some(prop),
                "{table}.{attr}"
            );
        };
        check("publication", "title", dc::title());
        check("publication", "year", ont::pubYear());
        check("publication", "type", ont::pubType());
        check("publication", "publisher", dc::publisher());
        check("author", "title", foaf::title());
        check("author", "email", foaf::mbox());
        check("author", "firstname", foaf::firstName());
        check("author", "lastname", foaf::family_name());
        check("author", "team", ont::team());
        check("team", "name", foaf::name());
        check("team", "code", ont::teamCode());
        check("pubtype", "type", ont_type());
        check("publisher", "name", ont::name());
        // Link table → dc:creator, not a class.
        assert_eq!(m.link_tables.len(), 1);
        assert_eq!(m.link_tables[0].property, dc::creator());
    }

    #[test]
    fn mapping_round_trips_through_turtle() {
        let mut m = mapping();
        let text = r3m::to_turtle(&m);
        let reloaded = r3m::from_turtle(&text).unwrap();
        m.normalize();
        assert_eq!(reloaded, m);
    }

    #[test]
    fn ontology_covers_figure_2() {
        let g = ontology();
        use rdf::Term;
        let classes = g.subjects_with(&rdf_type(), &Term::Iri(owl::Class()));
        assert_eq!(classes.len(), 5);
        // Every mapped property appears in the ontology.
        let m = mapping();
        for p in m.properties() {
            assert!(
                !g.triples_for_subject(&Term::Iri(p.clone())).is_empty(),
                "property {p} missing from ontology"
            );
        }
    }

    #[test]
    fn instance_uris_follow_paper_examples() {
        let m = mapping();
        let author6 = Iri::parse("http://example.org/db/author6").unwrap();
        let (t, vals) = m.identify(&author6).unwrap();
        assert_eq!(t.table_name, "author");
        assert_eq!(vals, vec![("id".into(), "6".into())]);
        let pub12 = Iri::parse("http://example.org/db/pub12").unwrap();
        assert_eq!(m.identify(&pub12).unwrap().0.table_name, "publication");
        // "publisher3" must not be swallowed by the "pub%%id%%" pattern.
        let publisher3 = Iri::parse("http://example.org/db/publisher3").unwrap();
        assert_eq!(m.identify(&publisher3).unwrap().0.table_name, "publisher");
        let pubtype4 = Iri::parse("http://example.org/db/pubtype4").unwrap();
        assert_eq!(m.identify(&pubtype4).unwrap().0.table_name, "pubtype");
    }
}
