//! Algorithm 2 (paper §5.2): translating `MODIFY` to SQL DML.
//!
//! `MODIFY` has no direct SQL counterpart, so the paper translates it in
//! stages: (1) split into DELETE/INSERT templates and the WHERE clause;
//! (2) turn the WHERE clause into a SPARQL SELECT; (3) translate that
//! SELECT to SQL ([`crate::query`]) and run it on the relational data;
//! (4) per result binding, instantiate one `DELETE DATA` and one
//! `INSERT DATA`; (5) translate and execute those via Algorithm 1.
//!
//! The §5.2 optimization is applied: when a deletion has a matching
//! insertion (same subject and predicate, object differs), the delete is
//! redundant — the insert translates to an `UPDATE` overwriting the
//! value directly.

use crate::error::{OntoError, OntoResult};
use crate::translate::delete::{translate_delete_data, translate_delete_data_per_row};
use crate::translate::insert::{translate_insert_data, translate_insert_data_per_row};
use crate::translate::{execute_sorted, execute_sorted_reference, TranslateOptions, WriteScope};
use r3m::Mapping;
use rdf::{Iri, Term, Triple};
use rel::sql::Statement;
use rel::Database;
use sparql::{
    instantiate_all, GroupPattern, Projection, SelectQuery, Solutions, TriplePattern, UpdateOp,
};
use std::collections::BTreeSet;

/// Everything Algorithm 2 produced while processing one `MODIFY`: the
/// intermediate artifacts the paper shows (the SELECT, the per-binding
/// DATA operations of Listing 12) plus the executed SQL with its
/// group-level accounting.
#[derive(Debug, Clone, Default)]
pub struct ModifyReport {
    /// SQL text of the translated SELECT (step 3).
    pub select_sql: String,
    /// Number of bindings the SELECT returned (step 4 iterates these).
    pub bindings: usize,
    /// Instantiated `DELETE DATA` triples after the redundancy
    /// optimization (across all bindings).
    pub delete_data: Vec<Triple>,
    /// Instantiated `INSERT DATA` triples (across all bindings).
    pub insert_data: Vec<Triple>,
    /// Deletions dropped by the §5.2 optimization.
    pub optimized_away: Vec<Triple>,
    /// SQL statements executed, in order — on the batched path one per
    /// table-level group, not per binding.
    pub executed: Vec<Statement>,
    /// Total rows the executed statements inserted/updated/deleted
    /// (the per-binding fan-out the groups absorbed).
    pub rows_affected: usize,
}

/// Execute a `MODIFY` against the database through the set-based write
/// pipeline (grouped statements). The whole MODIFY is atomic on the
/// live database: both DATA rounds run inside one [`WriteScope`] (a
/// transaction, or a savepoint when the caller already holds one), so a
/// failure in the insert round also undoes the delete round — at O(rows
/// touched) rollback cost, never by cloning the database.
pub fn execute_modify(
    db: &mut Database,
    mapping: &Mapping,
    delete: &[TriplePattern],
    insert: &[TriplePattern],
    pattern: &GroupPattern,
) -> OntoResult<ModifyReport> {
    execute_modify_impl(db, mapping, delete, insert, pattern, true)
}

/// Reference variant of [`execute_modify`]: identical Algorithm 2, but
/// steps 5-6 emit and execute one statement per row through the seed's
/// per-statement sort — the baseline of the batched-vs-per-row
/// differential tests and the `bulk_update` benchmark.
pub fn execute_modify_reference(
    db: &mut Database,
    mapping: &Mapping,
    delete: &[TriplePattern],
    insert: &[TriplePattern],
    pattern: &GroupPattern,
) -> OntoResult<ModifyReport> {
    execute_modify_impl(db, mapping, delete, insert, pattern, false)
}

fn execute_modify_impl(
    db: &mut Database,
    mapping: &Mapping,
    delete: &[TriplePattern],
    insert: &[TriplePattern],
    pattern: &GroupPattern,
    batched: bool,
) -> OntoResult<ModifyReport> {
    let mut report = ModifyReport::default();

    // Steps 1-3: WHERE → SELECT → SQL → bindings. Index provisioning is
    // a compile-time concern now that `run_compiled` is read-only; this
    // path holds `&mut Database` anyway, so it provisions eagerly.
    let select = select_from_where(pattern);
    let compiled = crate::query::compile_select(db, mapping, &select)?;
    crate::query::ensure_join_indexes(db, &compiled)?;
    report.select_sql = compiled.sql.to_string();
    let solutions: Solutions = crate::query::run_compiled(db, &compiled)?;
    report.bindings = solutions.len();

    // Step 4: instantiate the templates per binding.
    let deletions = instantiate_all(delete, &solutions.bindings, pattern)
        .map_err(|e| OntoError::Unsupported { message: e.message })?;
    let insertions = instantiate_all(insert, &solutions.bindings, pattern)
        .map_err(|e| OntoError::Unsupported { message: e.message })?;

    // §5.2 optimization: drop deletions whose (subject, predicate) also
    // appears among the insertions — with a different object (the
    // insert overwrites the value directly) or the same one (the delete
    // is undone by the reassertion). One (subject, predicate) lookup
    // per deletion instead of a scan over all insertions.
    let inserted_sp: BTreeSet<(&Term, &Iri)> = insertions
        .iter()
        .map(|i| (&i.subject, &i.predicate))
        .collect();
    let mut kept_deletions = Vec::new();
    for d in deletions {
        let redundant = inserted_sp.contains(&(&d.subject, &d.predicate));
        if redundant {
            report.optimized_away.push(d);
        } else {
            kept_deletions.push(d);
        }
    }
    drop(inserted_sp);
    report.delete_data = kept_deletions.clone();
    report.insert_data = insertions.clone();

    // Step 5: translate + execute via Algorithm 1. Deletions first, then
    // insertions (member submission semantics); inserts may overwrite
    // attributes whose delete was optimized away. One scope spans both
    // rounds, making the whole MODIFY all-or-nothing on the live
    // database (each round still opens its own nested scope inside
    // `execute_sorted`).
    let scope = WriteScope::open(db)?;
    match modify_rounds(db, mapping, &kept_deletions, &insertions, batched) {
        Ok((executed, rows_affected)) => {
            report.executed = executed;
            report.rows_affected = rows_affected;
            scope.commit(db)?;
            Ok(report)
        }
        Err(e) => {
            scope.rollback(db)?;
            Err(e)
        }
    }
}

// The two DATA rounds of step 5, returning (statements, rows affected).
fn modify_rounds(
    db: &mut Database,
    mapping: &Mapping,
    deletions: &[Triple],
    insertions: &[Triple],
    batched: bool,
) -> OntoResult<(Vec<Statement>, usize)> {
    let mut executed = Vec::new();
    let mut rows_affected = 0;
    if !deletions.is_empty() {
        let stmts = if batched {
            translate_delete_data(db, mapping, deletions)?
        } else {
            translate_delete_data_per_row(db, mapping, deletions)?
        };
        let report = if batched {
            execute_sorted(db, stmts)?
        } else {
            execute_sorted_reference(db, stmts)?
        };
        executed.extend(report.statements);
        rows_affected += report.rows_affected;
    }
    if !insertions.is_empty() {
        let options = TranslateOptions {
            allow_overwrite: true,
        };
        let stmts = if batched {
            translate_insert_data(db, mapping, insertions, options)?
        } else {
            translate_insert_data_per_row(db, mapping, insertions, options)?
        };
        let report = if batched {
            execute_sorted(db, stmts)?
        } else {
            execute_sorted_reference(db, stmts)?
        };
        executed.extend(report.statements);
        rows_affected += report.rows_affected;
    }
    Ok((executed, rows_affected))
}

/// Step 2 — build the SELECT query from the WHERE clause ("used to
/// create a SPARQL SELECT query that retrieves the data needed for the
/// DELETE and INSERT templates").
pub fn select_from_where(pattern: &GroupPattern) -> SelectQuery {
    SelectQuery {
        distinct: true,
        projection: Projection::Star,
        pattern: pattern.clone(),
        limit: None,
    }
}

/// Convenience: run any update operation through the right algorithm
/// (set-based pipeline).
pub fn execute_update_op(
    db: &mut Database,
    mapping: &Mapping,
    op: &UpdateOp,
) -> OntoResult<crate::translate::ExecutionReport> {
    match op {
        UpdateOp::InsertData { triples } => {
            let stmts = translate_insert_data(db, mapping, triples, TranslateOptions::default())?;
            execute_sorted(db, stmts)
        }
        UpdateOp::DeleteData { triples } => {
            let stmts = translate_delete_data(db, mapping, triples)?;
            execute_sorted(db, stmts)
        }
        UpdateOp::Modify {
            delete,
            insert,
            pattern,
        } => {
            let report = execute_modify(db, mapping, delete, insert, pattern)?;
            Ok(crate::translate::ExecutionReport {
                statements: report.executed,
                rows_affected: report.rows_affected,
            })
        }
    }
}

/// Reference counterpart of [`execute_update_op`]: the per-row emission
/// through the seed's statement-pair sort, end to end.
pub fn execute_update_op_reference(
    db: &mut Database,
    mapping: &Mapping,
    op: &UpdateOp,
) -> OntoResult<crate::translate::ExecutionReport> {
    match op {
        UpdateOp::InsertData { triples } => {
            let stmts =
                translate_insert_data_per_row(db, mapping, triples, TranslateOptions::default())?;
            execute_sorted_reference(db, stmts)
        }
        UpdateOp::DeleteData { triples } => {
            let stmts = translate_delete_data_per_row(db, mapping, triples)?;
            execute_sorted_reference(db, stmts)
        }
        UpdateOp::Modify {
            delete,
            insert,
            pattern,
        } => {
            let report = execute_modify_reference(db, mapping, delete, insert, pattern)?;
            Ok(crate::translate::ExecutionReport {
                statements: report.executed,
                rows_affected: report.rows_affected,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fixture_db_with_rows, parse_update, render};
    use rdf::Term;
    use rel::Value;

    fn run(db: &mut Database, mapping: &Mapping, text: &str) -> ModifyReport {
        let op = parse_update(text);
        let UpdateOp::Modify {
            delete,
            insert,
            pattern,
        } = op
        else {
            panic!("expected MODIFY")
        };
        execute_modify(db, mapping, &delete, &insert, &pattern).unwrap()
    }

    fn email_of(db: &Database, id: i64) -> Value {
        let rid = db.find_by_pk("author", &[Value::Int(id)]).unwrap().unwrap();
        let table = db.schema().table("author").unwrap();
        db.row("author", rid).unwrap().unwrap()[table.column_index("email").unwrap()]
    }

    #[test]
    fn listing_11_replaces_email() {
        let (mut db, mapping) = fixture_db_with_rows();
        let report = run(
            &mut db,
            &mapping,
            "MODIFY
             DELETE { ?x foaf:mbox ?mbox . }
             INSERT { ?x foaf:mbox <mailto:hert@example.com> . }
             WHERE {
               ?x rdf:type foaf:Person ;
                  foaf:firstName \"Matthias\" ;
                  foaf:family_name \"Hert\" ;
                  foaf:mbox ?mbox .
             }",
        );
        assert_eq!(report.bindings, 1);
        // The optimization removed the redundant delete (§5.2).
        assert_eq!(report.optimized_away.len(), 1);
        assert!(report.delete_data.is_empty());
        assert_eq!(report.insert_data.len(), 1);
        assert_eq!(
            render(&report.executed),
            vec!["UPDATE author SET email = 'hert@example.com' WHERE id = 6;"]
        );
        assert_eq!(email_of(&db, 6), Value::text("hert@example.com"));
    }

    #[test]
    fn generated_data_ops_match_listing_12_shape() {
        // Without the optimization the intermediate operations are the
        // paper's Listing 12; verify them via the report before the
        // optimization filters (insert side + optimized delete).
        let (mut db, mapping) = fixture_db_with_rows();
        let report = run(
            &mut db,
            &mapping,
            "MODIFY
             DELETE { ?x foaf:mbox ?mbox . }
             INSERT { ?x foaf:mbox <mailto:hert@example.com> . }
             WHERE { ?x foaf:firstName \"Matthias\" ; foaf:mbox ?mbox . }",
        );
        let author6 = Term::iri("http://example.org/db/author6");
        assert_eq!(
            report.optimized_away,
            vec![rdf::Triple::new(
                author6.clone(),
                rdf::namespace::foaf::mbox(),
                Term::iri("mailto:hert@ifi.uzh.ch"),
            )]
        );
        assert_eq!(
            report.insert_data,
            vec![rdf::Triple::new(
                author6,
                rdf::namespace::foaf::mbox(),
                Term::iri("mailto:hert@example.com"),
            )]
        );
    }

    #[test]
    fn modify_with_no_bindings_is_a_noop() {
        let (mut db, mapping) = fixture_db_with_rows();
        let before = db.clone();
        let report = run(
            &mut db,
            &mapping,
            "MODIFY DELETE { ?x foaf:mbox ?m . } INSERT { } \
             WHERE { ?x foaf:family_name \"Nobody\" ; foaf:mbox ?m . }",
        );
        assert_eq!(report.bindings, 0);
        assert!(report.executed.is_empty());
        assert_eq!(
            crate::materialize::materialize(&db, &mapping).unwrap(),
            crate::materialize::materialize(&before, &mapping).unwrap()
        );
    }

    #[test]
    fn pure_delete_modify() {
        let (mut db, mapping) = fixture_db_with_rows();
        let report = run(
            &mut db,
            &mapping,
            "MODIFY DELETE { ?x foaf:mbox ?m . } INSERT { } \
             WHERE { ?x foaf:family_name \"Hert\" ; foaf:mbox ?m . }",
        );
        assert_eq!(report.bindings, 1);
        assert_eq!(
            render(&report.executed),
            vec!["UPDATE author SET email = NULL WHERE id = 6 AND email = 'hert@ifi.uzh.ch';"]
        );
        assert_eq!(email_of(&db, 6), Value::Null);
    }

    #[test]
    fn pure_insert_modify() {
        let (mut db, mapping) = fixture_db_with_rows();
        // Give every person without a title the title 'Dr'.
        let report = run(
            &mut db,
            &mapping,
            "INSERT { ?x foaf:title \"Dr\" . } \
             WHERE { ?x foaf:family_name \"Reif\" . }",
        );
        assert_eq!(report.bindings, 1);
        assert_eq!(
            render(&report.executed),
            vec!["UPDATE author SET title = 'Dr' WHERE id = 7;"]
        );
    }

    #[test]
    fn multi_binding_modify_updates_every_match() {
        let (mut db, mapping) = fixture_db_with_rows();
        let report = run(
            &mut db,
            &mapping,
            "MODIFY DELETE { ?x ont:team ?t . } INSERT { } \
             WHERE { ?x ont:team ?t . }",
        );
        assert_eq!(report.bindings, 2);
        // Both bindings share one shape → one grouped statement that
        // touches two rows.
        assert_eq!(report.executed.len(), 1);
        assert_eq!(report.rows_affected, 2);
        assert_eq!(
            render(&report.executed),
            vec![
                "UPDATE author BY (id, team) SET (team) \
             VALUES (6, 5, NULL), (7, 5, NULL);"
            ]
        );
        for id in [6, 7] {
            let rid = db.find_by_pk("author", &[Value::Int(id)]).unwrap().unwrap();
            let table = db.schema().table("author").unwrap();
            assert_eq!(
                db.row("author", rid).unwrap().unwrap()[table.column_index("team").unwrap()],
                Value::Null
            );
        }
    }

    #[test]
    fn select_sql_is_reported() {
        let (mut db, mapping) = fixture_db_with_rows();
        let report = run(
            &mut db,
            &mapping,
            "MODIFY DELETE { ?x foaf:mbox ?m . } INSERT { } \
             WHERE { ?x foaf:mbox ?m . }",
        );
        assert!(report.select_sql.starts_with("SELECT DISTINCT"));
        assert!(report.select_sql.contains("FROM author"));
    }

    #[test]
    fn failing_insert_leaves_database_unchanged() {
        let (mut db, mapping) = fixture_db_with_rows();
        let before = db.clone();
        let op = parse_update(
            // The inserted team does not exist → DanglingObject.
            "MODIFY DELETE { } INSERT { ?x ont:team ex:team99 . } \
             WHERE { ?x foaf:family_name \"Reif\" . }",
        );
        let UpdateOp::Modify {
            delete,
            insert,
            pattern,
        } = op
        else {
            panic!()
        };
        let err = execute_modify(&mut db, &mapping, &delete, &insert, &pattern).unwrap_err();
        assert!(matches!(err, OntoError::DanglingObject { .. }));
        assert_eq!(
            crate::materialize::materialize(&db, &mapping).unwrap(),
            crate::materialize::materialize(&before, &mapping).unwrap()
        );
    }

    #[test]
    fn modify_replacing_fk_object() {
        let (mut db, mapping) = fixture_db_with_rows();
        // Move Hert from team5 to team4.
        let report = run(
            &mut db,
            &mapping,
            "MODIFY DELETE { ?x ont:team ?t . } INSERT { ?x ont:team ex:team4 . } \
             WHERE { ?x foaf:family_name \"Hert\" ; ont:team ?t . }",
        );
        assert_eq!(
            render(&report.executed),
            vec!["UPDATE author SET team = 4 WHERE id = 6;"]
        );
    }
}
