//! The concurrent mediator core (paper §6, grown up).
//!
//! The paper's prototype is an HTTP endpoint — inherently concurrent.
//! This module is the shareable core such a transport needs: a
//! [`Mediator`] is an `Arc`-shared handle over one database + mapping,
//! handing out
//!
//! * [`ReadSession`]s — cheap (`Arc` clone), `Send + Sync`, answering
//!   `SELECT`/`ASK`/`DESCRIBE`/materialization through `&self`; any
//!   number run in parallel, and each query sees a consistent snapshot
//!   (writers are exclusive, so no torn or partial write is ever
//!   observable);
//! * [`WriteTxn`]s — exclusive write transactions over the live
//!   database. Each SPARQL/Update operation inside a transaction runs
//!   as a savepoint scope: a rejected operation is undone at O(rows
//!   touched) cost and the transaction stays usable. Nothing on the
//!   write path clones the database wholesale.
//!
//! **MVCC snapshot reads.** Reads never take the writer's lock.
//! Committed state lives in an immutable *version chain*: every commit
//! that changed anything publishes an [`Arc`]-shared
//! [`DatabaseVersion`] — an O(tables + indexes) persistent-structure
//! clone of the live database (see [`rel::pmap`]), tagged with the
//! commit's WAL sequence number. A query pins the newest version with
//! one `Arc` clone and runs entirely against that snapshot: a long
//! SELECT no longer blocks commits, a bulk commit no longer stalls
//! every reader, and each query still sees one consistent committed
//! state. A bounded window of recent versions is retained, which gives
//! time-travel reads ([`Mediator::read_at`]) for free.
//!
//! Who locks what: the schema and mapping are immutable after
//! construction (validated once); the *live* database — touched only
//! by writers — sits behind a [`Mutex`]; the version chain sits behind
//! an [`RwLock`] held only for the instants of pinning (an `Arc`
//! clone) and publishing (a deque push); the compiled-query cache sits
//! behind its own [`Mutex`] so cache bookkeeping never blocks on data
//! access. Lock order is live → chain; no code path takes them in the
//! other order. Compilation depends only on the schema and mapping, so
//! cached entries never go stale as data changes. Join-index
//! provisioning — the one mutation the old read path performed —
//! happens at cache-admission time against the live database, and is
//! republished as an index-only replacement of the current version
//! (same sequence number, same rows): published snapshots are never
//! mutated in place, and a plan executed against an older pinned
//! version simply falls back to hash joins.

use crate::error::{OntoError, OntoResult};
use crate::feedback::Feedback;
use crate::modify::ModifyReport;
use crate::query::CompiledQuery;
use crate::translate::{execute_sorted_timed, TranslateOptions};
use r3m::Mapping;
use rdf::namespace::PrefixMap;
use rdf::Graph;
use rel::sql::Statement;
use rel::Database;
use sparql::{Query, Solutions, UpdateOp};
use std::collections::{HashMap, VecDeque};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

// Process-global query/transaction metrics. The obs registry is
// process-wide (like the string dictionary), so these aggregate over
// every mediator in the process; the per-instance `*_stats()` structs
// remain the per-database view.
struct CoreMetrics {
    parse: &'static obs::Histogram,
    plan: &'static obs::Histogram,
    execute: &'static obs::Histogram,
    commit: &'static obs::Histogram,
    cache_hits: &'static obs::Counter,
    cache_misses: &'static obs::Counter,
    cache_evictions: &'static obs::Counter,
}

fn metrics() -> &'static CoreMetrics {
    static METRICS: std::sync::OnceLock<CoreMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = obs::registry();
        CoreMetrics {
            parse: registry.latency_histogram(
                "ontoaccess_query_parse_seconds",
                "Wall time parsing SPARQL query text (cache misses only)",
            ),
            plan: registry.latency_histogram(
                "ontoaccess_query_plan_seconds",
                "Wall time compiling a parsed query to SQL and provisioning join indexes",
            ),
            execute: registry.latency_histogram(
                "ontoaccess_query_execute_seconds",
                "Wall time executing a compiled query against a pinned snapshot",
            ),
            commit: registry.latency_histogram(
                "ontoaccess_txn_commit_seconds",
                "Wall time of WriteTxn::commit (WAL append + publish + group fsync)",
            ),
            cache_hits: registry.counter(
                "ontoaccess_query_cache_hits_total",
                "Compiled-query cache lookups that found a cached compilation",
            ),
            cache_misses: registry.counter(
                "ontoaccess_query_cache_misses_total",
                "Compiled-query cache lookups that had to compile",
            ),
            cache_evictions: registry.counter(
                "ontoaccess_query_cache_evictions_total",
                "Compiled-query cache entries evicted under capacity pressure",
            ),
        }
    })
}

/// Result of a successful update.
#[derive(Debug, Clone)]
pub struct UpdateOutcome {
    /// Operation kind (`INSERT DATA`, `DELETE DATA`, `MODIFY`).
    pub operation: String,
    /// SQL statements executed, in execution order — one per
    /// table-level group on the set-based write path.
    pub statements: Vec<Statement>,
    /// Number of statement groups executed (0 = request was a no-op).
    pub statements_executed: usize,
    /// Total rows inserted/updated/deleted across all groups.
    pub rows_affected: usize,
    /// MODIFY-specific artifacts (Algorithm 2's intermediate steps).
    pub modify: Option<ModifyReport>,
}

/// Failure of a multi-operation update request.
#[derive(Debug, Clone)]
pub struct ScriptError {
    /// Zero-based index of the failing operation.
    pub operation_index: usize,
    /// Outcomes of the operations that completed before the failure
    /// (already rolled back when the script ran atomically).
    pub completed: Vec<UpdateOutcome>,
    /// The failing operation's error.
    pub error: OntoError,
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "operation {} of the update request failed: {}",
            self.operation_index + 1,
            self.error
        )
    }
}

impl std::error::Error for ScriptError {}

// ----------------------------------------------------------------------
// Compiled-query cache
// ----------------------------------------------------------------------

// A parse+compile result cached per query text.
#[derive(Debug)]
enum CachedQuery {
    Select(CompiledQuery),
    Ask(CompiledQuery),
}

impl CachedQuery {
    fn compiled(&self) -> &CompiledQuery {
        match self {
            CachedQuery::Select(c) | CachedQuery::Ask(c) => c,
        }
    }
}

// One cache slot: the shared compilation plus its second-chance bit.
#[derive(Debug)]
struct CacheSlot {
    compiled: Arc<CachedQuery>,
    referenced: bool,
}

// Default number of cached texts (repeated endpoint workloads use a
// handful of query shapes; the bound only guards degenerate clients).
const QUERY_CACHE_CAPACITY: usize = 256;

// Compiled-query cache with clock (second-chance) eviction: a hit sets
// the slot's referenced bit — O(1), no timestamps, no ordered scan. On
// a miss at capacity the clock hand sweeps the ring: referenced slots
// get their bit cleared and a second chance, the first unreferenced
// slot is evicted — O(1) amortized (each sweep step clears a bit some
// hit set), against the old O(capacity) min-scan per eviction. Hot
// entries keep their bits set and survive capacity pressure from
// one-off queries, which never get referenced and evict first.
#[derive(Debug)]
struct QueryCache {
    entries: HashMap<String, CacheSlot>,
    // Clock ring: every cached text exactly once, insertion order.
    ring: VecDeque<String>,
    capacity: usize,
    // Monotonic observability counters (surfaced by a transport's
    // status endpoint via [`Mediator::query_cache_stats`]).
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl QueryCache {
    fn new() -> Self {
        QueryCache {
            entries: HashMap::new(),
            ring: VecDeque::new(),
            capacity: QUERY_CACHE_CAPACITY,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn get(&mut self, text: &str) -> Option<Arc<CachedQuery>> {
        let Some(slot) = self.entries.get_mut(text) else {
            self.misses += 1;
            metrics().cache_misses.inc();
            return None;
        };
        self.hits += 1;
        metrics().cache_hits.inc();
        slot.referenced = true;
        Some(Arc::clone(&slot.compiled))
    }

    fn admit(&mut self, text: &str, compiled: Arc<CachedQuery>) {
        if let Some(slot) = self.entries.get_mut(text) {
            // Two threads compiled the same text concurrently; keep one.
            slot.compiled = compiled;
            slot.referenced = true;
            return;
        }
        // The loop (not a single eviction) lets a lowered capacity
        // converge from a larger high-water size.
        while self.entries.len() >= self.capacity {
            self.evict_one();
        }
        self.entries.insert(
            text.to_owned(),
            CacheSlot {
                compiled,
                referenced: false,
            },
        );
        self.ring.push_back(text.to_owned());
    }

    fn evict_one(&mut self) {
        while let Some(text) = self.ring.pop_front() {
            let Some(slot) = self.entries.get_mut(&text) else {
                continue;
            };
            if slot.referenced {
                slot.referenced = false;
                self.ring.push_back(text);
            } else {
                self.entries.remove(&text);
                self.evictions += 1;
                metrics().cache_evictions.inc();
                return;
            }
        }
    }

    fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
    }

    fn stats(&self) -> QueryCacheStats {
        QueryCacheStats {
            entries: self.entries.len(),
            capacity: self.capacity,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }
}

/// Point-in-time view of the compiled-query cache, for observability
/// (e.g. a server's status endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryCacheStats {
    /// Cached query texts right now.
    pub entries: usize,
    /// Configured capacity.
    pub capacity: usize,
    /// Lookups that found a cached compilation.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries the clock hand evicted under capacity pressure.
    pub evictions: u64,
}

/// Point-in-time view of the mediator's concurrency machinery, for
/// observability (the server's `/status` endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcurrencyStats {
    /// Sequence number of the current published version (the WAL commit
    /// unit it corresponds to, on a durable mediator).
    pub current_version: u64,
    /// Versions currently retained in the chain (time-travel window).
    pub versions_retained: usize,
    /// [`ReadSession`]s currently alive.
    pub read_sessions_live: usize,
    /// Write transactions begun (each acquires the write lock once).
    pub write_lock_waits: u64,
    /// Total microseconds writers spent waiting to acquire the write
    /// lock.
    pub write_lock_wait_micros: u64,
}

/// One join in a profiled query's chosen plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinPlan {
    /// Table of the indexed (probe) side.
    pub table: String,
    /// Join column on that table.
    pub column: String,
    /// `"index_probe"` when the pinned snapshot carries the join
    /// index, `"hash_join"` when the executor falls back to building a
    /// hash table (e.g. a snapshot pinned before provisioning).
    pub strategy: &'static str,
}

/// Per-stage wall times and plan summary of one profiled query — what
/// the server's `?profile=1` returns in its `X-Profile` trailer.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// Whether the compilation came from the query cache (parse and
    /// plan times are 0 on a hit).
    pub cache_hit: bool,
    /// Wall time parsing the query text, in microseconds.
    pub parse_micros: u64,
    /// Wall time compiling to SQL and provisioning join indexes, in
    /// microseconds.
    pub plan_micros: u64,
    /// Wall time executing the compiled plan, in microseconds.
    pub execute_micros: u64,
    /// Commit sequence of the snapshot the query answered from.
    pub version_seq: u64,
    /// Result rows (for ASK: 1 when true, 0 when false).
    pub rows: usize,
    /// Join strategy per join-index target of the plan.
    pub joins: Vec<JoinPlan>,
    /// Equi-join key pairs in the compiled SQL.
    pub join_keys: usize,
    /// Residual WHERE conjuncts beyond the join keys — the filters the
    /// executor evaluates per candidate row.
    pub residual_conjuncts: usize,
}

// Wall time of the parse and plan stages of one compilation (zero on
// the cache-hit path, which skips both).
#[derive(Debug, Clone, Copy, Default)]
struct StageTimings {
    parse: Duration,
    plan: Duration,
}

/// Per-stage wall times of one profiled update script — what the
/// server's `?profile=1` on `POST /update` returns in its `X-Profile`
/// header, the write-side twin of [`QueryProfile`].
#[derive(Debug, Clone, Copy, Default)]
pub struct UpdateProfile {
    /// Wall time parsing the update script, in microseconds.
    pub parse_micros: u64,
    /// Wall time translating triples to SQL statements (Algorithms
    /// 1/2; a MODIFY's translation is folded into execute, see
    /// [`Mediator::execute_script_profiled`]), in microseconds.
    pub translate_micros: u64,
    /// Wall time dependency-sorting translated statements, in
    /// microseconds.
    pub sort_micros: u64,
    /// Wall time executing statements against the live database, in
    /// microseconds.
    pub execute_micros: u64,
    /// Wall time encoding and writing the commit unit to the WAL, in
    /// microseconds (0 on an in-memory mediator).
    pub wal_append_micros: u64,
    /// Wall time blocked on the covering group fsync, in microseconds
    /// (0 on an in-memory mediator).
    pub fsync_micros: u64,
    /// Operations the script executed.
    pub operations: usize,
}

/// Durability timings of one committed write transaction — what
/// [`WriteTxn::commit_profiled`] returns (both zero on an in-memory
/// mediator or when the transaction changed nothing).
#[derive(Debug, Clone, Copy, Default)]
pub struct CommitProfile {
    /// Wall time appending the commit unit to the WAL, in microseconds.
    pub wal_append_micros: u64,
    /// Wall time blocked on the covering group fsync, in microseconds.
    pub fsync_micros: u64,
}

// Per-stage wall times accumulated across a script's operations (the
// update-profiling path threads one accumulator through every op).
#[derive(Debug, Clone, Copy, Default)]
struct UpdateStageAcc {
    translate: Duration,
    sort: Duration,
    execute: Duration,
}

/// The chosen plan of a query described *without executing it* — the
/// server's `?explain=1` body. Shares [`JoinPlan`] (and the same
/// strategy/conjunct computations) with [`QueryProfile`], so EXPLAIN
/// output is guaranteed to match what a profiled execution of the same
/// query against the same snapshot reports.
#[derive(Debug, Clone)]
pub struct QueryExplain {
    /// Whether the compilation came from the query cache.
    pub cache_hit: bool,
    /// Query form: `"select"` or `"ask"`.
    pub form: &'static str,
    /// Commit sequence of the snapshot the plan was resolved against.
    pub version_seq: u64,
    /// Join strategy per join-index target of the plan, in join order.
    pub joins: Vec<JoinPlan>,
    /// Equi-join key pairs in the compiled SQL.
    pub join_keys: usize,
    /// Total AND-leaf conjuncts of the WHERE clause.
    pub conjuncts: usize,
    /// Residual conjuncts beyond the join keys — evaluated per
    /// candidate row at execution time.
    pub residual_conjuncts: usize,
}

// The per-target strategy summary shared by `?profile=1`, `?explain=1`,
// and the per-join trace spans: one computation, so every surface
// reports the identical plan for the same snapshot + cache state.
fn join_plans(db: &Database, plan: &crate::query::CompiledQuery) -> Vec<JoinPlan> {
    plan.join_index_targets
        .iter()
        .map(|(table, column)| JoinPlan {
            table: table.clone(),
            column: column.clone(),
            strategy: if db.supports_index_probe(table, column).unwrap_or(false) {
                "index_probe"
            } else {
                "hash_join"
            },
        })
        .collect()
}

// One trace span per join step of the plan, carrying the index-vs-hash
// choice and the probe-side row count. Gated on an active trace: the
// strategy probe is not free and must cost nothing untraced.
fn trace_join_spans(db: &Database, plan: &crate::query::CompiledQuery) {
    if !obs::trace::is_active() {
        return;
    }
    for join in join_plans(db, plan) {
        let span = obs::trace::span("query.join");
        span.attr_str("table", &join.table);
        span.attr_str("column", &join.column);
        span.attr_str("strategy", join.strategy);
        if let Ok(rows) = db.row_count(&join.table) {
            span.attr_u64("rows", rows as u64);
        }
    }
}

// AND-leaf conjuncts of a WHERE tree: `a AND (b AND c)` counts 3.
fn count_and_leaves(expr: &rel::sql::Expr) -> usize {
    match expr {
        rel::sql::Expr::Binary {
            op: rel::sql::BinOp::And,
            left,
            right,
        } => count_and_leaves(left) + count_and_leaves(right),
        _ => 1,
    }
}

// ----------------------------------------------------------------------
// Shared core
// ----------------------------------------------------------------------

/// One published committed state of the database: the immutable
/// snapshot a read pins, tagged with the commit sequence that produced
/// it (the WAL commit unit on a durable mediator).
#[derive(Debug)]
pub struct DatabaseVersion {
    seq: u64,
    db: Database,
}

impl DatabaseVersion {
    /// The commit sequence this version corresponds to.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

// How many published versions the chain retains (beyond any still
// pinned by live guards, which keep their version alive through their
// `Arc` regardless). Bounds both time-travel depth and the memory the
// chain itself can hold onto.
const RETAINED_VERSIONS: usize = 32;

// The chain of retained versions, oldest → newest; the back is the
// current version. Never empty: construction publishes the initial
// state. Sequence numbers are strictly increasing along the deque.
#[derive(Debug)]
struct VersionChain {
    versions: VecDeque<Arc<DatabaseVersion>>,
}

#[derive(Debug)]
struct MediatorCore {
    // The live database, touched only by writers (WriteTxn, checkpoint,
    // admission-time index provisioning, the test write guard). Readers
    // never lock it.
    live: Mutex<Database>,
    // Published snapshots; read-locked for the instant of an Arc clone,
    // write-locked for the instant of a publish. Lock order: live →
    // chain (never the reverse).
    chain: RwLock<VersionChain>,
    mapping: Mapping,
    prefixes: PrefixMap,
    cache: Mutex<QueryCache>,
    // When present, every committed WriteTxn is appended to the
    // write-ahead log and fsynced (group commit) before the commit
    // call returns; `None` keeps the mediator purely in-memory.
    durability: Option<dur::Durability>,
    // `Some(leader)` marks this mediator as a read replica: local
    // writes are refused (the one-durable-writer topology) and
    // committed state arrives exclusively through
    // [`Mediator::apply_replicated`].
    replica_of: Option<String>,
    // Live ReadSession counter: every session clones this token, so
    // strong_count - 1 = sessions alive (drop-glue observability).
    session_token: Arc<()>,
    // Writer-contention counters (surfaced by `/status`).
    write_lock_waits: AtomicU64,
    write_lock_wait_micros: AtomicU64,
}

/// Pinned read access to one published database version.
///
/// Owns an `Arc` to its version — not a lock guard: holding one never
/// blocks writers, and every read through it (`Deref` to [`Database`],
/// or the query methods) sees the same committed snapshot. Obtained
/// from [`Mediator::database`] / [`ReadSession::database`], which pin
/// the newest version at call time, or from a time-travel session.
/// Dropping the guard releases the version; a version past the
/// retention window is freed as soon as its last guard drops.
// No `Clone` derive: `guard.clone()` must keep deref-cloning the
// `Database` (call sites snapshot the heap that way); re-pinning is
// cheap anyway.
#[derive(Debug)]
pub struct DatabaseReadGuard {
    core: Arc<MediatorCore>,
    version: Arc<DatabaseVersion>,
}

impl Deref for DatabaseReadGuard {
    type Target = Database;
    fn deref(&self) -> &Database {
        &self.version.db
    }
}

impl DatabaseReadGuard {
    /// Commit sequence of the pinned version.
    pub fn version_seq(&self) -> u64 {
        self.version.seq
    }

    /// Execute a SPARQL query against this pinned snapshot.
    pub fn execute_query(&self, text: &str) -> OntoResult<sparql::QueryOutcome> {
        self.core.execute_query_at(&self.version, text)
    }

    /// Execute a SPARQL query against this pinned snapshot, returning
    /// the per-stage wall times and plan summary alongside the outcome
    /// (the server's `?profile=1` path).
    pub fn execute_query_profiled(
        &self,
        text: &str,
    ) -> OntoResult<(sparql::QueryOutcome, QueryProfile)> {
        self.core.execute_query_profiled_at(&self.version, text)
    }

    /// Describe the plan a query would run with against this pinned
    /// snapshot — same compilation and cache as execution, but the plan
    /// is never run (the server's `?explain=1` path).
    pub fn explain_query(&self, text: &str) -> OntoResult<QueryExplain> {
        self.core.explain_query_at(&self.version, text)
    }

    /// Execute a SELECT against this pinned snapshot.
    pub fn select(&self, text: &str) -> OntoResult<Solutions> {
        self.core.select_at(&self.version, text)
    }

    /// Materialize the pinned snapshot's full RDF view.
    pub fn materialize(&self) -> OntoResult<Graph> {
        crate::materialize::materialize(&self.version.db, &self.core.mapping)
    }

    /// Describe one instance URI within this pinned snapshot.
    pub fn describe(&self, uri: &rdf::Iri) -> OntoResult<Graph> {
        describe_in(&self.version.db, &self.core.mapping, uri)
    }
}

/// Exclusive write guard over the mediator's live database (test
/// support — see [`Mediator::database_mut_for_tests`]). On drop the
/// (possibly mutated) live state is published as a new version, so
/// later reads observe the raw edits.
#[derive(Debug)]
pub struct DatabaseWriteGuard<'a> {
    core: &'a MediatorCore,
    db: MutexGuard<'a, Database>,
}

impl Deref for DatabaseWriteGuard<'_> {
    type Target = Database;
    fn deref(&self) -> &Database {
        &self.db
    }
}

impl DerefMut for DatabaseWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut Database {
        &mut self.db
    }
}

impl Drop for DatabaseWriteGuard<'_> {
    fn drop(&mut self) {
        // Raw edits bypass the WAL, so this version id does not
        // correspond to a WAL commit unit — acceptable for a
        // doc-hidden test hook, fatal anywhere else.
        self.core.publish_next(self.db.clone());
    }
}

impl MediatorCore {
    // Poisoning is recoverable here by construction: a panicking
    // writer's WriteTxn rolls its transaction back in Drop *before*
    // the guard is released, so the database behind a poisoned lock is
    // always in a consistent committed state — one crashed worker must
    // not brick the mediator for every other session.
    fn lock_live(&self) -> MutexGuard<'_, Database> {
        self.live.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, QueryCache> {
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    // Pin the newest published version: one Arc clone under the chain
    // read lock — the entirety of what a read shares with writers.
    fn current_version(&self) -> Arc<DatabaseVersion> {
        let chain = self.chain.read().unwrap_or_else(|e| e.into_inner());
        Arc::clone(chain.versions.back().expect("chain is never empty"))
    }

    // Publish `db` as the version for commit `seq`, retiring versions
    // beyond the retention window. Callers hold the live lock, so
    // publishes happen in commit order and seqs stay monotone.
    fn publish(&self, db: Database, seq: u64) {
        let mut chain = self.chain.write().unwrap_or_else(|e| e.into_inner());
        debug_assert!(
            chain.versions.back().is_none_or(|v| v.seq < seq),
            "versions publish in commit order"
        );
        chain
            .versions
            .push_back(Arc::new(DatabaseVersion { seq, db }));
        while chain.versions.len() > RETAINED_VERSIONS {
            chain.versions.pop_front();
        }
    }

    // Publish `db` under the next sequence number (in-memory commits
    // and the raw test guard, where no WAL hands out seqs).
    fn publish_next(&self, db: Database) {
        let mut chain = self.chain.write().unwrap_or_else(|e| e.into_inner());
        let seq = chain.versions.back().expect("chain is never empty").seq + 1;
        chain
            .versions
            .push_back(Arc::new(DatabaseVersion { seq, db }));
        while chain.versions.len() > RETAINED_VERSIONS {
            chain.versions.pop_front();
        }
    }

    // Replace the current version with an index-only variant (same
    // rows, same seq): admission-time join-index provisioning must not
    // mutate the published snapshot in place, so it rebuilds against
    // the live database and swaps the result in here.
    fn republish_current(&self, db: Database) {
        let mut chain = self.chain.write().unwrap_or_else(|e| e.into_inner());
        let seq = chain.versions.back().expect("chain is never empty").seq;
        chain.versions.pop_back();
        chain
            .versions
            .push_back(Arc::new(DatabaseVersion { seq, db }));
    }

    // The retained version for time travel: the newest version with
    // `version.seq <= seq` (a commit may leave no version of its own
    // only when it changed nothing).
    fn version_at(&self, seq: u64) -> OntoResult<Arc<DatabaseVersion>> {
        let chain = self.chain.read().unwrap_or_else(|e| e.into_inner());
        let newest = chain.versions.back().expect("chain is never empty").seq;
        if seq > newest {
            return Err(OntoError::Unsupported {
                message: format!("cannot read as of commit {seq}: the current version is {newest}"),
            });
        }
        match chain.versions.iter().rev().find(|v| v.seq <= seq) {
            Some(version) => Ok(Arc::clone(version)),
            None => {
                let oldest = chain.versions.front().expect("chain is never empty").seq;
                Err(OntoError::Unsupported {
                    message: format!(
                        "version {seq} has been retired (retained window: {oldest}..={newest})"
                    ),
                })
            }
        }
    }

    // Compile `text` against `db` (a pinned snapshot) and admit it to
    // the cache. If the plan wants join indexes the snapshot lacks,
    // they are provisioned on the *live* database and republished as an
    // index-only replacement of the current version — never by mutating
    // a published snapshot. The caller's pinned snapshot keeps running
    // without them (the planner falls back to hash joins).
    fn compile_and_admit(
        &self,
        db: &Database,
        text: &str,
    ) -> OntoResult<(Arc<CachedQuery>, StageTimings)> {
        let parse_started = Instant::now();
        let parse_span = obs::trace::span("query.parse");
        let query: Query = sparql::parse_query_with_prefixes(text, self.prefixes.clone())?;
        drop(parse_span);
        let parse = parse_started.elapsed();
        let plan_started = Instant::now();
        let plan_span = obs::trace::span("query.plan");
        let compiled = match &query {
            Query::Select(select) => {
                CachedQuery::Select(crate::query::compile_select(db, &self.mapping, select)?)
            }
            Query::Ask(ask) => CachedQuery::Ask(crate::query::compile_select(
                db,
                &self.mapping,
                &crate::query::ask_to_select(ask),
            )?),
        };
        // Decide against the snapshot whether provisioning has any work
        // to do: most queries have no join targets (or all targets
        // already indexed), and they must not stall behind an open
        // WriteTxn for a no-op pass.
        let needs_indexes = compiled
            .compiled()
            .join_index_targets
            .iter()
            .any(|(table, column)| !db.supports_index_probe(table, column).unwrap_or(false));
        if needs_indexes {
            let mut live = self.lock_live();
            crate::query::ensure_join_indexes(&mut live, compiled.compiled())?;
            self.republish_current(live.clone());
        }
        let plan = plan_started.elapsed();
        drop(plan_span);
        metrics().parse.observe_duration(parse);
        metrics().plan.observe_duration(plan);
        let compiled = Arc::new(compiled);
        let admit_span = obs::trace::span("query.cache_admit");
        self.lock_cache().admit(text, Arc::clone(&compiled));
        drop(admit_span);
        Ok((compiled, StageTimings { parse, plan }))
    }

    fn execute_query_at(
        &self,
        version: &DatabaseVersion,
        text: &str,
    ) -> OntoResult<sparql::QueryOutcome> {
        let cached = self.lock_cache().get(text);
        let compiled = match cached {
            Some(compiled) => compiled,
            None => self.compile_and_admit(&version.db, text)?.0,
        };
        let started = Instant::now();
        let span = obs::trace::span("query.execute");
        trace_join_spans(&version.db, compiled.compiled());
        let outcome = run_cached(&version.db, &compiled)?;
        if span.armed() {
            span.attr_u64("version_seq", version.seq);
            span.attr_u64(
                "rows",
                match &outcome {
                    sparql::QueryOutcome::Solutions(s) => s.len() as u64,
                    sparql::QueryOutcome::Boolean(b) => u64::from(*b),
                },
            );
        }
        drop(span);
        metrics().execute.observe_duration(started.elapsed());
        Ok(outcome)
    }

    // The plan-only sibling of `execute_query_profiled_at`: identical
    // cache lookup and compilation, identical strategy resolution
    // against the pinned snapshot — but the compiled plan is *never
    // run*, so EXPLAIN touches no row data.
    fn explain_query_at(&self, version: &DatabaseVersion, text: &str) -> OntoResult<QueryExplain> {
        let cached = self.lock_cache().get(text);
        let cache_hit = cached.is_some();
        let compiled = match cached {
            Some(compiled) => compiled,
            None => self.compile_and_admit(&version.db, text)?.0,
        };
        let plan = compiled.compiled();
        let conjuncts = plan.sql.where_clause.as_ref().map_or(0, count_and_leaves);
        Ok(QueryExplain {
            cache_hit,
            form: match &*compiled {
                CachedQuery::Select(_) => "select",
                CachedQuery::Ask(_) => "ask",
            },
            version_seq: version.seq,
            joins: join_plans(&version.db, plan),
            join_keys: plan.join_keys.len(),
            conjuncts,
            residual_conjuncts: conjuncts.saturating_sub(plan.join_keys.len()),
        })
    }

    // The profiled twin of `execute_query_at`: same cache, same
    // execution, but the stage wall times and plan summary come back
    // alongside the outcome.
    fn execute_query_profiled_at(
        &self,
        version: &DatabaseVersion,
        text: &str,
    ) -> OntoResult<(sparql::QueryOutcome, QueryProfile)> {
        let cached = self.lock_cache().get(text);
        let cache_hit = cached.is_some();
        let (compiled, timings) = match cached {
            Some(compiled) => (compiled, StageTimings::default()),
            None => self.compile_and_admit(&version.db, text)?,
        };
        let started = Instant::now();
        let span = obs::trace::span("query.execute");
        trace_join_spans(&version.db, compiled.compiled());
        let outcome = run_cached(&version.db, &compiled)?;
        drop(span);
        let execute = started.elapsed();
        metrics().execute.observe_duration(execute);
        let plan = compiled.compiled();
        let joins = join_plans(&version.db, plan);
        let conjuncts = plan.sql.where_clause.as_ref().map_or(0, count_and_leaves);
        let rows = match &outcome {
            sparql::QueryOutcome::Solutions(s) => s.len(),
            sparql::QueryOutcome::Boolean(b) => usize::from(*b),
        };
        let profile = QueryProfile {
            cache_hit,
            parse_micros: timings.parse.as_micros() as u64,
            plan_micros: timings.plan.as_micros() as u64,
            execute_micros: execute.as_micros() as u64,
            version_seq: version.seq,
            rows,
            joins,
            join_keys: plan.join_keys.len(),
            residual_conjuncts: conjuncts.saturating_sub(plan.join_keys.len()),
        };
        Ok((outcome, profile))
    }

    fn select_at(&self, version: &DatabaseVersion, text: &str) -> OntoResult<Solutions> {
        match self.execute_query_at(version, text)? {
            sparql::QueryOutcome::Solutions(s) => Ok(s),
            sparql::QueryOutcome::Boolean(_) => Err(OntoError::Unsupported {
                message: "expected a SELECT query".into(),
            }),
        }
    }
}

// ----------------------------------------------------------------------
// Public handles
// ----------------------------------------------------------------------

/// Shared handle to one mediator core. Cloning is an `Arc` clone: all
/// clones, [`ReadSession`]s, and [`WriteTxn`]s observe the same
/// database, mapping, and query cache.
#[derive(Debug, Clone)]
pub struct Mediator {
    core: Arc<MediatorCore>,
}

impl Mediator {
    /// Create an in-memory mediator, validating the mapping against the
    /// schema. Committed state lives only in RAM; see
    /// [`Mediator::with_durability`] / [`Mediator::open_durable`] for
    /// the persistent variants.
    pub fn new(db: Database, mapping: Mapping) -> OntoResult<Self> {
        Self::build(db, mapping, None, None, None)
    }

    /// Create a mediator whose commits are persisted through an open
    /// [`dur::Durability`] handle: every [`WriteTxn::commit`] appends
    /// the transaction's logical operations to the write-ahead log and
    /// fsyncs (group commit) before returning. The database should be
    /// the one the handle's recovery produced
    /// ([`dur::Durability::open`]) — [`Mediator::open_durable`] wires
    /// the two steps together.
    pub fn with_durability(
        db: Database,
        mapping: Mapping,
        durability: dur::Durability,
    ) -> OntoResult<Self> {
        Self::build(db, mapping, Some(durability), None, None)
    }

    /// Create a read-replica mediator: `db` is the state bootstrapped
    /// from the leader's snapshot at commit `applied_seq`, and `leader`
    /// is the address local writes are redirected to. The replica is
    /// in-memory (its durability lives on the leader); committed state
    /// advances only through [`Mediator::apply_replicated`], and every
    /// write entry point fails with [`OntoError::ReadOnlyReplica`].
    pub fn new_replica(
        db: Database,
        mapping: Mapping,
        leader: impl Into<String>,
        applied_seq: u64,
    ) -> OntoResult<Self> {
        Self::build(db, mapping, None, Some(leader.into()), Some(applied_seq))
    }

    /// Open (or create) a durable data directory and serve the
    /// recovered state: load the newest valid snapshot, replay the
    /// committed WAL suffix, truncate any torn tail, and return a
    /// mediator whose commits append to that WAL. `initial` provides
    /// the schema and, for a fresh directory, the base data (which is
    /// immediately checkpointed as snapshot 0).
    pub fn open_durable(
        dir: impl AsRef<std::path::Path>,
        initial: Database,
        mapping: Mapping,
    ) -> OntoResult<(Self, dur::RecoveryReport)> {
        let opened = dur::Durability::open(dir, initial)?;
        let mediator = Self::with_durability(opened.db, mapping, opened.durability)?;
        Ok((mediator, opened.report))
    }

    fn build(
        db: Database,
        mapping: Mapping,
        durability: Option<dur::Durability>,
        replica_of: Option<String>,
        initial_seq: Option<u64>,
    ) -> OntoResult<Self> {
        r3m::validate_strict(&mapping, db.schema()).map_err(|issue| OntoError::Unsupported {
            message: format!("mapping rejected: {issue}"),
        })?;
        let mut prefixes = PrefixMap::common();
        if let Some(prefix) = &mapping.uri_prefix {
            prefixes.insert("ex", prefix.clone());
        }
        // The initial version's sequence number is the last recovered
        // WAL commit unit (0 on a fresh directory or in memory), so the
        // next commit's version id lines up with its WAL seq and a
        // reopened mediator resumes the same numbering. A replica's
        // numbering starts at its bootstrap snapshot's sequence.
        let initial_seq = initial_seq
            .unwrap_or_else(|| durability.as_ref().map_or(0, |d| d.stats().last_commit_seq));
        let initial = Arc::new(DatabaseVersion {
            seq: initial_seq,
            db: db.clone(),
        });
        Ok(Mediator {
            core: Arc::new(MediatorCore {
                live: Mutex::new(db),
                chain: RwLock::new(VersionChain {
                    versions: VecDeque::from([initial]),
                }),
                mapping,
                prefixes,
                cache: Mutex::new(QueryCache::new()),
                durability,
                replica_of,
                session_token: Arc::new(()),
                write_lock_waits: AtomicU64::new(0),
                write_lock_wait_micros: AtomicU64::new(0),
            }),
        })
    }

    /// Whether commits are persisted to a data directory.
    pub fn is_durable(&self) -> bool {
        self.core.durability.is_some()
    }

    /// Durability counters (`None` for an in-memory mediator).
    pub fn durability_stats(&self) -> Option<dur::DurabilityStats> {
        self.core.durability.as_ref().map(dur::Durability::stats)
    }

    /// The leader address when this mediator is a read replica.
    pub fn replica_of(&self) -> Option<&str> {
        self.core.replica_of.as_deref()
    }

    // A replica accepts no local writes; the guard sits on the two
    // update entry points every transport route funnels through.
    fn ensure_writable(&self) -> OntoResult<()> {
        match &self.core.replica_of {
            Some(leader) => Err(OntoError::ReadOnlyReplica {
                leader: leader.clone(),
            }),
            None => Ok(()),
        }
    }

    /// Apply one replicated commit unit (replication follower path):
    /// replay the leader's logical operations onto the live database
    /// and publish the result under the leader's commit sequence, so
    /// replica reads are ordinary pinned MVCC snapshots with
    /// leader-aligned version ids. The caller (the replicator) feeds
    /// units in sequence order and skips already-applied sequences.
    pub fn apply_replicated(&self, seq: u64, ops: &[rel::LogicalOp]) -> OntoResult<()> {
        let mut db = self.core.lock_live();
        for op in ops {
            db.apply_logical(op)?;
        }
        self.core.publish(db.clone(), seq);
        Ok(())
    }

    /// Replace a replica's state wholesale with a fresh bootstrap
    /// snapshot at commit `seq` (re-bootstrap after the leader's
    /// checkpoint truncated WAL history this replica had not applied
    /// yet). Already-pinned read sessions keep their old versions;
    /// new reads see the snapshot.
    pub fn install_replica_base(&self, db: Database, seq: u64) -> OntoResult<()> {
        let mut live = self.core.lock_live();
        *live = db.clone();
        self.core.publish(db, seq);
        Ok(())
    }

    /// Current WAL coordinate for replication (`None` without
    /// durability).
    pub fn wal_position(&self) -> Option<dur::WalPosition> {
        self.core
            .durability
            .as_ref()
            .map(dur::Durability::wal_position)
    }

    /// Serve durable WAL bytes to a replication follower (leader side;
    /// see [`dur::Durability::fetch_wal`]). [`OntoError::Unsupported`]
    /// without durability — an in-memory endpoint (including a replica)
    /// has no log to ship.
    pub fn fetch_wal(
        &self,
        from: u64,
        epoch: u64,
        timeout: std::time::Duration,
    ) -> OntoResult<dur::WalFetch> {
        let Some(durability) = &self.core.durability else {
            return Err(OntoError::Unsupported {
                message: "replication requires a durable leader (no data directory here)".into(),
            });
        };
        Ok(durability.fetch_wal(from, epoch, timeout)?)
    }

    /// The newest snapshot's raw bytes for follower bootstrap (leader
    /// side). [`OntoError::Unsupported`] without durability.
    pub fn latest_snapshot_bytes(&self) -> OntoResult<(u64, Vec<u8>)> {
        let Some(durability) = &self.core.durability else {
            return Err(OntoError::Unsupported {
                message: "replication requires a durable leader (no data directory here)".into(),
            });
        };
        Ok(durability.latest_snapshot_bytes()?)
    }

    /// String-dictionary counters. The dictionary is process-global
    /// (every mediator in this process interns into the same table),
    /// so the numbers describe the process, not one database.
    pub fn dictionary_stats(&self) -> rel::DictionaryStats {
        rel::dictionary_stats()
    }

    /// Checkpoint: durably snapshot the current committed state and
    /// truncate the write-ahead log, so recovery starts from this point
    /// (the server's `POST /snapshot` admin operation). Returns the
    /// snapshot's commit sequence. Blocks writers for the duration
    /// (holds the live-database lock — the durability layer requires
    /// that no commit lands between serialization and WAL truncation);
    /// readers proceed on their pinned versions throughout. Fails with
    /// [`OntoError::Unsupported`] on an in-memory mediator.
    pub fn checkpoint(&self) -> OntoResult<u64> {
        let Some(durability) = &self.core.durability else {
            return Err(OntoError::Unsupported {
                message: "mediator has no durability configured (no data directory)".into(),
            });
        };
        let db = self.core.lock_live();
        Ok(durability.checkpoint(&db)?)
    }

    /// A read session: cheap, `Send + Sync`, queries through `&self`.
    /// Each query pins the newest published version at its start and
    /// runs entirely against that snapshot, without ever taking the
    /// writer's lock.
    pub fn read(&self) -> ReadSession {
        ReadSession {
            core: Arc::clone(&self.core),
            pinned: None,
            _token: Arc::clone(&self.core.session_token),
        }
    }

    /// A time-travel read session pinned to the database *as of* commit
    /// `seq`: every query answers from the newest retained version at
    /// or below that commit. Errors if `seq` is beyond the current
    /// version or has aged out of the retention window
    /// (the chain keeps the most recent commits' versions).
    pub fn read_at(&self, seq: u64) -> OntoResult<ReadSession> {
        let version = self.core.version_at(seq)?;
        Ok(ReadSession {
            core: Arc::clone(&self.core),
            pinned: Some(version),
            _token: Arc::clone(&self.core.session_token),
        })
    }

    /// Begin an exclusive write transaction. Blocks until the prior
    /// writer released the live database; readers are unaffected — they
    /// keep answering from published versions, and observe this
    /// transaction only once [`WriteTxn::commit`] publishes it (which
    /// is exactly why they can never observe a torn write).
    pub fn write(&self) -> WriteTxn<'_> {
        let start = Instant::now();
        let mut db = self.core.lock_live();
        let waited = start.elapsed();
        self.core.write_lock_waits.fetch_add(1, Ordering::Relaxed);
        self.core
            .write_lock_wait_micros
            .fetch_add(waited.as_micros() as u64, Ordering::Relaxed);
        db.begin()
            .expect("no transaction can be open outside a WriteTxn");
        WriteTxn {
            core: &self.core,
            db,
            open: true,
        }
    }

    /// Point-in-time concurrency counters: the published version id,
    /// retained-version count, live read sessions, and how long writers
    /// have waited to acquire the write lock (surfaced by the server's
    /// `/status` endpoint).
    pub fn concurrency_stats(&self) -> ConcurrencyStats {
        let (current_version, versions_retained) = {
            let chain = self.core.chain.read().unwrap_or_else(|e| e.into_inner());
            (
                chain.versions.back().expect("chain is never empty").seq,
                chain.versions.len(),
            )
        };
        ConcurrencyStats {
            current_version,
            versions_retained,
            read_sessions_live: Arc::strong_count(&self.core.session_token) - 1,
            write_lock_waits: self.core.write_lock_waits.load(Ordering::Relaxed),
            write_lock_wait_micros: self.core.write_lock_wait_micros.load(Ordering::Relaxed),
        }
    }

    #[doc(hidden)]
    /// Weak handle to the retained version with exactly sequence `seq`,
    /// if any (drop-glue tests: after retirement and the last guard
    /// drop, the upgrade must fail — proof the snapshot's memory was
    /// returned).
    pub fn version_weak_for_tests(&self, seq: u64) -> Option<std::sync::Weak<DatabaseVersion>> {
        let chain = self.core.chain.read().unwrap_or_else(|e| e.into_inner());
        chain
            .versions
            .iter()
            .find(|v| v.seq == seq)
            .map(Arc::downgrade)
    }

    /// The mapping.
    pub fn mapping(&self) -> &Mapping {
        &self.core.mapping
    }

    /// Prefixes used for parsing requests and rendering output
    /// (the common vocabularies plus `ex:` for the instance namespace).
    pub fn prefixes(&self) -> &PrefixMap {
        &self.core.prefixes
    }

    /// Pin the newest published version for reading. The guard owns its
    /// snapshot — holding it never blocks writers, and it can safely
    /// live across write calls (it simply keeps seeing its pinned
    /// state).
    pub fn database(&self) -> DatabaseReadGuard {
        DatabaseReadGuard {
            core: Arc::clone(&self.core),
            version: self.core.current_version(),
        }
    }

    #[doc(hidden)]
    /// Exclusive raw access to the live database, **bypassing the
    /// mediator**: no mapping validation, no translation, no feedback,
    /// no write-ahead logging. Test support for seeding fixture rows
    /// and exercising the engine directly — production callers go
    /// through [`Mediator::write`], which is why this accessor is
    /// hidden from the documented API. Dropping the guard publishes the
    /// edited state as a new version so reads observe it.
    pub fn database_mut_for_tests(&self) -> DatabaseWriteGuard<'_> {
        DatabaseWriteGuard {
            core: &self.core,
            db: self.core.lock_live(),
        }
    }

    // ------------------------------------------------------------------
    // One-shot conveniences (one operation = one transaction, §5.1)
    // ------------------------------------------------------------------

    /// Execute a SPARQL/Update given as text, as its own transaction.
    pub fn execute_update(&self, text: &str) -> OntoResult<UpdateOutcome> {
        let op = sparql::parse_update_with_prefixes(text, self.core.prefixes.clone())?;
        self.execute_update_op(&op)
    }

    /// Execute a parsed SPARQL/Update operation, as its own transaction.
    /// On a read replica this fails with [`OntoError::ReadOnlyReplica`]
    /// naming the leader — send the update there.
    pub fn execute_update_op(&self, op: &UpdateOp) -> OntoResult<UpdateOutcome> {
        self.ensure_writable()?;
        let mut txn = self.write();
        match txn.update_op(op) {
            Ok(outcome) => {
                txn.commit()?;
                Ok(outcome)
            }
            Err(e) => {
                txn.rollback()?;
                Err(e)
            }
        }
    }

    /// Execute a SPARQL 1.1 style update request: one or more operations
    /// separated by `;`.
    ///
    /// Each operation is one atomicity unit (the paper's §5.1);
    /// `atomic_script` additionally makes the *whole request*
    /// all-or-nothing by running every operation inside one write
    /// transaction — on any failure the transaction rolls back and the
    /// error reports the failing operation's index. Non-atomic scripts
    /// commit per operation, letting readers interleave between
    /// operations.
    pub fn execute_script(
        &self,
        text: &str,
        atomic_script: bool,
    ) -> Result<Vec<UpdateOutcome>, ScriptError> {
        self.ensure_writable().map_err(|error| ScriptError {
            operation_index: 0,
            completed: Vec::new(),
            error,
        })?;
        let parse_span = obs::trace::span("update.parse");
        let ops = sparql::parse_update_script(text, self.core.prefixes.clone()).map_err(|e| {
            ScriptError {
                operation_index: 0,
                completed: Vec::new(),
                error: e.into(),
            }
        })?;
        drop(parse_span);
        let mut outcomes = Vec::with_capacity(ops.len());
        if atomic_script {
            let mut txn = self.write();
            for (i, op) in ops.iter().enumerate() {
                match txn.update_op(op) {
                    Ok(outcome) => outcomes.push(outcome),
                    Err(error) => {
                        let rollback = txn.rollback();
                        debug_assert!(rollback.is_ok(), "rollback of an open txn cannot fail");
                        return Err(ScriptError {
                            operation_index: i,
                            completed: outcomes,
                            error,
                        });
                    }
                }
            }
            txn.commit().map_err(|error| ScriptError {
                operation_index: ops.len().saturating_sub(1),
                completed: Vec::new(),
                error,
            })?;
            Ok(outcomes)
        } else {
            for (i, op) in ops.iter().enumerate() {
                match self.execute_update_op(op) {
                    Ok(outcome) => outcomes.push(outcome),
                    Err(error) => {
                        return Err(ScriptError {
                            operation_index: i,
                            completed: outcomes,
                            error,
                        })
                    }
                }
            }
            Ok(outcomes)
        }
    }

    /// The profiled sibling of [`Mediator::execute_script`]'s atomic
    /// form: one write transaction, per-operation savepoints, one
    /// commit — plus the per-stage wall times (parse, translate, sort,
    /// execute, WAL append, fsync wait) the server's `?profile=1` on
    /// `POST /update` reports.
    pub fn execute_script_profiled(
        &self,
        text: &str,
    ) -> Result<(Vec<UpdateOutcome>, UpdateProfile), ScriptError> {
        self.ensure_writable().map_err(|error| ScriptError {
            operation_index: 0,
            completed: Vec::new(),
            error,
        })?;
        let parse_started = Instant::now();
        let parse_span = obs::trace::span("update.parse");
        let ops = sparql::parse_update_script(text, self.core.prefixes.clone()).map_err(|e| {
            ScriptError {
                operation_index: 0,
                completed: Vec::new(),
                error: e.into(),
            }
        })?;
        drop(parse_span);
        let parse = parse_started.elapsed();
        let mut acc = UpdateStageAcc::default();
        let mut outcomes = Vec::with_capacity(ops.len());
        let mut txn = self.write();
        for (i, op) in ops.iter().enumerate() {
            match txn.update_op_staged(op, &mut acc) {
                Ok(outcome) => outcomes.push(outcome),
                Err(error) => {
                    let rollback = txn.rollback();
                    debug_assert!(rollback.is_ok(), "rollback of an open txn cannot fail");
                    return Err(ScriptError {
                        operation_index: i,
                        completed: outcomes,
                        error,
                    });
                }
            }
        }
        let commit = txn.commit_profiled().map_err(|error| ScriptError {
            operation_index: ops.len().saturating_sub(1),
            completed: Vec::new(),
            error,
        })?;
        let profile = UpdateProfile {
            parse_micros: parse.as_micros() as u64,
            translate_micros: acc.translate.as_micros() as u64,
            sort_micros: acc.sort.as_micros() as u64,
            execute_micros: acc.execute.as_micros() as u64,
            wal_append_micros: commit.wal_append_micros,
            fsync_micros: commit.fsync_micros,
            operations: outcomes.len(),
        };
        Ok((outcomes, profile))
    }

    /// Execute an update and convert the result into a feedback document
    /// (what the HTTP endpoint would send back). The request text is
    /// parsed exactly once — the parsed operation both names the
    /// feedback and executes.
    pub fn execute_update_with_feedback(
        &self,
        text: &str,
    ) -> (Feedback, OntoResult<UpdateOutcome>) {
        let op = match sparql::parse_update_with_prefixes(text, self.core.prefixes.clone()) {
            Ok(op) => op,
            Err(e) => {
                let error: OntoError = e.into();
                let feedback = Feedback::Rejection {
                    operation: "unparsed".to_owned(),
                    error: error.clone(),
                };
                return (feedback, Err(error));
            }
        };
        let operation = op.name().to_owned();
        let result = self.execute_update_op(&op);
        let feedback = match &result {
            Ok(outcome) => Feedback::Success {
                operation: outcome.operation.clone(),
                statements: outcome.statements_executed,
                rows: outcome.rows_affected,
            },
            Err(error) => Feedback::Rejection {
                operation,
                error: error.clone(),
            },
        };
        (feedback, result)
    }

    // ------------------------------------------------------------------
    // Query conveniences and cache administration
    // ------------------------------------------------------------------

    /// Execute a SPARQL query given as text against the newest
    /// published version (see [`ReadSession::execute_query`]).
    pub fn execute_query(&self, text: &str) -> OntoResult<sparql::QueryOutcome> {
        self.database().execute_query(text)
    }

    /// Execute a SELECT given as text.
    pub fn select(&self, text: &str) -> OntoResult<Solutions> {
        self.database().select(text)
    }

    /// Materialize the database's full RDF view.
    pub fn materialize(&self) -> OntoResult<Graph> {
        self.database().materialize()
    }

    /// Describe one instance URI (see [`ReadSession::describe`]).
    pub fn describe(&self, uri: &rdf::Iri) -> OntoResult<Graph> {
        self.database().describe(uri)
    }

    /// Number of compiled queries currently cached.
    pub fn cached_query_count(&self) -> usize {
        self.core.lock_cache().entries.len()
    }

    /// Whether `text` currently has a cached compilation.
    pub fn is_query_cached(&self, text: &str) -> bool {
        self.core.lock_cache().entries.contains_key(text)
    }

    /// Point-in-time compiled-query cache statistics (size, capacity,
    /// hit/miss/eviction counters since construction).
    pub fn query_cache_stats(&self) -> QueryCacheStats {
        self.core.lock_cache().stats()
    }

    /// Set the compiled-query cache capacity (≥ 1). Nothing is evicted
    /// immediately; a cache above the new capacity shrinks to it as
    /// later misses evict. Production deployments size this to their
    /// distinct-query working set.
    pub fn set_query_cache_capacity(&self, capacity: usize) {
        self.core.lock_cache().set_capacity(capacity);
    }
}

/// A read session over a shared [`Mediator`]: `Send + Sync`, cloneable,
/// all queries through `&self` — hand one to each server worker.
///
/// Each query pins the newest published version at its start (one
/// `Arc` clone) and executes entirely against that snapshot: it sees
/// either all of a transaction's effects or none, and never waits on a
/// writer. The session does **not** pin one snapshot across queries —
/// two queries may observe different committed states if a writer
/// commits between them (read-committed, the paper's §5.1 unit), but
/// the versions a session observes only ever move forward. Sessions
/// from [`Mediator::read_at`] *are* pinned: every query answers as of
/// their fixed commit. Use [`ReadSession::database`] to hold one
/// snapshot across several queries.
#[derive(Debug, Clone)]
pub struct ReadSession {
    core: Arc<MediatorCore>,
    // `Some` = time-travel session fixed to this version.
    pinned: Option<Arc<DatabaseVersion>>,
    // Clone of the core's session token (live-session accounting).
    _token: Arc<()>,
}

impl ReadSession {
    /// Execute a SPARQL query given as text. Compiled queries are cached
    /// per query text in the mediator-wide cache (clock eviction):
    /// repeated requests — from any session — skip parsing and
    /// translation and go straight to the planner.
    pub fn execute_query(&self, text: &str) -> OntoResult<sparql::QueryOutcome> {
        self.database().execute_query(text)
    }

    /// Execute a SPARQL query and return the per-stage wall times and
    /// plan summary alongside the outcome (see
    /// [`DatabaseReadGuard::execute_query_profiled`]).
    pub fn execute_query_profiled(
        &self,
        text: &str,
    ) -> OntoResult<(sparql::QueryOutcome, QueryProfile)> {
        self.database().execute_query_profiled(text)
    }

    /// Describe the plan a query would run with, without executing it
    /// (see [`DatabaseReadGuard::explain_query`]).
    pub fn explain_query(&self, text: &str) -> OntoResult<QueryExplain> {
        self.database().explain_query(text)
    }

    /// Execute a SELECT given as text.
    pub fn select(&self, text: &str) -> OntoResult<Solutions> {
        self.database().select(text)
    }

    /// Materialize the database's full RDF view.
    pub fn materialize(&self) -> OntoResult<Graph> {
        self.database().materialize()
    }

    /// Describe one instance URI: the triples of its row plus its
    /// link-table triples (in either role). The D2R-style
    /// "dereferenceable URI" read the paper's related work describes
    /// (§2), here over the session's snapshot.
    pub fn describe(&self, uri: &rdf::Iri) -> OntoResult<Graph> {
        self.database().describe(uri)
    }

    /// Pin this session's snapshot: the newest published version, or
    /// the fixed version of a time-travel session. The guard owns its
    /// snapshot — holding it never blocks writers.
    pub fn database(&self) -> DatabaseReadGuard {
        DatabaseReadGuard {
            core: Arc::clone(&self.core),
            version: match &self.pinned {
                Some(version) => Arc::clone(version),
                None => self.core.current_version(),
            },
        }
    }

    /// Prefixes used for parsing requests and rendering output.
    pub fn prefixes(&self) -> &PrefixMap {
        &self.core.prefixes
    }
}

/// An exclusive write transaction over the mediator's live database.
///
/// Obtained from [`Mediator::write`]; holds the live-database lock for
/// its whole lifetime, so writers serialize — but readers never see the
/// lock: they keep answering from published versions, and observe this
/// transaction's effects only after [`WriteTxn::commit`] publishes a
/// new version, so intermediate states are unobservable. Each
/// [`WriteTxn::update_op`] runs as a savepoint scope: on rejection the
/// operation's changes are undone at O(rows touched) cost and the
/// transaction remains usable. Dropping the transaction without
/// [`WriteTxn::commit`] rolls everything back.
#[derive(Debug)]
pub struct WriteTxn<'a> {
    core: &'a MediatorCore,
    db: MutexGuard<'a, Database>,
    open: bool,
}

impl WriteTxn<'_> {
    /// Execute a SPARQL/Update given as text inside this transaction.
    pub fn update(&mut self, text: &str) -> OntoResult<UpdateOutcome> {
        let op = sparql::parse_update_with_prefixes(text, self.core.prefixes.clone())?;
        self.update_op(&op)
    }

    /// Execute a parsed SPARQL/Update operation inside this transaction,
    /// as a savepoint scope: a rejected operation is fully undone while
    /// earlier operations — and the transaction — survive.
    pub fn update_op(&mut self, op: &UpdateOp) -> OntoResult<UpdateOutcome> {
        self.update_op_staged(op, &mut UpdateStageAcc::default())
    }

    // `update_op` with per-stage wall times accumulated into `acc`
    // (the script-profiling path).
    fn update_op_staged(
        &mut self,
        op: &UpdateOp,
        acc: &mut UpdateStageAcc,
    ) -> OntoResult<UpdateOutcome> {
        let sp = self.db.savepoint("operation")?;
        match run_update_op(&mut self.db, &self.core.mapping, op, acc) {
            Ok(outcome) => {
                self.db.release_savepoint(sp)?;
                Ok(outcome)
            }
            Err(e) => {
                // ROLLBACK TO keeps the mark (SQL); release it so the
                // stack does not grow with each rejected operation.
                self.db.rollback_to_savepoint(sp)?;
                self.db.release_savepoint(sp)?;
                Err(e)
            }
        }
    }

    /// The transaction's view of the database, including its own
    /// uncommitted changes.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Commit: keep every operation's changes, publish them as a new
    /// database version, and release the lock.
    ///
    /// Publication is the commit's visibility point: an O(tables +
    /// indexes) persistent-structure clone of the live database is
    /// pushed onto the version chain (tagged with the WAL commit
    /// sequence on a durable mediator), and the next query to pin a
    /// snapshot sees it. A transaction that changed nothing publishes
    /// nothing — version ids stay aligned with WAL commit units.
    ///
    /// On a durable mediator the commit is write-ahead logged first —
    /// the transaction's logical operations are appended to the WAL
    /// *before* the in-memory commit (a failed append rolls the whole
    /// transaction back, so memory never diverges from what the log can
    /// reproduce), the new version is published, the live-database lock
    /// is released, and only then does the call block on the group
    /// fsync. Concurrent committers share one fsync: the next writer
    /// can append while this one waits.
    pub fn commit(self) -> OntoResult<()> {
        self.commit_profiled().map(|_| ())
    }

    /// [`WriteTxn::commit`] with the durability stage wall times (WAL
    /// append, group-fsync wait) returned — the update-profiling path.
    pub fn commit_profiled(mut self) -> OntoResult<CommitProfile> {
        let commit_started = Instant::now();
        let span = obs::trace::span("txn.commit");
        self.open = false;
        let changed = self.db.txn_has_changes()?;
        let Some(durability) = &self.core.durability else {
            self.db.commit()?;
            if changed {
                self.core.publish_next(self.db.clone());
            }
            metrics().commit.observe_duration(commit_started.elapsed());
            return Ok(CommitProfile::default());
        };
        if !changed {
            // Read-only or fully rolled-back transaction: nothing to
            // make durable, nothing to publish.
            self.db.commit()?;
            return Ok(CommitProfile::default());
        }
        let ops = self.db.txn_ops()?;
        // Stamp the active trace's id into the commit unit so a
        // replica's apply links back to this request.
        let trace_id = obs::trace::current_trace_id();
        let append_started = Instant::now();
        let seq = match durability.append_commit(&ops, trace_id.as_deref()) {
            Ok(seq) => seq,
            Err(e) => {
                // The log could not take the commit unit; undo the
                // in-memory changes so the acknowledged state and the
                // recoverable state stay identical.
                self.db.rollback()?;
                return Err(e.into());
            }
        };
        let wal_append_micros = append_started.elapsed().as_micros() as u64;
        self.db.commit()?;
        self.core.publish(self.db.clone(), seq);
        // Release the live database (the next writer proceeds) before
        // waiting on the fsync — this is what lets concurrent
        // committers amortize one fsync. The reference outlives `self`
        // (it borrows from the mediator core, not the guard).
        let durability: &dur::Durability = durability;
        drop(self);
        let fsync_started = Instant::now();
        durability.sync_to(seq)?;
        let fsync_micros = fsync_started.elapsed().as_micros() as u64;
        span.attr_u64("seq", seq);
        drop(span);
        metrics().commit.observe_duration(commit_started.elapsed());
        Ok(CommitProfile {
            wal_append_micros,
            fsync_micros,
        })
    }

    /// Roll back: undo every operation's changes and release the lock.
    pub fn rollback(mut self) -> OntoResult<()> {
        self.open = false;
        self.db.rollback()?;
        Ok(())
    }
}

impl Drop for WriteTxn<'_> {
    fn drop(&mut self) {
        if self.open {
            // Abandoned transaction (early return, panic unwinding):
            // leave the database as if it never happened.
            let _ = self.db.rollback();
        }
    }
}

// Execute a cached compilation against a database, producing the
// outcome shape its query form dictates (shared by the plain and
// profiled query paths).
fn run_cached(db: &Database, compiled: &CachedQuery) -> OntoResult<sparql::QueryOutcome> {
    match compiled {
        CachedQuery::Select(compiled) => Ok(sparql::QueryOutcome::Solutions(
            crate::query::run_compiled(db, compiled)?,
        )),
        CachedQuery::Ask(compiled) => {
            let solutions = crate::query::run_compiled(db, compiled)?;
            Ok(sparql::QueryOutcome::Boolean(!solutions.is_empty()))
        }
    }
}

// One update operation against an open scope (Algorithm 1 / 2),
// producing the outcome record. The caller provides atomicity (the
// per-op savepoint in `WriteTxn::update_op`); `execute_sorted` and
// `execute_modify` nest their own scopes for per-round rollback.
fn run_update_op(
    db: &mut Database,
    mapping: &Mapping,
    op: &UpdateOp,
    acc: &mut UpdateStageAcc,
) -> OntoResult<UpdateOutcome> {
    match op {
        UpdateOp::InsertData { triples } => {
            let translate_started = Instant::now();
            let translate_span = obs::trace::span("update.translate");
            let stmts = crate::translate::insert::translate_insert_data(
                db,
                mapping,
                triples,
                TranslateOptions::default(),
            )?;
            drop(translate_span);
            acc.translate += translate_started.elapsed();
            let (executed, sort, execute) = execute_sorted_timed(db, stmts)?;
            acc.sort += sort;
            acc.execute += execute;
            Ok(UpdateOutcome {
                operation: "INSERT DATA".into(),
                statements_executed: executed.statements.len(),
                rows_affected: executed.rows_affected,
                statements: executed.statements,
                modify: None,
            })
        }
        UpdateOp::DeleteData { triples } => {
            let translate_started = Instant::now();
            let translate_span = obs::trace::span("update.translate");
            let stmts = crate::translate::delete::translate_delete_data(db, mapping, triples)?;
            drop(translate_span);
            acc.translate += translate_started.elapsed();
            let (executed, sort, execute) = execute_sorted_timed(db, stmts)?;
            acc.sort += sort;
            acc.execute += execute;
            Ok(UpdateOutcome {
                operation: "DELETE DATA".into(),
                statements_executed: executed.statements.len(),
                rows_affected: executed.rows_affected,
                statements: executed.statements,
                modify: None,
            })
        }
        UpdateOp::Modify {
            delete,
            insert,
            pattern,
        } => {
            // Atomic on the live database: `execute_modify` wraps both
            // DATA rounds in one savepoint scope (no clone-and-swap).
            // Translation happens inside per matched binding, so the
            // whole operation is accounted to the execute stage.
            let execute_started = Instant::now();
            let span = obs::trace::span("update.execute");
            let report = crate::modify::execute_modify(db, mapping, delete, insert, pattern)?;
            if span.armed() {
                span.attr_u64("statements", report.executed.len() as u64);
                span.attr_u64("rows_affected", report.rows_affected as u64);
            }
            drop(span);
            acc.execute += execute_started.elapsed();
            Ok(UpdateOutcome {
                operation: "MODIFY".into(),
                statements_executed: report.executed.len(),
                rows_affected: report.rows_affected,
                statements: report.executed.clone(),
                modify: Some(report),
            })
        }
    }
}

// DESCRIBE over the live database: the row's triples plus link-table
// triples in either role.
fn describe_in(db: &Database, mapping: &Mapping, uri: &rdf::Iri) -> OntoResult<Graph> {
    let identified = crate::translate::identify(db, mapping, &rdf::Term::Iri(uri.clone()))?;
    let table = db.schema().table(&identified.table_map.table_name)?;
    let Some(row_id) = crate::translate::find_row(db, &identified)? else {
        return Ok(Graph::new()); // mapped but absent: empty description
    };
    let row = db
        .row(&identified.table_map.table_name, row_id)?
        .expect("row id valid")
        .clone();
    let mut graph = crate::materialize::materialize_row(db, mapping, identified.table_map, &row)?;
    // Link-table triples where this instance is subject or object.
    let key = identified.pk_values(table)?;
    if key.len() == 1 {
        let key = &key[0];
        for link in &mapping.link_tables {
            let link_table = db.schema().table(&link.table_name)?;
            let s_idx = link_table
                .column_index(&link.subject_attribute.attribute_name)
                .expect("validated mapping");
            let o_idx = link_table
                .column_index(&link.object_attribute.attribute_name)
                .expect("validated mapping");
            let s_target = link
                .subject_attribute
                .foreign_key_target()
                .and_then(|id| mapping.table_by_id(id));
            let o_target = link
                .object_attribute
                .foreign_key_target()
                .and_then(|id| mapping.table_by_id(id));
            let (Some(s_target), Some(o_target)) = (s_target, o_target) else {
                continue;
            };
            let as_subject = s_target.table_name == identified.table_map.table_name;
            let as_object = o_target.table_name == identified.table_map.table_name;
            // Candidate link rows by index on whichever endpoint
            // columns reference this instance (both are FK columns,
            // so normally indexed); a failed probe falls back to
            // scanning.
            let mut candidates: Option<Vec<rel::RowId>> = Some(Vec::new());
            for (role_active, column) in [
                (as_subject, &link.subject_attribute.attribute_name),
                (as_object, &link.object_attribute.attribute_name),
            ] {
                if !role_active {
                    continue;
                }
                match db.index_probe(&link.table_name, column, key)? {
                    Some(ids) => {
                        if let Some(c) = &mut candidates {
                            c.extend(ids);
                        }
                    }
                    None => candidates = None,
                }
            }
            let link_rows: Vec<&Vec<rel::Value>> = match candidates {
                Some(mut ids) => {
                    ids.sort_unstable();
                    ids.dedup();
                    let mut rows = Vec::with_capacity(ids.len());
                    for id in ids {
                        rows.push(db.row(&link.table_name, id)?.expect("live id"));
                    }
                    rows
                }
                None => db.scan(&link.table_name)?.map(|(_, r)| r).collect(),
            };
            for link_row in link_rows {
                let s_val = &link_row[s_idx];
                let o_val = &link_row[o_idx];
                if s_val.is_null() || o_val.is_null() {
                    continue;
                }
                let relevant = (as_subject && s_val.sql_eq(key) == Some(true))
                    || (as_object && o_val.sql_eq(key) == Some(true));
                if relevant {
                    let s = crate::materialize::key_instance_uri(mapping, s_target, s_val)?;
                    let o = crate::materialize::key_instance_uri(mapping, o_target, o_val)?;
                    graph.insert(rdf::Triple::new(
                        rdf::Term::Iri(s),
                        link.property.clone(),
                        rdf::Term::Iri(o),
                    ));
                }
            }
        }
    }
    Ok(graph)
}

// Compile-time proof that the handles cross threads: a transport can
// share one Mediator and hand a ReadSession to every worker.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Mediator>();
    assert_send_sync::<ReadSession>();
    assert_send_sync::<DatabaseReadGuard>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fixture_db_with_rows;

    fn mediator() -> Mediator {
        let (db, mapping) = fixture_db_with_rows();
        Mediator::new(db, mapping).unwrap()
    }

    #[test]
    fn read_sessions_share_one_cache_and_database() {
        let m = mediator();
        let r1 = m.read();
        let r2 = m.read();
        let q = "SELECT ?x WHERE { ?x a foaf:Person . }";
        assert_eq!(r1.select(q).unwrap().len(), 2);
        // r2 hits the compilation r1 admitted.
        assert_eq!(m.cached_query_count(), 1);
        assert_eq!(r2.select(q).unwrap().len(), 2);
        assert_eq!(m.cached_query_count(), 1);
        // A write through the mediator is visible to both sessions.
        m.execute_update("INSERT DATA { ex:author8 foaf:family_name \"Gall\" . }")
            .unwrap();
        assert_eq!(r1.select(q).unwrap().len(), 3);
        assert_eq!(r2.select(q).unwrap().len(), 3);
    }

    #[test]
    fn write_txn_commits_operations_atomically() {
        let m = mediator();
        let mut txn = m.write();
        txn.update("INSERT DATA { ex:team9 foaf:name \"T9\" . }")
            .unwrap();
        txn.update("INSERT DATA { ex:author8 foaf:family_name \"Gall\" ; ont:team ex:team9 . }")
            .unwrap();
        // Uncommitted changes are visible inside the transaction…
        assert_eq!(txn.database().row_count("team").unwrap(), 3);
        txn.commit().unwrap();
        assert_eq!(m.database().row_count("team").unwrap(), 3);
        assert_eq!(m.database().row_count("author").unwrap(), 3);
    }

    #[test]
    fn rejected_operation_keeps_transaction_usable() {
        let m = mediator();
        let mut txn = m.write();
        txn.update("INSERT DATA { ex:team9 foaf:name \"T9\" . }")
            .unwrap();
        // Dangling team → rejected, undone via its savepoint.
        let err = txn
            .update("INSERT DATA { ex:author8 ont:team ex:team424242 . }")
            .unwrap_err();
        assert!(matches!(err, OntoError::DanglingObject { .. }));
        // The transaction continues; the first operation survives.
        txn.update("INSERT DATA { ex:author8 foaf:family_name \"Gall\" ; ont:team ex:team9 . }")
            .unwrap();
        txn.commit().unwrap();
        assert_eq!(m.database().row_count("team").unwrap(), 3);
        assert_eq!(m.database().row_count("author").unwrap(), 3);
    }

    #[test]
    fn dropped_transaction_rolls_back() {
        let m = mediator();
        {
            let mut txn = m.write();
            txn.update("INSERT DATA { ex:team9 foaf:name \"T9\" . }")
                .unwrap();
            // No commit: dropped here.
        }
        assert_eq!(m.database().row_count("team").unwrap(), 2);
        // And the lock was released — later writes proceed.
        m.execute_update("INSERT DATA { ex:team9 foaf:name \"T9\" . }")
            .unwrap();
        assert_eq!(m.database().row_count("team").unwrap(), 3);
    }

    #[test]
    fn explicit_rollback_undoes_all_operations() {
        let m = mediator();
        let mut txn = m.write();
        txn.update("INSERT DATA { ex:team9 foaf:name \"T9\" . }")
            .unwrap();
        txn.update("INSERT DATA { ex:team10 foaf:name \"T10\" . }")
            .unwrap();
        txn.rollback().unwrap();
        assert_eq!(m.database().row_count("team").unwrap(), 2);
    }

    #[test]
    fn clock_cache_evicts_unreferenced_entries_first() {
        let m = mediator();
        m.set_query_cache_capacity(3);
        let hot = "SELECT ?x WHERE { ?x a foaf:Person . }";
        m.select(hot).unwrap();
        for year in [2001, 2002, 2003, 2004, 2005] {
            let cold = format!("SELECT ?p WHERE {{ ?p ont:pubYear \"{year}\" . }}");
            m.select(&cold).unwrap();
            m.select(hot).unwrap(); // keep the hot bit set
        }
        assert!(m.cached_query_count() <= 3);
        assert!(m.is_query_cached(hot), "hot entry evicted by the clock");
        assert!(!m.is_query_cached("SELECT ?p WHERE { ?p ont:pubYear \"2001\" . }"));
    }

    #[test]
    fn cache_capacity_can_shrink_after_the_fact() {
        let m = mediator();
        m.set_query_cache_capacity(4);
        for year in [2001, 2002, 2003, 2004] {
            m.select(&format!(
                "SELECT ?p WHERE {{ ?p ont:pubYear \"{year}\" . }}"
            ))
            .unwrap();
        }
        assert_eq!(m.cached_query_count(), 4);
        m.set_query_cache_capacity(2);
        m.select("SELECT ?p WHERE { ?p ont:pubYear \"2010\" . }")
            .unwrap();
        assert_eq!(m.cached_query_count(), 2);
    }

    #[test]
    fn atomic_script_is_one_transaction() {
        let m = mediator();
        let before = m.materialize().unwrap();
        let err = m
            .execute_script(
                "INSERT DATA { ex:team9 foaf:name \"T9\" . } ;\n\
                 INSERT DATA { ex:author8 ont:team ex:team424242 . }",
                true,
            )
            .unwrap_err();
        assert_eq!(err.operation_index, 1);
        assert_eq!(err.completed.len(), 1);
        assert_eq!(m.materialize().unwrap(), before);
    }

    fn scratch_dir() -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ontoaccess-mediator-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_mediator(dir: &std::path::Path) -> (Mediator, dur::RecoveryReport) {
        let (db, mapping) = fixture_db_with_rows();
        Mediator::open_durable(dir, db, mapping).unwrap()
    }

    #[test]
    fn durable_commits_survive_reopen() {
        let dir = scratch_dir();
        {
            let (m, report) = durable_mediator(&dir);
            assert_eq!(report.commits_replayed, 0);
            assert!(m.is_durable());
            m.execute_update("INSERT DATA { ex:author8 foaf:family_name \"Gall\" . }")
                .unwrap();
            let mut txn = m.write();
            txn.update("INSERT DATA { ex:team9 foaf:name \"T9\" . }")
                .unwrap();
            txn.update(
                "INSERT DATA { ex:author9 foaf:family_name \"Glinz\" ; ont:team ex:team9 . }",
            )
            .unwrap();
            txn.commit().unwrap();
            let stats = m.durability_stats().unwrap();
            assert_eq!(stats.commits_appended, 2, "one unit per transaction");
        }
        let (reopened, report) = durable_mediator(&dir);
        assert_eq!(report.commits_replayed, 2);
        assert_eq!(reopened.database().row_count("author").unwrap(), 4);
        assert_eq!(reopened.database().row_count("team").unwrap(), 3);
        assert_eq!(
            reopened
                .select("SELECT ?x WHERE { ?x foaf:family_name \"Gall\" . }")
                .unwrap()
                .len(),
            1
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rolled_back_and_rejected_work_is_never_logged() {
        let dir = scratch_dir();
        {
            let (m, _) = durable_mediator(&dir);
            // Rejected operation inside a surviving transaction: the
            // savepoint-rolled-back rows must not reach the log.
            let mut txn = m.write();
            txn.update("INSERT DATA { ex:team9 foaf:name \"T9\" . }")
                .unwrap();
            let err = txn
                .update("INSERT DATA { ex:author8 ont:team ex:team424242 . }")
                .unwrap_err();
            assert!(matches!(err, OntoError::DanglingObject { .. }));
            txn.commit().unwrap();
            // A fully rolled-back transaction logs nothing at all.
            let mut txn = m.write();
            txn.update("INSERT DATA { ex:team10 foaf:name \"T10\" . }")
                .unwrap();
            txn.rollback().unwrap();
            assert_eq!(m.durability_stats().unwrap().commits_appended, 1);
        }
        let (reopened, _) = durable_mediator(&dir);
        assert_eq!(reopened.database().row_count("team").unwrap(), 3);
        assert_eq!(reopened.database().row_count("author").unwrap(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_wal_and_recovers_from_snapshot() {
        let dir = scratch_dir();
        {
            let (m, _) = durable_mediator(&dir);
            m.execute_update("INSERT DATA { ex:team9 foaf:name \"T9\" . }")
                .unwrap();
            let wal_before = m.durability_stats().unwrap().wal_bytes;
            let seq = m.checkpoint().unwrap();
            let stats = m.durability_stats().unwrap();
            assert!(stats.wal_bytes < wal_before, "checkpoint truncates the log");
            assert_eq!(stats.last_snapshot_seq, Some(seq));
            // Post-checkpoint commits land in the fresh log suffix.
            m.execute_update("INSERT DATA { ex:team10 foaf:name \"T10\" . }")
                .unwrap();
        }
        let (reopened, report) = durable_mediator(&dir);
        assert_eq!(report.snapshot_seq, Some(1));
        assert_eq!(report.commits_replayed, 1);
        assert_eq!(reopened.database().row_count("team").unwrap(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_commits_and_checkpoints_make_progress() {
        // Regression guard for the checkpoint/group-fsync lock
        // ordering: checkpoints claim the sync token while holding the
        // append lock, committers fsync without ever holding both — a
        // deadlock here hangs this test (and CI kills it).
        let dir = scratch_dir();
        let (m, _) = durable_mediator(&dir);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let m = m.clone();
                scope.spawn(move || {
                    for i in 0..20u64 {
                        let id = 930_000 + t * 1_000 + i;
                        m.execute_update(&format!(
                            "INSERT DATA {{ ex:author{id} foaf:family_name \"C{id}\" . }}"
                        ))
                        .unwrap();
                    }
                });
            }
            for _ in 0..10 {
                m.checkpoint().unwrap();
            }
        });
        m.checkpoint().unwrap();
        assert_eq!(m.database().row_count("author").unwrap(), 2 + 80);
        // Everything was committed durably: a reopen sees all of it.
        drop(m);
        let (reopened, _) = durable_mediator(&dir);
        assert_eq!(reopened.database().row_count("author").unwrap(), 2 + 80);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_without_durability_is_unsupported() {
        let m = mediator();
        assert!(!m.is_durable());
        assert!(m.durability_stats().is_none());
        assert!(matches!(m.checkpoint(), Err(OntoError::Unsupported { .. })));
    }

    #[test]
    fn replica_applies_leader_wal_and_redirects_writes() {
        let dir = scratch_dir();
        let (leader, _) = durable_mediator(&dir);
        leader
            .execute_update("INSERT DATA { ex:team9 foaf:name \"T9\" . }")
            .unwrap();

        // Bootstrap exactly as a follower would: snapshot bytes decoded
        // against the local schema (fingerprint checked), dictionary
        // adopted, replica numbered from the snapshot's sequence.
        let (snap_seq, snap_bytes) = leader.latest_snapshot_bytes().unwrap();
        let (db, mapping) = fixture_db_with_rows();
        let (decoded_seq, base, mut dict) =
            dur::snapshot::decode_snapshot(&snap_bytes, db.schema()).unwrap();
        assert_eq!(decoded_seq, snap_seq);
        let replica = Mediator::new_replica(base, mapping, "127.0.0.1:7878", snap_seq).unwrap();
        assert_eq!(replica.replica_of(), Some("127.0.0.1:7878"));
        assert_eq!(replica.concurrency_stats().current_version, snap_seq);

        // Tail the leader's WAL once and apply every unit past the
        // snapshot.
        let position = leader.wal_position().unwrap();
        let fetched = leader
            .fetch_wal(
                dur::wal::WAL_MAGIC.len() as u64,
                position.epoch,
                std::time::Duration::ZERO,
            )
            .unwrap();
        let dur::WalFetch::Data { bytes, .. } = fetched else {
            panic!("leader has committed units to ship");
        };
        for unit in dur::wal::scan_records(&bytes, &mut dict).units {
            if unit.seq > snap_seq {
                replica.apply_replicated(unit.seq, &unit.ops).unwrap();
            }
        }
        assert_eq!(
            replica.concurrency_stats().current_version,
            leader.concurrency_stats().current_version
        );
        assert_eq!(replica.database().row_count("team").unwrap(), 3);

        // Local writes are refused with the leader's address, on every
        // entry point a transport routes through.
        let err = replica
            .execute_update("INSERT DATA { ex:team10 foaf:name \"X\" . }")
            .unwrap_err();
        assert!(
            matches!(&err, OntoError::ReadOnlyReplica { leader } if leader == "127.0.0.1:7878")
        );
        assert!(err.hint().unwrap().contains("127.0.0.1:7878"));
        let err = replica
            .execute_script("INSERT DATA { ex:team10 foaf:name \"X\" . }", true)
            .unwrap_err();
        assert!(matches!(err.error, OntoError::ReadOnlyReplica { .. }));
        let (_, result) =
            replica.execute_update_with_feedback("INSERT DATA { ex:team10 foaf:name \"X\" . }");
        assert!(matches!(result, Err(OntoError::ReadOnlyReplica { .. })));
        // A replica has no durability of its own: checkpoint and WAL
        // serving are unsupported (a cascading follower gets a 501).
        assert!(matches!(
            replica.checkpoint(),
            Err(OntoError::Unsupported { .. })
        ));
        assert!(matches!(
            replica.fetch_wal(8, 0, std::time::Duration::ZERO),
            Err(OntoError::Unsupported { .. })
        ));
        assert!(replica.wal_position().is_none());

        // Re-bootstrap path: install a fresh base wholesale.
        let (snap_seq2, snap_bytes2) = {
            leader.checkpoint().unwrap();
            leader
                .execute_update("INSERT DATA { ex:team11 foaf:name \"Y\" . }")
                .unwrap();
            leader.checkpoint().unwrap();
            leader.latest_snapshot_bytes().unwrap()
        };
        let (_, base2, _) = dur::snapshot::decode_snapshot(&snap_bytes2, db.schema()).unwrap();
        replica.install_replica_base(base2, snap_seq2).unwrap();
        assert_eq!(replica.concurrency_stats().current_version, snap_seq2);
        assert_eq!(replica.database().row_count("team").unwrap(), 4);
        drop(leader);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn query_through_read_session_matches_mediator() {
        let m = mediator();
        let session = m.read();
        let uri = rdf::Iri::parse("http://example.org/db/author6").unwrap();
        assert_eq!(session.describe(&uri).unwrap(), m.describe(&uri).unwrap());
        assert_eq!(session.materialize().unwrap(), m.materialize().unwrap());
    }
}
