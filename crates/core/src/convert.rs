//! Conversions between RDF terms and SQL values, fixed by the mapping.
//!
//! These conversions define the *canonical RDF view* of the database: the
//! same functions are used by the translator (term → value on the way
//! in) and by [`mod@crate::materialize`] (value → term on the way out), so
//! the two directions compose to the identity on the supported types —
//! the bijectivity that, per the paper's §2 discussion of view updates,
//! sidesteps the hardest parts of the view update problem.

use crate::error::OntoError;
use rdf::{Literal, LiteralKind, Term};
use rel::{SqlType, Value};
use std::borrow::Cow;

/// Convert an RDF literal to a SQL value for a column of type `ty`.
///
/// Plain literals are accepted for every type when their lexical form
/// parses (the paper's Listing 15 writes `ont:pubYear "2009"` into an
/// INTEGER column); typed literals must be of a compatible datatype.
pub fn literal_to_value(lit: &Literal, ty: SqlType) -> Result<Value, String> {
    match ty {
        SqlType::Integer => lit
            .as_int()
            .map(Value::Int)
            .ok_or_else(|| format!("{lit} is not an integer")),
        SqlType::Double => lit
            .as_double()
            .map(Value::Double)
            .ok_or_else(|| format!("{lit} is not a number")),
        SqlType::Boolean => match lit.as_bool() {
            Some(b) => Ok(Value::Bool(b)),
            None => match lit.lexical() {
                "true" if plainish(lit) => Ok(Value::Bool(true)),
                "false" if plainish(lit) => Ok(Value::Bool(false)),
                _ => Err(format!("{lit} is not a boolean")),
            },
        },
        SqlType::Varchar => {
            if lit.is_stringy() {
                Ok(Value::text(lit.lexical()))
            } else {
                Err(format!("{lit} is not a string"))
            }
        }
    }
}

fn plainish(lit: &Literal) -> bool {
    matches!(lit.kind(), LiteralKind::Plain)
}

/// Convert a SQL value to its canonical RDF literal.
///
/// NULL has no triple (the attribute is simply absent from the RDF
/// view), so this returns `None` for NULL.
pub fn value_to_literal(value: &Value) -> Option<Literal> {
    match value {
        Value::Null => None,
        Value::Int(i) => Some(Literal::integer(*i)),
        // Borrow the interned copy out of the dictionary — result
        // materialization decodes without cloning string bytes.
        Value::Text(s) => Some(Literal::plain_shared(s.as_str())),
        Value::Bool(b) => Some(Literal::boolean(*b)),
        Value::Double(d) => Some(Literal::double(*d)),
    }
}

/// Convert a SQL value to an RDF term (literal form).
pub fn value_to_term(value: &Value) -> Option<Term> {
    value_to_literal(value).map(Term::Literal)
}

/// Parse a URI-pattern-extracted string (always textual) into the value
/// of a typed key column. Used when Algorithm 1 extracts `"1"` from
/// `…/author1` for the INTEGER attribute `id`.
pub fn pattern_value(raw: &str, ty: SqlType) -> Result<Value, String> {
    match ty {
        SqlType::Integer => raw
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| format!("{raw:?} is not an integer key")),
        SqlType::Varchar => Ok(Value::text(raw)),
        SqlType::Boolean => match raw {
            "true" | "1" => Ok(Value::Bool(true)),
            "false" | "0" => Ok(Value::Bool(false)),
            _ => Err(format!("{raw:?} is not a boolean key")),
        },
        SqlType::Double => raw
            .parse::<f64>()
            .map(Value::Double)
            .map_err(|_| format!("{raw:?} is not a numeric key")),
    }
}

/// Render a value for URI pattern substitution (inverse of
/// [`pattern_value`] on the lexical level). Text values borrow out of
/// the dictionary; numeric values still format into owned strings.
pub fn value_to_pattern(value: &Value) -> Option<Cow<'static, str>> {
    match value {
        Value::Null => None,
        Value::Int(i) => Some(Cow::Owned(i.to_string())),
        Value::Text(s) => Some(Cow::Borrowed(s.as_str())),
        Value::Bool(b) => Some(Cow::Owned(b.to_string())),
        Value::Double(d) => Some(Cow::Owned(format!("{d:?}"))),
    }
}

/// "Does the stored value equal the literal in the request?" — the
/// comparison DELETE DATA uses to verify the triple it removes actually
/// exists (value semantics: plain `"5"` matches stored integer 5).
pub fn literal_matches_value(lit: &Literal, value: &Value) -> bool {
    match value {
        Value::Null => false,
        Value::Int(i) => lit.as_int() == Some(*i),
        Value::Text(s) => lit.is_stringy() && lit.lexical() == s.as_str(),
        Value::Bool(b) => {
            lit.as_bool() == Some(*b)
                || (plainish(lit) && lit.lexical() == if *b { "true" } else { "false" })
        }
        Value::Double(d) => lit.as_double() == Some(*d),
    }
}

/// Helper composing [`literal_to_value`] with an [`OntoError`] payload.
pub fn object_literal_to_value(
    object: &Term,
    table: &str,
    attribute: &str,
    ty: SqlType,
) -> Result<Value, OntoError> {
    let lit = object
        .as_literal()
        .ok_or_else(|| OntoError::ValueIncompatible {
            table: table.to_owned(),
            attribute: attribute.to_owned(),
            value: object.clone(),
            reason: "a data property requires a literal object".into(),
        })?;
    literal_to_value(lit, ty).map_err(|reason| OntoError::ValueIncompatible {
        table: table.to_owned(),
        attribute: attribute.to_owned(),
        value: object.clone(),
        reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_literal_into_integer_column() {
        // Listing 15: ont:pubYear "2009" lands in INTEGER year.
        assert_eq!(
            literal_to_value(&Literal::plain("2009"), SqlType::Integer),
            Ok(Value::Int(2009))
        );
        assert!(literal_to_value(&Literal::plain("soon"), SqlType::Integer).is_err());
    }

    #[test]
    fn typed_literal_conversions() {
        assert_eq!(
            literal_to_value(&Literal::integer(5), SqlType::Integer),
            Ok(Value::Int(5))
        );
        assert_eq!(
            literal_to_value(&Literal::boolean(true), SqlType::Boolean),
            Ok(Value::Bool(true))
        );
        assert_eq!(
            literal_to_value(&Literal::string("Mr"), SqlType::Varchar),
            Ok(Value::text("Mr"))
        );
        // Integer literal does not silently become a string.
        assert!(literal_to_value(&Literal::integer(5), SqlType::Varchar).is_err());
    }

    #[test]
    fn round_trip_value_literal_value() {
        for v in [
            Value::Int(42),
            Value::text("Hert"),
            Value::Bool(false),
            Value::Double(1.5),
        ] {
            let lit = value_to_literal(&v).unwrap();
            let ty = v.sql_type().unwrap();
            assert_eq!(literal_to_value(&lit, ty), Ok(v));
        }
    }

    #[test]
    fn null_has_no_literal() {
        assert_eq!(value_to_literal(&Value::Null), None);
    }

    #[test]
    fn pattern_value_round_trip() {
        let v = pattern_value("6", SqlType::Integer).unwrap();
        assert_eq!(v, Value::Int(6));
        assert_eq!(value_to_pattern(&v).as_deref(), Some("6"));
        assert!(pattern_value("abc", SqlType::Integer).is_err());
    }

    #[test]
    fn literal_matching_is_by_value() {
        assert!(literal_matches_value(&Literal::plain("5"), &Value::Int(5)));
        assert!(literal_matches_value(&Literal::integer(5), &Value::Int(5)));
        assert!(!literal_matches_value(&Literal::plain("5"), &Value::Int(6)));
        assert!(literal_matches_value(
            &Literal::plain("Hert"),
            &Value::text("Hert")
        ));
        assert!(!literal_matches_value(&Literal::plain("x"), &Value::Null));
    }

    #[test]
    fn object_literal_error_payload() {
        let err = object_literal_to_value(
            &Term::iri("http://example.org/x"),
            "author",
            "lastname",
            SqlType::Varchar,
        )
        .unwrap_err();
        assert!(matches!(err, OntoError::ValueIncompatible { .. }));
    }
}
