//! OntoAccess — ontology-based **write** access to relational databases
//! via SPARQL/Update, reproducing Hert, Reif, Gall: *Updating Relational
//! Data via SPARQL/Update* (EDBT 2010).
//!
//! The mediator translates SPARQL/Update operations into SQL DML using
//! an update-aware R3M mapping and executes them transactionally:
//!
//! * [`translate`] — Algorithm 1: `INSERT DATA` / `DELETE DATA` → SQL
//! * [`modify`] — Algorithm 2: `MODIFY` → SELECT + per-binding DATA ops
//! * [`query`] — SPARQL `SELECT`/`ASK` → SQL (needed by Algorithm 2,
//!   and the read path of the endpoint)
//! * [`mod@materialize`] — the virtual RDF view of the database
//! * [`feedback`] — the semantically rich feedback protocol (§3/§8)
//! * [`mediator`] — the concurrent mediator core: a shared [`Mediator`]
//!   handing out [`ReadSession`]s and [`WriteTxn`]s
//! * [`endpoint`] — the single-owner facade over it (compat wrapper)
//! * [`usecase`] — the paper's publication use case (Figs. 1-2, Table 1)
//!
//! # Example
//!
//! One shared mediator; writes go through an exclusive transaction in
//! which each operation is a savepoint scope, reads through cheap
//! `Send + Sync` sessions:
//!
//! ```
//! use ontoaccess::{usecase, Mediator};
//!
//! let mediator = Mediator::new(usecase::database(), usecase::mapping()).unwrap();
//!
//! // Write: one transaction, each operation individually atomic.
//! let mut txn = mediator.write();
//! txn.update(
//!     "INSERT DATA { ex:team4 foaf:name \"Database Technology\" ; \
//!      ont:teamCode \"DBTG\" . }",
//! )
//! .unwrap();
//! txn.commit().unwrap();
//!
//! // Read: any number of sessions, `&self`, in parallel.
//! let session = mediator.read();
//! let sols = session
//!     .select("SELECT ?code WHERE { ex:team4 ont:teamCode ?code . }")
//!     .unwrap();
//! assert_eq!(sols.len(), 1);
//! ```
//!
//! The pre-concurrency facade keeps working (it wraps a [`Mediator`]):
//!
//! ```
//! use ontoaccess::{usecase, Endpoint};
//!
//! let mut ep = Endpoint::new(usecase::database(), usecase::mapping()).unwrap();
//! ep.execute_update("INSERT DATA { ex:team9 foaf:name \"T9\" . }")
//!     .unwrap();
//! assert_eq!(ep.select("SELECT ?n WHERE { ex:team9 foaf:name ?n . }").unwrap().len(), 1);
//! ```

#![warn(missing_docs)]
// Rejections are this system's *product* (the feedback protocol turns
// them into client-facing RDF documents), so OntoError deliberately
// carries rich payloads; boxing every error would buy nothing here.
#![allow(clippy::result_large_err)]

pub mod convert;
pub mod endpoint;
pub mod error;
pub mod feedback;
pub mod materialize;
pub mod mediator;
pub mod modify;
pub mod query;
pub mod translate;
pub mod usecase;

mod testutil;

pub use endpoint::Endpoint;
pub use error::{OntoError, OntoResult};
pub use feedback::Feedback;
pub use materialize::materialize;
pub use mediator::{
    CommitProfile, ConcurrencyStats, DatabaseReadGuard, DatabaseVersion, DatabaseWriteGuard,
    JoinPlan, Mediator, QueryCacheStats, QueryExplain, QueryProfile, ReadSession, ScriptError,
    UpdateOutcome, UpdateProfile, WriteTxn,
};
pub use modify::{
    execute_modify, execute_modify_reference, execute_update_op, execute_update_op_reference,
    ModifyReport,
};
pub use query::{
    compile_select, ensure_join_indexes, execute_query, execute_select, run_compiled,
    CompiledQuery, VarShape,
};
pub use translate::{
    emit_grouped, emit_per_row, execute_sorted, execute_sorted_reference, execute_sorted_timed,
    group_by_subject, identify, ExecutionReport, RowOp, TranslateOptions, WriteScope,
};
