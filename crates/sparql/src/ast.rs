//! Abstract syntax for the SPARQL fragment OntoAccess consumes and the
//! three SPARQL/Update operations of the 2008 member submission the
//! paper targets (§5): `INSERT DATA`, `DELETE DATA`, and `MODIFY`.

use rdf::{Iri, Literal, Term, Triple};
use std::fmt;

/// A SPARQL variable name (without the `?`/`$` sigil).
pub type Variable = String;

/// Subject/predicate/object position in a triple pattern: a concrete RDF
/// term or a variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TermPattern {
    /// Concrete term.
    Term(Term),
    /// Variable.
    Variable(Variable),
}

impl TermPattern {
    /// Variable shorthand.
    pub fn var(name: &str) -> TermPattern {
        TermPattern::Variable(name.to_owned())
    }

    /// IRI shorthand.
    pub fn iri(iri: Iri) -> TermPattern {
        TermPattern::Term(Term::Iri(iri))
    }

    /// Literal shorthand.
    pub fn literal(lit: Literal) -> TermPattern {
        TermPattern::Term(Term::Literal(lit))
    }

    /// The variable name if this is a variable.
    pub fn as_variable(&self) -> Option<&str> {
        match self {
            TermPattern::Variable(v) => Some(v),
            TermPattern::Term(_) => None,
        }
    }

    /// The concrete term if this is one.
    pub fn as_term(&self) -> Option<&Term> {
        match self {
            TermPattern::Term(t) => Some(t),
            TermPattern::Variable(_) => None,
        }
    }

    /// Whether this position is ground (not a variable).
    pub fn is_ground(&self) -> bool {
        matches!(self, TermPattern::Term(_))
    }
}

impl fmt::Display for TermPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermPattern::Term(t) => t.fmt(f),
            TermPattern::Variable(v) => write!(f, "?{v}"),
        }
    }
}

/// A triple pattern (template position in MODIFY, or WHERE-clause
/// pattern).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TriplePattern {
    /// Subject position.
    pub subject: TermPattern,
    /// Predicate position.
    pub predicate: TermPattern,
    /// Object position.
    pub object: TermPattern,
}

impl TriplePattern {
    /// Build a pattern.
    pub fn new(subject: TermPattern, predicate: TermPattern, object: TermPattern) -> Self {
        TriplePattern {
            subject,
            predicate,
            object,
        }
    }

    /// Convert to a ground [`Triple`] if all positions are concrete terms
    /// with an IRI predicate.
    pub fn to_triple(&self) -> Option<Triple> {
        let s = self.subject.as_term()?.clone();
        let p = match self.predicate.as_term()? {
            Term::Iri(iri) => iri.clone(),
            _ => return None,
        };
        let o = self.object.as_term()?.clone();
        if !s.is_subject_term() {
            return None;
        }
        Some(Triple::new(s, p, o))
    }

    /// Variables mentioned by this pattern.
    pub fn variables(&self) -> Vec<&str> {
        [&self.subject, &self.predicate, &self.object]
            .into_iter()
            .filter_map(TermPattern::as_variable)
            .collect()
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// Comparison operators usable in `FILTER`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A `FILTER` expression (boolean combination of comparisons and
/// `BOUND`).
#[derive(Debug, Clone, PartialEq)]
pub enum FilterExpr {
    /// `lhs OP rhs`.
    Compare {
        /// Operator.
        op: CompareOp,
        /// Left operand.
        left: TermPattern,
        /// Right operand.
        right: TermPattern,
    },
    /// `BOUND(?v)`.
    Bound(Variable),
    /// `expr && expr`.
    And(Box<FilterExpr>, Box<FilterExpr>),
    /// `expr || expr`.
    Or(Box<FilterExpr>, Box<FilterExpr>),
    /// `!expr`.
    Not(Box<FilterExpr>),
}

impl FilterExpr {
    /// Variables mentioned by this filter.
    pub fn variables(&self) -> Vec<&str> {
        match self {
            FilterExpr::Compare { left, right, .. } => [left, right]
                .into_iter()
                .filter_map(TermPattern::as_variable)
                .collect(),
            FilterExpr::Bound(v) => vec![v],
            FilterExpr::And(a, b) | FilterExpr::Or(a, b) => {
                let mut vars = a.variables();
                vars.extend(b.variables());
                vars
            }
            FilterExpr::Not(inner) => inner.variables(),
        }
    }
}

/// A group graph pattern: a basic graph pattern plus filters.
///
/// This is the fragment Algorithm 2 needs (the MODIFY `WHERE` clause);
/// `OPTIONAL`/`UNION` are outside the paper's scope.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupPattern {
    /// Triple patterns, joined.
    pub patterns: Vec<TriplePattern>,
    /// FILTER constraints.
    pub filters: Vec<FilterExpr>,
}

impl GroupPattern {
    /// All variables mentioned in patterns (filter-only variables are
    /// not solution variables).
    pub fn variables(&self) -> Vec<String> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for p in &self.patterns {
            for v in p.variables() {
                if seen.insert(v.to_owned()) {
                    out.push(v.to_owned());
                }
            }
        }
        out
    }
}

/// Projection of a SELECT query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Projection {
    /// `SELECT *` — all pattern variables.
    Star,
    /// Explicit variable list.
    Variables(Vec<Variable>),
}

/// `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// `DISTINCT` modifier.
    pub distinct: bool,
    /// Projected variables.
    pub projection: Projection,
    /// WHERE clause.
    pub pattern: GroupPattern,
    /// `LIMIT n`.
    pub limit: Option<usize>,
}

/// `ASK` query.
#[derive(Debug, Clone, PartialEq)]
pub struct AskQuery {
    /// WHERE clause.
    pub pattern: GroupPattern,
}

/// Any read query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// `SELECT`.
    Select(SelectQuery),
    /// `ASK`.
    Ask(AskQuery),
}

/// One SPARQL/Update operation (2008 member submission §5; the paper's
/// Listings 6-8).
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// `INSERT DATA { triples }` — ground triples to add.
    InsertData {
        /// Triples to insert.
        triples: Vec<Triple>,
    },
    /// `DELETE DATA { triples }` — ground triples to remove.
    DeleteData {
        /// Triples to remove.
        triples: Vec<Triple>,
    },
    /// `MODIFY DELETE { template } INSERT { template } WHERE { pattern }`.
    ///
    /// Also produced by the SPARQL 1.1 spelling
    /// `DELETE { … } INSERT { … } WHERE { … }` and the one-sided
    /// `DELETE WHERE` / `INSERT WHERE` forms.
    Modify {
        /// DELETE template (may be empty).
        delete: Vec<TriplePattern>,
        /// INSERT template (may be empty).
        insert: Vec<TriplePattern>,
        /// Shared WHERE clause.
        pattern: GroupPattern,
    },
}

impl UpdateOp {
    /// Human-readable operation name (used in feedback documents).
    pub fn name(&self) -> &'static str {
        match self {
            UpdateOp::InsertData { .. } => "INSERT DATA",
            UpdateOp::DeleteData { .. } => "DELETE DATA",
            UpdateOp::Modify { .. } => "MODIFY",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::namespace::foaf;

    #[test]
    fn ground_pattern_converts_to_triple() {
        let p = TriplePattern::new(
            TermPattern::Term(Term::iri("http://example.org/db/author6")),
            TermPattern::iri(foaf::mbox()),
            TermPattern::Term(Term::iri("mailto:hert@ifi.uzh.ch")),
        );
        let t = p.to_triple().unwrap();
        assert_eq!(t.predicate, foaf::mbox());
    }

    #[test]
    fn variable_pattern_does_not_convert() {
        let p = TriplePattern::new(
            TermPattern::var("x"),
            TermPattern::iri(foaf::mbox()),
            TermPattern::var("mbox"),
        );
        assert_eq!(p.to_triple(), None);
    }

    #[test]
    fn literal_subject_does_not_convert() {
        let p = TriplePattern::new(
            TermPattern::literal(Literal::plain("bad")),
            TermPattern::iri(foaf::mbox()),
            TermPattern::var("o"),
        );
        assert_eq!(p.to_triple(), None);
    }

    #[test]
    fn pattern_variables_deduplicated_in_group() {
        let group = GroupPattern {
            patterns: vec![
                TriplePattern::new(
                    TermPattern::var("x"),
                    TermPattern::iri(foaf::firstName()),
                    TermPattern::var("n"),
                ),
                TriplePattern::new(
                    TermPattern::var("x"),
                    TermPattern::iri(foaf::mbox()),
                    TermPattern::var("mbox"),
                ),
            ],
            filters: vec![],
        };
        assert_eq!(group.variables(), vec!["x", "n", "mbox"]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TermPattern::var("x").to_string(), "?x");
        let p = TriplePattern::new(
            TermPattern::var("x"),
            TermPattern::iri(foaf::mbox()),
            TermPattern::var("m"),
        );
        assert_eq!(p.to_string(), "?x <http://xmlns.com/foaf/0.1/mbox> ?m .");
    }

    #[test]
    fn filter_variables() {
        let f = FilterExpr::And(
            Box::new(FilterExpr::Compare {
                op: CompareOp::Gt,
                left: TermPattern::var("year"),
                right: TermPattern::literal(Literal::integer(2000)),
            }),
            Box::new(FilterExpr::Bound("x".into())),
        );
        assert_eq!(f.variables(), vec!["year", "x"]);
    }

    #[test]
    fn update_names() {
        assert_eq!(
            UpdateOp::InsertData { triples: vec![] }.name(),
            "INSERT DATA"
        );
        assert_eq!(
            UpdateOp::Modify {
                delete: vec![],
                insert: vec![],
                pattern: GroupPattern::default()
            }
            .name(),
            "MODIFY"
        );
    }
}
