//! Tokenizer for SPARQL queries and SPARQL/Update operations.
//!
//! The main subtlety over the Turtle lexer is `<`: it opens an IRI
//! reference (`<http://…>`) but is also the less-than operator inside
//! `FILTER`. An IRI reference is recognized when a `>` appears before
//! any whitespace; otherwise `<` lexes as an operator.

use std::fmt;

/// A token with its 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Payload.
    pub kind: TokenKind,
    /// Line.
    pub line: usize,
    /// Column.
    pub column: usize,
}

/// SPARQL token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Bare word: keyword (`SELECT`, `INSERT`, …), `a`, or boolean.
    Word(String),
    /// `?name` or `$name`.
    Variable(String),
    /// `<…>` IRI reference.
    IriRef(String),
    /// `prefix:local`.
    PrefixedName {
        /// Namespace prefix.
        prefix: String,
        /// Local part.
        local: String,
    },
    /// `_:label`.
    BlankNodeLabel(String),
    /// String literal content (unescaped).
    StringLiteral(String),
    /// `@lang`.
    LangTag(String),
    /// Integer literal.
    Integer(i64),
    /// Decimal literal (lexical form preserved).
    Decimal(String),
    /// `^^`.
    DatatypeMarker,
    /// Punctuation and operators: `{ } ( ) . ; , * = != < <= > >= && || !`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Word(w) => write!(f, "{w}"),
            TokenKind::Variable(v) => write!(f, "?{v}"),
            TokenKind::IriRef(iri) => write!(f, "<{iri}>"),
            TokenKind::PrefixedName { prefix, local } => write!(f, "{prefix}:{local}"),
            TokenKind::BlankNodeLabel(l) => write!(f, "_:{l}"),
            TokenKind::StringLiteral(s) => write!(f, "\"{s}\""),
            TokenKind::LangTag(t) => write!(f, "@{t}"),
            TokenKind::Integer(i) => write!(f, "{i}"),
            TokenKind::Decimal(d) => write!(f, "{d}"),
            TokenKind::DatatypeMarker => write!(f, "^^"),
            TokenKind::Punct(p) => write!(f, "{p}"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// Lexer error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// Line.
    pub line: usize,
    /// Column.
    pub column: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a SPARQL document.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let mut lexer = Lexer {
        input,
        bytes: input.as_bytes(),
        pos: 0,
        line: 1,
        column: 1,
    };
    let mut tokens = Vec::new();
    loop {
        let token = lexer.next_token()?;
        let eof = token.kind == TokenKind::Eof;
        tokens.push(token);
        if eof {
            return Ok(tokens);
        }
    }
}

struct Lexer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    column: usize,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.input[self.pos..].chars();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            line: self.line,
            column: self.column,
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    // Whether `<` at the current position opens an IRI reference:
    // a matching `>` occurs before any whitespace.
    fn lt_is_iri(&self) -> bool {
        for &b in &self.bytes[self.pos + 1..] {
            match b {
                b'>' => return true,
                b if (b as char).is_ascii_whitespace() => return false,
                _ => {}
            }
        }
        false
    }

    fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_trivia();
        let (line, column) = (self.line, self.column);
        let token = |kind| Token { kind, line, column };
        let Some(c) = self.peek() else {
            return Ok(token(TokenKind::Eof));
        };
        match c {
            '{' | '}' | '(' | ')' | '.' | ';' | ',' | '*' | '=' => {
                // '.' may begin a decimal — not in our fragment; treat as punct.
                self.bump();
                let p = match c {
                    '{' => "{",
                    '}' => "}",
                    '(' => "(",
                    ')' => ")",
                    '.' => ".",
                    ';' => ";",
                    ',' => ",",
                    '*' => "*",
                    _ => "=",
                };
                Ok(token(TokenKind::Punct(p)))
            }
            '!' => {
                self.bump();
                if self.peek() == Some('=') {
                    self.bump();
                    Ok(token(TokenKind::Punct("!=")))
                } else {
                    Ok(token(TokenKind::Punct("!")))
                }
            }
            '&' => {
                self.bump();
                if self.peek() == Some('&') {
                    self.bump();
                    Ok(token(TokenKind::Punct("&&")))
                } else {
                    Err(self.error("single '&' (expected '&&')"))
                }
            }
            '|' => {
                self.bump();
                if self.peek() == Some('|') {
                    self.bump();
                    Ok(token(TokenKind::Punct("||")))
                } else {
                    Err(self.error("single '|' (expected '||')"))
                }
            }
            '<' => {
                if self.lt_is_iri() {
                    self.bump();
                    let mut iri = String::new();
                    loop {
                        match self.bump() {
                            Some('>') => break,
                            Some(c) => iri.push(c),
                            None => return Err(self.error("unterminated IRI reference")),
                        }
                    }
                    Ok(token(TokenKind::IriRef(iri)))
                } else {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Ok(token(TokenKind::Punct("<=")))
                    } else {
                        Ok(token(TokenKind::Punct("<")))
                    }
                }
            }
            '>' => {
                self.bump();
                if self.peek() == Some('=') {
                    self.bump();
                    Ok(token(TokenKind::Punct(">=")))
                } else {
                    Ok(token(TokenKind::Punct(">")))
                }
            }
            '?' | '$' => {
                self.bump();
                let name = self.read_name();
                if name.is_empty() {
                    return Err(self.error("empty variable name"));
                }
                Ok(token(TokenKind::Variable(name)))
            }
            '"' => {
                self.bump();
                let s = self.read_string()?;
                Ok(token(TokenKind::StringLiteral(s)))
            }
            '@' => {
                self.bump();
                let mut tag = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '-' {
                        tag.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if tag.is_empty() {
                    return Err(self.error("'@' not followed by a language tag"));
                }
                Ok(token(TokenKind::LangTag(tag)))
            }
            '^' => {
                self.bump();
                if self.peek() == Some('^') {
                    self.bump();
                    Ok(token(TokenKind::DatatypeMarker))
                } else {
                    Err(self.error("single '^' (expected '^^')"))
                }
            }
            '_' if self.peek2() == Some(':') => {
                self.bump();
                self.bump();
                let label = self.read_name();
                if label.is_empty() {
                    return Err(self.error("empty blank node label"));
                }
                Ok(token(TokenKind::BlankNodeLabel(label)))
            }
            c if c == '+' || c == '-' || c.is_ascii_digit() => {
                let mut num = String::new();
                if c == '+' || c == '-' {
                    num.push(c);
                    self.bump();
                }
                let mut is_decimal = false;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        num.push(c);
                        self.bump();
                    } else if c == '.'
                        && !is_decimal
                        && self.peek2().is_some_and(|n| n.is_ascii_digit())
                    {
                        is_decimal = true;
                        num.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if is_decimal {
                    Ok(token(TokenKind::Decimal(num)))
                } else {
                    let value: i64 = num
                        .parse()
                        .map_err(|_| self.error(format!("invalid integer {num:?}")))?;
                    Ok(token(TokenKind::Integer(value)))
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let first = self.read_name();
                if self.peek() == Some(':') {
                    self.bump();
                    let local = self.read_name();
                    Ok(token(TokenKind::PrefixedName {
                        prefix: first,
                        local,
                    }))
                } else {
                    Ok(token(TokenKind::Word(first)))
                }
            }
            ':' => {
                self.bump();
                let local = self.read_name();
                Ok(token(TokenKind::PrefixedName {
                    prefix: String::new(),
                    local,
                }))
            }
            other => Err(self.error(format!("unexpected character {other:?}"))),
        }
    }

    fn read_name(&mut self) -> String {
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || matches!(c, '_' | '-') {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        name
    }

    fn read_string(&mut self) -> Result<String, LexError> {
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some(other) => return Err(self.error(format!("unknown escape '\\{other}'"))),
                    None => return Err(self.error("unterminated escape")),
                },
                Some('\n') => return Err(self.error("newline in string literal")),
                Some(c) => out.push(c),
                None => return Err(self.error("unterminated string literal")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn variables_both_sigils() {
        assert_eq!(
            kinds("?x $y"),
            vec![
                TokenKind::Variable("x".into()),
                TokenKind::Variable("y".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn iri_vs_less_than() {
        assert_eq!(
            kinds("<http://example.org/x>"),
            vec![
                TokenKind::IriRef("http://example.org/x".into()),
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("?year < 2009"),
            vec![
                TokenKind::Variable("year".into()),
                TokenKind::Punct("<"),
                TokenKind::Integer(2009),
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("?year <= 2009"),
            vec![
                TokenKind::Variable("year".into()),
                TokenKind::Punct("<="),
                TokenKind::Integer(2009),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn filter_operators() {
        assert_eq!(
            kinds("!= && || ! = >="),
            vec![
                TokenKind::Punct("!="),
                TokenKind::Punct("&&"),
                TokenKind::Punct("||"),
                TokenKind::Punct("!"),
                TokenKind::Punct("="),
                TokenKind::Punct(">="),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn keywords_are_words() {
        assert_eq!(
            kinds("INSERT DATA"),
            vec![
                TokenKind::Word("INSERT".into()),
                TokenKind::Word("DATA".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn prefixed_names_and_braces() {
        assert_eq!(
            kinds("{ ex:author6 foaf:mbox <mailto:x@y.ch> . }"),
            vec![
                TokenKind::Punct("{"),
                TokenKind::PrefixedName {
                    prefix: "ex".into(),
                    local: "author6".into()
                },
                TokenKind::PrefixedName {
                    prefix: "foaf".into(),
                    local: "mbox".into()
                },
                TokenKind::IriRef("mailto:x@y.ch".into()),
                TokenKind::Punct("."),
                TokenKind::Punct("}"),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_with_lang_and_datatype() {
        assert_eq!(
            kinds("\"2009\"^^xsd:integer \"hi\"@en"),
            vec![
                TokenKind::StringLiteral("2009".into()),
                TokenKind::DatatypeMarker,
                TokenKind::PrefixedName {
                    prefix: "xsd".into(),
                    local: "integer".into()
                },
                TokenKind::StringLiteral("hi".into()),
                TokenKind::LangTag("en".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn blank_node() {
        assert_eq!(
            kinds("_:b1"),
            vec![TokenKind::BlankNodeLabel("b1".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("# hi\n42"),
            vec![TokenKind::Integer(42), TokenKind::Eof]
        );
    }

    #[test]
    fn empty_default_prefix() {
        assert_eq!(
            kinds(":local"),
            vec![
                TokenKind::PrefixedName {
                    prefix: String::new(),
                    local: "local".into()
                },
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn position_tracking() {
        let err = tokenize("\n  %").unwrap_err();
        assert_eq!((err.line, err.column), (2, 3));
    }

    #[test]
    fn negative_integer() {
        assert_eq!(kinds("-5"), vec![TokenKind::Integer(-5), TokenKind::Eof]);
    }

    #[test]
    fn decimal() {
        assert_eq!(
            kinds("3.14"),
            vec![TokenKind::Decimal("3.14".into()), TokenKind::Eof]
        );
    }
}
