//! Native triple store update semantics.
//!
//! Applies SPARQL/Update operations directly to an [`rdf::Graph`] — the
//! behaviour of the "native triple store" the paper contrasts OntoAccess
//! against (§3: constraints absent, every update accepted). This module
//! is both the benchmark baseline and the reference for the semantic
//! equivalence property: OntoAccess-through-SQL must commute with these
//! semantics on valid updates.

use crate::ast::{GroupPattern, TermPattern, TriplePattern, UpdateOp};
use crate::eval::{match_group, Binding};
use rdf::{Graph, Term, Triple};
use std::fmt;

/// Error applying an update natively (only template instantiation can
/// fail: an unbound variable or a literal landing in subject position).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateError {
    /// Explanation.
    pub message: String,
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "update error: {}", self.message)
    }
}

impl std::error::Error for UpdateError {}

/// Statistics of one applied update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateStats {
    /// Triples actually inserted (not already present).
    pub inserted: usize,
    /// Triples actually removed (present before).
    pub deleted: usize,
    /// Bindings produced by the MODIFY WHERE clause (0 for DATA forms).
    pub bindings: usize,
}

/// Apply one SPARQL/Update operation to `graph` with native triple store
/// semantics.
///
/// For `MODIFY`, the WHERE clause is evaluated against the *pre-update*
/// graph; all deletions are applied before all insertions (member
/// submission semantics, matching SPARQL 1.1).
pub fn apply(graph: &mut Graph, op: &UpdateOp) -> Result<UpdateStats, UpdateError> {
    let mut stats = UpdateStats::default();
    match op {
        UpdateOp::InsertData { triples } => {
            for t in triples {
                if graph.insert(t.clone()) {
                    stats.inserted += 1;
                }
            }
        }
        UpdateOp::DeleteData { triples } => {
            for t in triples {
                if graph.remove(t) {
                    stats.deleted += 1;
                }
            }
        }
        UpdateOp::Modify {
            delete,
            insert,
            pattern,
        } => {
            let bindings = match_group(graph, pattern);
            stats.bindings = bindings.len();
            let deletions = instantiate_all(delete, &bindings, pattern)?;
            let insertions = instantiate_all(insert, &bindings, pattern)?;
            for t in deletions {
                if graph.remove(&t) {
                    stats.deleted += 1;
                }
            }
            for t in insertions {
                if graph.insert(t) {
                    stats.inserted += 1;
                }
            }
        }
    }
    Ok(stats)
}

/// Instantiate a template against every binding. Solutions that leave a
/// template variable unbound skip that template triple (SPARQL 1.1
/// semantics); a literal in subject position is an error.
pub fn instantiate_all(
    template: &[TriplePattern],
    bindings: &[Binding],
    pattern: &GroupPattern,
) -> Result<Vec<Triple>, UpdateError> {
    let known: Vec<String> = pattern.variables();
    let mut out = Vec::new();
    for binding in bindings {
        for tp in template {
            // A template variable that never occurs in the WHERE clause
            // can never be bound — reject loudly instead of silently
            // skipping every instantiation.
            for v in tp.variables() {
                if !known.iter().any(|k| k == v) {
                    return Err(UpdateError {
                        message: format!(
                            "template variable ?{v} does not occur in the WHERE clause"
                        ),
                    });
                }
            }
            match instantiate(tp, binding) {
                Ok(Some(t)) => out.push(t),
                Ok(None) => {} // unbound in this solution: skip
                Err(e) => return Err(e),
            }
        }
    }
    Ok(out)
}

/// Instantiate one template triple under one binding.
///
/// Returns `Ok(None)` when a template variable is unbound in this
/// binding, `Err` when instantiation produces an ill-formed triple.
pub fn instantiate(
    template: &TriplePattern,
    binding: &Binding,
) -> Result<Option<Triple>, UpdateError> {
    let subject = match fill(&template.subject, binding) {
        Some(t) => t,
        None => return Ok(None),
    };
    let predicate = match fill(&template.predicate, binding) {
        Some(Term::Iri(iri)) => iri,
        Some(other) => {
            return Err(UpdateError {
                message: format!("template predicate instantiated to non-IRI {other}"),
            })
        }
        None => return Ok(None),
    };
    let object = match fill(&template.object, binding) {
        Some(t) => t,
        None => return Ok(None),
    };
    if !subject.is_subject_term() {
        return Err(UpdateError {
            message: format!("template subject instantiated to literal {subject}"),
        });
    }
    Ok(Some(Triple::new(subject, predicate, object)))
}

fn fill(tp: &TermPattern, binding: &Binding) -> Option<Term> {
    match tp {
        TermPattern::Term(t) => Some(t.clone()),
        TermPattern::Variable(v) => binding.get(v).cloned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_update_with_prefixes;
    use rdf::namespace::{foaf, rdf_type, PrefixMap};
    use rdf::Literal;

    fn parse(input: &str) -> UpdateOp {
        parse_update_with_prefixes(input, PrefixMap::common()).unwrap()
    }

    fn author(n: u32) -> Term {
        Term::iri(&format!("http://example.org/db/author{n}"))
    }

    fn graph_with_hert() -> Graph {
        let mut g = Graph::new();
        g.insert(Triple::new(
            author(6),
            rdf_type(),
            Term::Iri(foaf::Person()),
        ));
        g.insert(Triple::new(
            author(6),
            foaf::firstName(),
            Literal::plain("Matthias"),
        ));
        g.insert(Triple::new(
            author(6),
            foaf::family_name(),
            Literal::plain("Hert"),
        ));
        g.insert(Triple::new(
            author(6),
            foaf::mbox(),
            Term::iri("mailto:hert@ifi.uzh.ch"),
        ));
        g
    }

    #[test]
    fn insert_data_adds_triples() {
        let mut g = Graph::new();
        let op = parse(
            "INSERT DATA { <http://example.org/db/team4> foaf:name \"Database Technology\" . }",
        );
        let stats = apply(&mut g, &op).unwrap();
        assert_eq!(stats.inserted, 1);
        assert_eq!(g.len(), 1);
        // Idempotent on repeat (set semantics).
        let stats = apply(&mut g, &op).unwrap();
        assert_eq!(stats.inserted, 0);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn delete_data_removes_known_triples() {
        let mut g = graph_with_hert();
        let op = parse(
            "DELETE DATA { <http://example.org/db/author6> foaf:mbox <mailto:hert@ifi.uzh.ch> . }",
        );
        let stats = apply(&mut g, &op).unwrap();
        assert_eq!(stats.deleted, 1);
        assert_eq!(g.len(), 3);
        // Deleting an absent triple is a no-op.
        let stats = apply(&mut g, &op).unwrap();
        assert_eq!(stats.deleted, 0);
    }

    #[test]
    fn modify_replaces_mbox_like_listing_11() {
        let mut g = graph_with_hert();
        let op = parse(
            "MODIFY\n\
             DELETE { ?x foaf:mbox ?mbox . }\n\
             INSERT { ?x foaf:mbox <mailto:hert@example.com> . }\n\
             WHERE { ?x a foaf:Person ; foaf:firstName \"Matthias\" ; \
                     foaf:family_name \"Hert\" ; foaf:mbox ?mbox . }",
        );
        let stats = apply(&mut g, &op).unwrap();
        assert_eq!(stats.bindings, 1);
        assert_eq!(stats.deleted, 1);
        assert_eq!(stats.inserted, 1);
        assert_eq!(
            g.object(&author(6), &foaf::mbox()),
            Some(Term::iri("mailto:hert@example.com"))
        );
    }

    #[test]
    fn modify_no_bindings_changes_nothing() {
        let mut g = graph_with_hert();
        let before = g.clone();
        let op = parse(
            "MODIFY DELETE { ?x foaf:mbox ?m . } INSERT { } \
             WHERE { ?x foaf:family_name \"Nobody\" ; foaf:mbox ?m . }",
        );
        let stats = apply(&mut g, &op).unwrap();
        assert_eq!(stats.bindings, 0);
        assert_eq!(g, before);
    }

    #[test]
    fn modify_multiple_bindings_applies_per_binding() {
        let mut g = graph_with_hert();
        g.insert(Triple::new(
            author(7),
            rdf_type(),
            Term::Iri(foaf::Person()),
        ));
        g.insert(Triple::new(
            author(7),
            foaf::mbox(),
            Term::iri("mailto:reif@ifi.uzh.ch"),
        ));
        let op = parse(
            "MODIFY DELETE { ?x foaf:mbox ?m . } INSERT { ?x foaf:mbox <mailto:all@uzh.ch> . } \
             WHERE { ?x a foaf:Person ; foaf:mbox ?m . }",
        );
        let stats = apply(&mut g, &op).unwrap();
        assert_eq!(stats.bindings, 2);
        assert_eq!(stats.deleted, 2);
        assert_eq!(stats.inserted, 2); // one triple per bound subject
        assert_eq!(
            g.object(&author(6), &foaf::mbox()),
            Some(Term::iri("mailto:all@uzh.ch"))
        );
    }

    #[test]
    fn where_evaluated_on_pre_update_state() {
        // Deleting the triple the WHERE clause matched must not stop the
        // insert of the same round.
        let mut g = graph_with_hert();
        let op = parse(
            "MODIFY DELETE { ?x foaf:family_name \"Hert\" . } \
             INSERT { ?x foaf:family_name \"HERT\" . } \
             WHERE { ?x foaf:family_name \"Hert\" . }",
        );
        let stats = apply(&mut g, &op).unwrap();
        assert_eq!(stats.deleted, 1);
        assert_eq!(stats.inserted, 1);
        assert_eq!(
            g.object(&author(6), &foaf::family_name()),
            Some(Term::plain("HERT"))
        );
    }

    #[test]
    fn template_variable_not_in_where_is_error() {
        let mut g = graph_with_hert();
        let op = parse(
            "MODIFY DELETE { ?x foaf:mbox ?nowhere . } INSERT { } \
             WHERE { ?x foaf:mbox ?m . }",
        );
        let err = apply(&mut g, &op).unwrap_err();
        assert!(err.message.contains("nowhere"));
    }

    #[test]
    fn delete_where_shorthand_deletes_matches() {
        let mut g = graph_with_hert();
        let op = parse("DELETE WHERE { ?x foaf:mbox ?m . }");
        let stats = apply(&mut g, &op).unwrap();
        assert_eq!(stats.deleted, 1);
        assert!(g.matching(None, Some(&foaf::mbox()), None).is_empty());
    }

    #[test]
    fn literal_subject_instantiation_is_error() {
        let mut g = graph_with_hert();
        // ?n binds to a literal and is used as template subject.
        let op = parse(
            "MODIFY DELETE { } INSERT { ?n a foaf:Person . } \
             WHERE { ?x foaf:firstName ?n . }",
        );
        assert!(apply(&mut g, &op).is_err());
    }
}
