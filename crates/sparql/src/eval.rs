//! SPARQL evaluation over an in-memory [`rdf::Graph`].
//!
//! This is the query engine of the *native triple store* the paper uses
//! as its conceptual baseline (§3), and the reference semantics against
//! which the OntoAccess relational translation is property-tested.

use crate::ast::{
    AskQuery, CompareOp, FilterExpr, GroupPattern, Projection, Query, SelectQuery, TermPattern,
    TriplePattern,
};
use rdf::{Graph, Iri, Term};
use std::collections::BTreeMap;

/// A solution mapping: variable name → bound term.
pub type Binding = BTreeMap<String, Term>;

/// Result of a SELECT: projected variable names plus solution rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Solutions {
    /// Projected variables (without `?`).
    pub variables: Vec<String>,
    /// One binding per solution; unbound projected variables are absent
    /// from the map.
    pub bindings: Vec<Binding>,
}

impl Solutions {
    /// Number of solutions.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether there are no solutions.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

/// Evaluate any query against a graph.
pub fn evaluate(graph: &Graph, query: &Query) -> QueryOutcome {
    match query {
        Query::Select(q) => QueryOutcome::Solutions(evaluate_select(graph, q)),
        Query::Ask(q) => QueryOutcome::Boolean(evaluate_ask(graph, q)),
    }
}

/// Outcome of [`evaluate`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// SELECT result.
    Solutions(Solutions),
    /// ASK result.
    Boolean(bool),
}

/// Evaluate a SELECT query.
pub fn evaluate_select(graph: &Graph, query: &SelectQuery) -> Solutions {
    let mut bindings = match_group(graph, &query.pattern);
    let variables = match &query.projection {
        Projection::Star => query.pattern.variables(),
        Projection::Variables(vars) => vars.clone(),
    };
    // Project.
    for binding in &mut bindings {
        binding.retain(|var, _| variables.contains(var));
    }
    if query.distinct {
        let mut seen = std::collections::BTreeSet::new();
        bindings.retain(|b| seen.insert(b.clone()));
    }
    if let Some(limit) = query.limit {
        bindings.truncate(limit);
    }
    Solutions {
        variables,
        bindings,
    }
}

/// Evaluate an ASK query.
pub fn evaluate_ask(graph: &Graph, query: &AskQuery) -> bool {
    !match_group(graph, &query.pattern).is_empty()
}

/// Match a group pattern (BGP + filters) against the graph, returning all
/// solution bindings.
pub fn match_group(graph: &Graph, group: &GroupPattern) -> Vec<Binding> {
    let mut solutions = vec![Binding::new()];
    // Greedy join: process patterns in a selectivity-friendly order —
    // patterns whose positions are already bound (or ground) first.
    let mut remaining: Vec<&TriplePattern> = group.patterns.iter().collect();
    let mut ordered: Vec<&TriplePattern> = Vec::with_capacity(remaining.len());
    let mut bound_vars: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    while !remaining.is_empty() {
        let (idx, _) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| {
                let positions = [&p.subject, &p.predicate, &p.object];
                positions
                    .iter()
                    .filter(|tp| match tp {
                        TermPattern::Term(_) => true,
                        TermPattern::Variable(v) => bound_vars.contains(v),
                    })
                    .count()
            })
            .expect("remaining not empty");
        let chosen = remaining.remove(idx);
        for v in chosen.variables() {
            bound_vars.insert(v.to_owned());
        }
        ordered.push(chosen);
    }

    for pattern in ordered {
        let mut next = Vec::new();
        for binding in &solutions {
            extend_with_pattern(graph, pattern, binding, &mut next);
        }
        solutions = next;
        if solutions.is_empty() {
            break;
        }
    }
    solutions.retain(|b| {
        group
            .filters
            .iter()
            .all(|f| eval_filter(f, b) == Some(true))
    });
    solutions
}

fn extend_with_pattern(
    graph: &Graph,
    pattern: &TriplePattern,
    binding: &Binding,
    out: &mut Vec<Binding>,
) {
    let s = resolve(&pattern.subject, binding);
    let p = resolve(&pattern.predicate, binding);
    let o = resolve(&pattern.object, binding);

    // The graph index needs the predicate as an IRI.
    let p_iri: Option<Iri> = match &p {
        Some(Term::Iri(iri)) => Some(iri.clone()),
        Some(_) => return, // non-IRI predicate can never match
        None => None,
    };
    let candidates = graph.matching(s.as_ref(), p_iri.as_ref(), o.as_ref());
    for triple in candidates {
        let mut extended = binding.clone();
        if bind(&mut extended, &pattern.subject, &triple.subject)
            && bind(
                &mut extended,
                &pattern.predicate,
                &Term::Iri(triple.predicate.clone()),
            )
            && bind(&mut extended, &pattern.object, &triple.object)
        {
            out.push(extended);
        }
    }
}

// Concrete term for a pattern position under the current binding, if any.
fn resolve(tp: &TermPattern, binding: &Binding) -> Option<Term> {
    match tp {
        TermPattern::Term(t) => Some(t.clone()),
        TermPattern::Variable(v) => binding.get(v).cloned(),
    }
}

// Bind a variable position to `term`; false on conflict.
fn bind(binding: &mut Binding, tp: &TermPattern, term: &Term) -> bool {
    match tp {
        TermPattern::Term(t) => t == term,
        TermPattern::Variable(v) => match binding.get(v) {
            Some(existing) => existing == term,
            None => {
                binding.insert(v.clone(), term.clone());
                true
            }
        },
    }
}

/// Evaluate a FILTER under SPARQL error semantics: `None` = error
/// (unbound variable or incomparable operands), which eliminates the
/// solution unless negated appropriately.
pub fn eval_filter(filter: &FilterExpr, binding: &Binding) -> Option<bool> {
    match filter {
        FilterExpr::Bound(v) => Some(binding.contains_key(v)),
        FilterExpr::Not(inner) => eval_filter(inner, binding).map(|b| !b),
        FilterExpr::And(a, b) => {
            // SPARQL logical-and with error handling: error && false = false.
            match (eval_filter(a, binding), eval_filter(b, binding)) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            }
        }
        FilterExpr::Or(a, b) => match (eval_filter(a, binding), eval_filter(b, binding)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        FilterExpr::Compare { op, left, right } => {
            let l = resolve(left, binding)?;
            let r = resolve(right, binding)?;
            compare_terms(*op, &l, &r)
        }
    }
}

fn compare_terms(op: CompareOp, l: &Term, r: &Term) -> Option<bool> {
    match op {
        CompareOp::Eq | CompareOp::Ne => {
            let eq = match (l, r) {
                (Term::Literal(a), Term::Literal(b)) => a.value_eq(b),
                (a, b) => a == b,
            };
            Some(if op == CompareOp::Eq { eq } else { !eq })
        }
        _ => {
            let (a, b) = match (l, r) {
                (Term::Literal(a), Term::Literal(b)) => (a, b),
                _ => return None, // ordering only defined on literals
            };
            let ord = if let (Some(x), Some(y)) = (a.as_double(), b.as_double()) {
                x.partial_cmp(&y)?
            } else if a.is_stringy() && b.is_stringy() {
                a.lexical().cmp(b.lexical())
            } else {
                return None;
            };
            Some(match op {
                CompareOp::Lt => ord.is_lt(),
                CompareOp::Le => ord.is_le(),
                CompareOp::Gt => ord.is_gt(),
                CompareOp::Ge => ord.is_ge(),
                CompareOp::Eq | CompareOp::Ne => unreachable!(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query_with_prefixes;
    use rdf::namespace::{foaf, ont, rdf_type, PrefixMap};
    use rdf::{Literal, Triple};

    fn author(n: u32) -> Term {
        Term::iri(&format!("http://example.org/db/author{n}"))
    }

    fn sample() -> Graph {
        let mut g = Graph::new();
        for (n, first, last, year) in [
            (6, "Matthias", "Hert", 2009i64),
            (7, "Gerald", "Reif", 2005),
            (8, "Harald", "Gall", 1998),
        ] {
            g.insert(Triple::new(
                author(n),
                rdf_type(),
                Term::Iri(foaf::Person()),
            ));
            g.insert(Triple::new(
                author(n),
                foaf::firstName(),
                Literal::plain(first),
            ));
            g.insert(Triple::new(
                author(n),
                foaf::family_name(),
                Literal::plain(last),
            ));
            g.insert(Triple::new(
                author(n),
                ont::pubYear(),
                Literal::integer(year),
            ));
        }
        g.insert(Triple::new(
            author(6),
            foaf::mbox(),
            Term::iri("mailto:hert@ifi.uzh.ch"),
        ));
        g
    }

    fn select(graph: &Graph, q: &str) -> Solutions {
        let query = parse_query_with_prefixes(q, PrefixMap::common()).unwrap();
        let Query::Select(s) = query else {
            panic!("not a SELECT")
        };
        evaluate_select(graph, &s)
    }

    #[test]
    fn single_pattern_all_persons() {
        let sols = select(&sample(), "SELECT ?x WHERE { ?x a foaf:Person . }");
        assert_eq!(sols.len(), 3);
    }

    #[test]
    fn join_on_shared_subject() {
        let sols = select(
            &sample(),
            "SELECT ?x ?mbox WHERE { ?x foaf:family_name \"Hert\" ; foaf:mbox ?mbox . }",
        );
        assert_eq!(sols.len(), 1);
        assert_eq!(sols.bindings[0]["x"], author(6));
        assert_eq!(
            sols.bindings[0]["mbox"],
            Term::iri("mailto:hert@ifi.uzh.ch")
        );
    }

    #[test]
    fn listing_11_where_clause() {
        // The paper's MODIFY WHERE clause should bind exactly one row.
        let sols = select(
            &sample(),
            "SELECT ?x ?mbox WHERE { ?x a foaf:Person ; \
             foaf:firstName \"Matthias\" ; foaf:family_name \"Hert\" ; foaf:mbox ?mbox . }",
        );
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn filter_numeric_comparison() {
        let sols = select(
            &sample(),
            "SELECT ?x WHERE { ?x ont:pubYear ?y . FILTER (?y >= 2005) }",
        );
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn filter_and_or_not() {
        let g = sample();
        let sols = select(
            &g,
            "SELECT ?x WHERE { ?x ont:pubYear ?y . FILTER (?y > 2000 && !(?y = 2005)) }",
        );
        assert_eq!(sols.len(), 1);
        let sols = select(
            &g,
            "SELECT ?x WHERE { ?x ont:pubYear ?y . FILTER (?y = 1998 || ?y = 2005) }",
        );
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn filter_value_equality_across_lexical_forms() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            author(1),
            ont::pubYear(),
            Literal::plain("2009"),
        ));
        // Plain "2009" and typed 2009 compare equal by value.
        let sols = select(
            &g,
            "SELECT ?x WHERE { ?x ont:pubYear ?y . FILTER (?y = 2009) }",
        );
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn distinct_and_limit() {
        let g = sample();
        let all = select(&g, "SELECT ?type WHERE { ?x a ?type . }");
        assert_eq!(all.len(), 3);
        let distinct = select(&g, "SELECT DISTINCT ?type WHERE { ?x a ?type . }");
        assert_eq!(distinct.len(), 1);
        let limited = select(&g, "SELECT ?x WHERE { ?x a foaf:Person . } LIMIT 2");
        assert_eq!(limited.len(), 2);
    }

    #[test]
    fn star_projects_all_pattern_variables() {
        let sols = select(&sample(), "SELECT * WHERE { ?x foaf:mbox ?m . }");
        assert_eq!(sols.variables, vec!["x", "m"]);
    }

    #[test]
    fn ask_true_false() {
        let g = sample();
        let q = parse_query_with_prefixes(
            "ASK { ?x foaf:family_name \"Hert\" . }",
            PrefixMap::common(),
        )
        .unwrap();
        assert_eq!(evaluate(&g, &q), QueryOutcome::Boolean(true));
        let q = parse_query_with_prefixes(
            "ASK { ?x foaf:family_name \"Nobody\" . }",
            PrefixMap::common(),
        )
        .unwrap();
        assert_eq!(evaluate(&g, &q), QueryOutcome::Boolean(false));
    }

    #[test]
    fn shared_variable_join_across_subjects() {
        let mut g = sample();
        g.insert(Triple::new(
            Term::iri("http://example.org/db/pub12"),
            rdf::namespace::dc::creator(),
            author(6),
        ));
        let sols = select(
            &g,
            "SELECT ?pub ?last WHERE { ?pub <http://purl.org/dc/elements/1.1/creator> ?a . ?a foaf:family_name ?last . }",
        );
        assert_eq!(sols.len(), 1);
        assert_eq!(sols.bindings[0]["last"], Term::plain("Hert"));
    }

    #[test]
    fn unsatisfiable_pattern_is_empty() {
        let sols = select(
            &sample(),
            "SELECT ?x WHERE { ?x foaf:mbox ?m . ?x ont:pubYear 1850 . }",
        );
        assert!(sols.is_empty());
    }

    #[test]
    fn filter_on_unbound_variable_removes_solution() {
        // ?z never bound → comparison errors → solution dropped.
        let sols = select(
            &sample(),
            "SELECT ?x WHERE { ?x a foaf:Person . FILTER (?z = 1) }",
        );
        assert!(sols.is_empty());
    }

    #[test]
    fn bound_filter() {
        let sols = select(
            &sample(),
            "SELECT ?x WHERE { ?x a foaf:Person . FILTER BOUND(?x) }",
        );
        assert_eq!(sols.len(), 3);
    }

    #[test]
    fn string_ordering_filter() {
        let sols = select(
            &sample(),
            "SELECT ?x WHERE { ?x foaf:family_name ?n . FILTER (?n < \"Hz\") }",
        );
        // "Gall" and "Hert" sort below "Hz"; "Reif" does not.
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn ground_query_no_variables() {
        let g = sample();
        let sols = select(
            &g,
            "SELECT ?x WHERE { <http://example.org/db/author6> foaf:family_name \"Hert\" . ?x a foaf:Person . }",
        );
        assert_eq!(sols.len(), 3);
    }
}
