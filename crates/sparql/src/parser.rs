//! Parser for SPARQL queries (`SELECT`, `ASK`) and SPARQL/Update
//! operations (`INSERT DATA`, `DELETE DATA`, `MODIFY`, plus the SPARQL
//! 1.1 `DELETE/INSERT … WHERE` spellings, normalized to `MODIFY`).

use crate::ast::{
    AskQuery, CompareOp, FilterExpr, GroupPattern, Projection, Query, SelectQuery, TermPattern,
    TriplePattern, UpdateOp, Variable,
};
use crate::lexer::{tokenize, LexError, Token, TokenKind};
use rdf::namespace::{rdf_type, xsd, PrefixMap};
use rdf::{BlankNode, Iri, Literal, Term, Triple};
use std::fmt;

/// Parse error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Line.
    pub line: usize,
    /// Column.
    pub column: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sparql:{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            column: e.column,
        }
    }
}

/// Parse a SPARQL query (`SELECT` or `ASK`) with an empty initial prefix
/// map.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    parse_query_with_prefixes(input, PrefixMap::new())
}

/// Parse a SPARQL query starting from the given prefixes.
pub fn parse_query_with_prefixes(input: &str, prefixes: PrefixMap) -> Result<Query, ParseError> {
    let mut p = Parser::new(input, prefixes)?;
    p.parse_prologue()?;
    let query = p.parse_query_body()?;
    p.expect_eof()?;
    Ok(query)
}

/// Parse one SPARQL/Update operation with an empty initial prefix map.
pub fn parse_update(input: &str) -> Result<UpdateOp, ParseError> {
    parse_update_with_prefixes(input, PrefixMap::new())
}

/// Parse one SPARQL/Update operation starting from the given prefixes.
pub fn parse_update_with_prefixes(
    input: &str,
    prefixes: PrefixMap,
) -> Result<UpdateOp, ParseError> {
    let mut p = Parser::new(input, prefixes)?;
    p.parse_prologue()?;
    let update = p.parse_update_body()?;
    // A single trailing ';' is tolerated (SPARQL 1.1 request style).
    let _ = p.accept_punct(";");
    p.expect_eof()?;
    Ok(update)
}

/// Parse a SPARQL 1.1 style update *request*: one prologue followed by
/// one or more operations separated by `;`. Prefix declarations may
/// also appear between operations (each prologue extends the previous
/// scope, as in SPARQL 1.1).
pub fn parse_update_script(input: &str, prefixes: PrefixMap) -> Result<Vec<UpdateOp>, ParseError> {
    let mut p = Parser::new(input, prefixes)?;
    let mut ops = Vec::new();
    loop {
        p.parse_prologue()?;
        if p.at_eof() {
            if ops.is_empty() {
                return Err(p.err_here("empty update request"));
            }
            return Ok(ops);
        }
        ops.push(p.parse_update_body()?);
        if !p.accept_punct(";") {
            p.expect_eof()?;
            return Ok(ops);
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: PrefixMap,
}

impl Parser {
    fn new(input: &str, prefixes: PrefixMap) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: tokenize(input)?,
            pos: 0,
            prefixes,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, message: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError {
            message: message.into(),
            line: t.line,
            column: t.column,
        }
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err_here(format!("trailing input: {}", self.peek().kind)))
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    fn accept_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.accept_keyword(kw) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected {kw}, found {}", self.peek().kind)))
        }
    }

    fn peek_punct(&self, p: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Punct(x) if *x == p)
    }

    fn accept_punct(&mut self, p: &str) -> bool {
        if self.peek_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.accept_punct(p) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected {p:?}, found {}", self.peek().kind)))
        }
    }

    // ------------------------------------------------------------------
    // Prologue
    // ------------------------------------------------------------------

    fn parse_prologue(&mut self) -> Result<(), ParseError> {
        loop {
            if self.accept_keyword("PREFIX") {
                let token = self.bump();
                let prefix = match token.kind {
                    TokenKind::PrefixedName { prefix, local } if local.is_empty() => prefix,
                    other => {
                        return Err(ParseError {
                            message: format!("expected prefix name, found {other}"),
                            line: token.line,
                            column: token.column,
                        })
                    }
                };
                let token = self.bump();
                let ns = match token.kind {
                    TokenKind::IriRef(iri) => iri,
                    other => {
                        return Err(ParseError {
                            message: format!("expected namespace IRI, found {other}"),
                            line: token.line,
                            column: token.column,
                        })
                    }
                };
                self.prefixes.insert(prefix, ns);
            } else if self.accept_keyword("BASE") {
                // BASE is accepted but IRIs in our fragment are absolute.
                let token = self.bump();
                if !matches!(token.kind, TokenKind::IriRef(_)) {
                    return Err(ParseError {
                        message: "expected IRI after BASE".into(),
                        line: token.line,
                        column: token.column,
                    });
                }
            } else {
                return Ok(());
            }
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    fn parse_query_body(&mut self) -> Result<Query, ParseError> {
        if self.accept_keyword("SELECT") {
            let distinct = self.accept_keyword("DISTINCT");
            let projection = if self.accept_punct("*") {
                Projection::Star
            } else {
                let mut vars: Vec<Variable> = Vec::new();
                while let TokenKind::Variable(v) = &self.peek().kind {
                    vars.push(v.clone());
                    self.bump();
                }
                if vars.is_empty() {
                    return Err(self.err_here("SELECT requires '*' or at least one variable"));
                }
                Projection::Variables(vars)
            };
            // WHERE keyword is optional in SPARQL.
            let _ = self.accept_keyword("WHERE");
            let pattern = self.parse_group_pattern()?;
            let limit = if self.accept_keyword("LIMIT") {
                match self.bump().kind {
                    TokenKind::Integer(n) if n >= 0 => Some(n as usize),
                    other => {
                        return Err(
                            self.err_here(format!("expected non-negative LIMIT, found {other}"))
                        )
                    }
                }
            } else {
                None
            };
            Ok(Query::Select(SelectQuery {
                distinct,
                projection,
                pattern,
                limit,
            }))
        } else if self.accept_keyword("ASK") {
            let _ = self.accept_keyword("WHERE");
            let pattern = self.parse_group_pattern()?;
            Ok(Query::Ask(AskQuery { pattern }))
        } else {
            Err(self.err_here("expected SELECT or ASK"))
        }
    }

    // ------------------------------------------------------------------
    // Updates
    // ------------------------------------------------------------------

    fn parse_update_body(&mut self) -> Result<UpdateOp, ParseError> {
        if self.accept_keyword("MODIFY") {
            // Member-submission MODIFY [ <graph> ] DELETE {..} INSERT {..} WHERE {..}
            if let TokenKind::IriRef(_) = &self.peek().kind {
                self.bump(); // graph IRI — single-graph store, accepted and ignored
            }
            self.expect_keyword("DELETE")?;
            let delete = self.parse_template_block()?;
            self.expect_keyword("INSERT")?;
            let insert = self.parse_template_block()?;
            self.expect_keyword("WHERE")?;
            let pattern = self.parse_group_pattern()?;
            Ok(UpdateOp::Modify {
                delete,
                insert,
                pattern,
            })
        } else if self.accept_keyword("INSERT") {
            if self.accept_keyword("DATA") {
                let triples = self.parse_ground_block()?;
                Ok(UpdateOp::InsertData { triples })
            } else {
                // INSERT { template } WHERE { pattern }
                let insert = self.parse_template_block()?;
                self.expect_keyword("WHERE")?;
                let pattern = self.parse_group_pattern()?;
                Ok(UpdateOp::Modify {
                    delete: Vec::new(),
                    insert,
                    pattern,
                })
            }
        } else if self.accept_keyword("DELETE") {
            if self.accept_keyword("DATA") {
                let triples = self.parse_ground_block()?;
                Ok(UpdateOp::DeleteData { triples })
            } else if self.accept_keyword("WHERE") {
                // DELETE WHERE { pattern }: pattern doubles as template.
                let pattern = self.parse_group_pattern()?;
                if !pattern.filters.is_empty() {
                    return Err(self.err_here("DELETE WHERE must not contain FILTER"));
                }
                Ok(UpdateOp::Modify {
                    delete: pattern.patterns.clone(),
                    insert: Vec::new(),
                    pattern,
                })
            } else {
                // DELETE { template } [INSERT { template }] WHERE { pattern }
                let delete = self.parse_template_block()?;
                let insert = if self.accept_keyword("INSERT") {
                    self.parse_template_block()?
                } else {
                    Vec::new()
                };
                self.expect_keyword("WHERE")?;
                let pattern = self.parse_group_pattern()?;
                Ok(UpdateOp::Modify {
                    delete,
                    insert,
                    pattern,
                })
            }
        } else {
            Err(self.err_here("expected INSERT, DELETE, or MODIFY"))
        }
    }

    // `{ ground triples }` for INSERT DATA / DELETE DATA.
    fn parse_ground_block(&mut self) -> Result<Vec<Triple>, ParseError> {
        let patterns = self.parse_triples_block(false)?;
        let mut triples = Vec::with_capacity(patterns.len());
        for p in patterns {
            match p.to_triple() {
                Some(t) => triples.push(t),
                None => {
                    return Err(
                        self.err_here(format!("variables are not allowed in a DATA block: {p}"))
                    )
                }
            }
        }
        Ok(triples)
    }

    // `{ template triples }` for MODIFY DELETE/INSERT.
    fn parse_template_block(&mut self) -> Result<Vec<TriplePattern>, ParseError> {
        self.parse_triples_block(true)
    }

    // `{ triples [FILTER …] }` — the WHERE clause.
    fn parse_group_pattern(&mut self) -> Result<GroupPattern, ParseError> {
        self.expect_punct("{")?;
        let mut group = GroupPattern::default();
        loop {
            if self.accept_punct("}") {
                return Ok(group);
            }
            if self.accept_keyword("FILTER") {
                group.filters.push(self.parse_filter_constraint()?);
                let _ = self.accept_punct(".");
                continue;
            }
            self.parse_triples_same_subject(true, &mut group.patterns)?;
            if !self.accept_punct(".") {
                // A '.' is required between statements but optional
                // before '}'.
                if !self.peek_punct("}") && !self.peek_keyword("FILTER") {
                    return Err(self.err_here("expected '.', FILTER, or '}'"));
                }
            }
        }
    }

    // `{ triples }` without FILTER (templates, DATA blocks).
    fn parse_triples_block(&mut self, allow_vars: bool) -> Result<Vec<TriplePattern>, ParseError> {
        self.expect_punct("{")?;
        let mut patterns = Vec::new();
        loop {
            if self.accept_punct("}") {
                return Ok(patterns);
            }
            self.parse_triples_same_subject(allow_vars, &mut patterns)?;
            if !self.accept_punct(".") && !self.peek_punct("}") {
                return Err(self.err_here("expected '.' or '}'"));
            }
        }
    }

    // subject (predicate object (',' object)*) (';' predicate objects)*
    fn parse_triples_same_subject(
        &mut self,
        allow_vars: bool,
        out: &mut Vec<TriplePattern>,
    ) -> Result<(), ParseError> {
        let subject = self.parse_term_pattern(allow_vars)?;
        if let TermPattern::Term(t) = &subject {
            if !t.is_subject_term() {
                return Err(self.err_here("literal in subject position"));
            }
        }
        loop {
            let predicate = self.parse_predicate_pattern(allow_vars)?;
            loop {
                let object = self.parse_term_pattern(allow_vars)?;
                out.push(TriplePattern::new(
                    subject.clone(),
                    predicate.clone(),
                    object,
                ));
                if !self.accept_punct(",") {
                    break;
                }
            }
            if self.accept_punct(";") {
                // Tolerate a dangling ';' before '.'/'}' as in Turtle.
                if self.peek_punct(".") || self.peek_punct("}") {
                    return Ok(());
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_predicate_pattern(&mut self, allow_vars: bool) -> Result<TermPattern, ParseError> {
        if let TokenKind::Word(w) = &self.peek().kind {
            if w == "a" {
                self.bump();
                return Ok(TermPattern::iri(rdf_type()));
            }
        }
        let p = self.parse_term_pattern(allow_vars)?;
        match &p {
            TermPattern::Term(Term::Iri(_)) | TermPattern::Variable(_) => Ok(p),
            _ => Err(self.err_here("predicate must be an IRI or variable")),
        }
    }

    fn parse_term_pattern(&mut self, allow_vars: bool) -> Result<TermPattern, ParseError> {
        let token = self.bump();
        let (line, column) = (token.line, token.column);
        let fail = |message: String| ParseError {
            message,
            line,
            column,
        };
        match token.kind {
            TokenKind::Variable(v) => {
                if allow_vars {
                    Ok(TermPattern::Variable(v))
                } else {
                    Err(fail(format!("variable ?{v} not allowed here")))
                }
            }
            TokenKind::IriRef(iri) => {
                let iri = Iri::parse(iri).map_err(|e| fail(e.to_string()))?;
                Ok(TermPattern::iri(iri))
            }
            TokenKind::PrefixedName { prefix, local } => self
                .prefixes
                .resolve(&prefix, &local)
                .map(TermPattern::iri)
                .ok_or_else(|| fail(format!("undeclared prefix {prefix:?}"))),
            TokenKind::BlankNodeLabel(label) => {
                Ok(TermPattern::Term(Term::Blank(BlankNode::new(label))))
            }
            TokenKind::StringLiteral(lexical) => match &self.peek().kind {
                TokenKind::LangTag(tag) => {
                    let tag = tag.clone();
                    self.bump();
                    Ok(TermPattern::literal(Literal::lang(lexical, tag)))
                }
                TokenKind::DatatypeMarker => {
                    self.bump();
                    let token = self.bump();
                    let dt = match token.kind {
                        TokenKind::IriRef(iri) => {
                            Iri::parse(iri).map_err(|e| fail(e.to_string()))?
                        }
                        TokenKind::PrefixedName { prefix, local } => self
                            .prefixes
                            .resolve(&prefix, &local)
                            .ok_or_else(|| fail(format!("undeclared prefix {prefix:?}")))?,
                        other => return Err(fail(format!("expected datatype IRI, found {other}"))),
                    };
                    Ok(TermPattern::literal(Literal::typed(lexical, dt)))
                }
                _ => Ok(TermPattern::literal(Literal::plain(lexical))),
            },
            TokenKind::Integer(i) => Ok(TermPattern::literal(Literal::integer(i))),
            TokenKind::Decimal(d) => Ok(TermPattern::literal(Literal::typed(d, xsd::decimal()))),
            TokenKind::Word(w)
                if w.eq_ignore_ascii_case("true") || w.eq_ignore_ascii_case("false") =>
            {
                Ok(TermPattern::literal(Literal::boolean(
                    w.eq_ignore_ascii_case("true"),
                )))
            }
            other => Err(fail(format!("expected RDF term, found {other}"))),
        }
    }

    // ------------------------------------------------------------------
    // FILTER
    // ------------------------------------------------------------------

    // FILTER '(' expr ')'  — also accepts FILTER BOUND(?v).
    fn parse_filter_constraint(&mut self) -> Result<FilterExpr, ParseError> {
        if self.peek_keyword("BOUND") {
            return self.parse_filter_primary();
        }
        self.expect_punct("(")?;
        let expr = self.parse_filter_or()?;
        self.expect_punct(")")?;
        Ok(expr)
    }

    fn parse_filter_or(&mut self) -> Result<FilterExpr, ParseError> {
        let mut left = self.parse_filter_and()?;
        while self.accept_punct("||") {
            let right = self.parse_filter_and()?;
            left = FilterExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_filter_and(&mut self) -> Result<FilterExpr, ParseError> {
        let mut left = self.parse_filter_unary()?;
        while self.accept_punct("&&") {
            let right = self.parse_filter_unary()?;
            left = FilterExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_filter_unary(&mut self) -> Result<FilterExpr, ParseError> {
        if self.accept_punct("!") {
            Ok(FilterExpr::Not(Box::new(self.parse_filter_unary()?)))
        } else {
            self.parse_filter_primary()
        }
    }

    fn parse_filter_primary(&mut self) -> Result<FilterExpr, ParseError> {
        if self.accept_keyword("BOUND") {
            self.expect_punct("(")?;
            let token = self.bump();
            let v = match token.kind {
                TokenKind::Variable(v) => v,
                other => {
                    return Err(ParseError {
                        message: format!("BOUND expects a variable, found {other}"),
                        line: token.line,
                        column: token.column,
                    })
                }
            };
            self.expect_punct(")")?;
            return Ok(FilterExpr::Bound(v));
        }
        if self.accept_punct("(") {
            let inner = self.parse_filter_or()?;
            self.expect_punct(")")?;
            return Ok(inner);
        }
        let left = self.parse_term_pattern(true)?;
        let op = match &self.peek().kind {
            TokenKind::Punct("=") => CompareOp::Eq,
            TokenKind::Punct("!=") => CompareOp::Ne,
            TokenKind::Punct("<") => CompareOp::Lt,
            TokenKind::Punct("<=") => CompareOp::Le,
            TokenKind::Punct(">") => CompareOp::Gt,
            TokenKind::Punct(">=") => CompareOp::Ge,
            other => return Err(self.err_here(format!("expected comparison, found {other}"))),
        };
        self.bump();
        let right = self.parse_term_pattern(true)?;
        Ok(FilterExpr::Compare { op, left, right })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::namespace::{dc, foaf, ont};

    const PREFIXES: &str = "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
                            PREFIX dc: <http://purl.org/dc/elements/1.1/>\n\
                            PREFIX ont: <http://example.org/ontology#>\n\
                            PREFIX ex: <http://example.org/db/>\n\
                            PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n";

    fn with_prefixes(body: &str) -> String {
        format!("{PREFIXES}{body}")
    }

    #[test]
    fn parses_listing_9_insert_data() {
        let op = parse_update(&with_prefixes(
            "INSERT DATA {\n\
               ex:author6 foaf:title \"Mr\" ;\n\
                 foaf:firstName \"Matthias\" ;\n\
                 foaf:family_name \"Hert\" ;\n\
                 foaf:mbox <mailto:hert@ifi.uzh.ch> ;\n\
                 ont:team ex:team5 .\n\
             }",
        ))
        .unwrap();
        let UpdateOp::InsertData { triples } = op else {
            panic!("expected INSERT DATA")
        };
        assert_eq!(triples.len(), 5);
        assert!(triples
            .iter()
            .all(|t| t.subject == Term::iri("http://example.org/db/author6")));
        assert!(triples.iter().any(
            |t| t.predicate == foaf::mbox() && t.object == Term::iri("mailto:hert@ifi.uzh.ch")
        ));
    }

    #[test]
    fn parses_listing_17_delete_data() {
        let op = parse_update(&with_prefixes(
            "DELETE DATA { ex:author6 foaf:mbox <mailto:hert@ifi.uzh.ch> . }",
        ))
        .unwrap();
        let UpdateOp::DeleteData { triples } = op else {
            panic!("expected DELETE DATA")
        };
        assert_eq!(triples.len(), 1);
    }

    #[test]
    fn parses_listing_11_modify() {
        let op = parse_update(&with_prefixes(
            "MODIFY\n\
             DELETE { ?x foaf:mbox ?mbox . }\n\
             INSERT { ?x foaf:mbox <mailto:hert@example.com> . }\n\
             WHERE {\n\
               ?x rdf:type foaf:Person ;\n\
                  foaf:firstName \"Matthias\" ;\n\
                  foaf:family_name \"Hert\" ;\n\
                  foaf:mbox ?mbox .\n\
             }",
        ))
        .unwrap();
        let UpdateOp::Modify {
            delete,
            insert,
            pattern,
        } = op
        else {
            panic!("expected MODIFY")
        };
        assert_eq!(delete.len(), 1);
        assert_eq!(insert.len(), 1);
        assert_eq!(pattern.patterns.len(), 4);
        assert_eq!(pattern.variables(), vec!["x", "mbox"]);
    }

    #[test]
    fn sparql11_delete_insert_where_normalizes_to_modify() {
        let op = parse_update(&with_prefixes(
            "DELETE { ?x foaf:mbox ?m . } INSERT { ?x foaf:mbox <mailto:new@x.ch> . } \
             WHERE { ?x foaf:mbox ?m . }",
        ))
        .unwrap();
        assert!(matches!(op, UpdateOp::Modify { .. }));
    }

    #[test]
    fn delete_where_shorthand() {
        let op = parse_update(&with_prefixes("DELETE WHERE { ?x foaf:mbox ?m . }")).unwrap();
        let UpdateOp::Modify {
            delete,
            insert,
            pattern,
        } = op
        else {
            panic!()
        };
        assert_eq!(delete, pattern.patterns);
        assert!(insert.is_empty());
    }

    #[test]
    fn insert_where_form() {
        let op = parse_update(&with_prefixes(
            "INSERT { ?x a foaf:Person . } WHERE { ?x foaf:family_name \"Hert\" . }",
        ))
        .unwrap();
        let UpdateOp::Modify { delete, insert, .. } = op else {
            panic!()
        };
        assert!(delete.is_empty());
        assert_eq!(insert.len(), 1);
        assert_eq!(insert[0].predicate, TermPattern::iri(rdf_type()));
    }

    #[test]
    fn variables_rejected_in_data_blocks() {
        let err = parse_update(&with_prefixes("INSERT DATA { ?x foaf:name \"X\" . }")).unwrap_err();
        assert!(err.message.contains("not allowed"));
    }

    #[test]
    fn parses_select_with_filter() {
        let q = parse_query(&with_prefixes(
            "SELECT DISTINCT ?x ?year WHERE {\n\
               ?x a foaf:Document ;\n\
                  ont:pubYear ?year .\n\
               FILTER (?year >= 2005 && ?year != 2007)\n\
             } LIMIT 10",
        ))
        .unwrap();
        let Query::Select(s) = q else { panic!() };
        assert!(s.distinct);
        assert_eq!(
            s.projection,
            Projection::Variables(vec!["x".into(), "year".into()])
        );
        assert_eq!(s.pattern.patterns.len(), 2);
        assert_eq!(s.pattern.filters.len(), 1);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn parses_select_star_without_where_keyword() {
        let q = parse_query(&with_prefixes("SELECT * { ?s ?p ?o }")).unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(s.projection, Projection::Star);
        assert_eq!(s.pattern.patterns.len(), 1);
    }

    #[test]
    fn parses_ask() {
        let q = parse_query(&with_prefixes(
            "ASK { ex:author6 foaf:family_name \"Hert\" . }",
        ))
        .unwrap();
        assert!(matches!(q, Query::Ask(_)));
    }

    #[test]
    fn object_lists_and_typed_literals() {
        let op = parse_update(&with_prefixes(
            "INSERT DATA { ex:pub12 dc:title \"a\" , \"b\" ; ont:pubYear \"2009\"^^<http://www.w3.org/2001/XMLSchema#integer> . }",
        ))
        .unwrap();
        let UpdateOp::InsertData { triples } = op else {
            panic!()
        };
        assert_eq!(triples.len(), 3);
        assert!(triples.iter().any(|t| t.predicate == ont::pubYear()
            && t.object == Term::Literal(Literal::typed("2009", xsd::integer()))));
        assert!(triples.iter().any(|t| t.predicate == dc::title()));
    }

    #[test]
    fn undeclared_prefix_is_error() {
        let err = parse_update("INSERT DATA { nope:x nope:y nope:z . }").unwrap_err();
        assert!(err.message.contains("undeclared prefix"));
    }

    #[test]
    fn preloaded_prefixes() {
        let op = parse_update_with_prefixes(
            "INSERT DATA { <http://example.org/db/a1> foaf:name \"N\" . }",
            PrefixMap::common(),
        )
        .unwrap();
        assert!(matches!(op, UpdateOp::InsertData { .. }));
    }

    #[test]
    fn filter_bound_and_not() {
        let q = parse_query(&with_prefixes(
            "SELECT ?x WHERE { ?x foaf:mbox ?m . FILTER (!(?m = <mailto:a@b.c>)) FILTER BOUND(?x) }",
        ))
        .unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(s.pattern.filters.len(), 2);
        assert!(matches!(s.pattern.filters[0], FilterExpr::Not(_)));
        assert!(matches!(s.pattern.filters[1], FilterExpr::Bound(_)));
    }

    #[test]
    fn missing_where_in_modify_is_error() {
        assert!(parse_update(&with_prefixes(
            "MODIFY DELETE { ?x foaf:mbox ?m . } INSERT { }"
        ))
        .is_err());
    }

    #[test]
    fn literal_subject_rejected() {
        assert!(parse_update(&with_prefixes("INSERT DATA { \"lit\" foaf:name \"X\" . }")).is_err());
    }

    #[test]
    fn trailing_input_rejected() {
        assert!(parse_query(&with_prefixes("ASK { ?s ?p ?o } garbage")).is_err());
    }

    #[test]
    fn blank_nodes_in_data_block() {
        let op = parse_update(&with_prefixes("INSERT DATA { _:b foaf:name \"X\" . }")).unwrap();
        let UpdateOp::InsertData { triples } = op else {
            panic!()
        };
        assert!(triples[0].subject.as_blank().is_some());
    }

    #[test]
    fn modify_with_graph_iri_accepted() {
        let op = parse_update(&with_prefixes(
            "MODIFY <http://example.org/graph> DELETE { ?x foaf:mbox ?m . } INSERT { } WHERE { ?x foaf:mbox ?m . }",
        ))
        .unwrap();
        assert!(matches!(op, UpdateOp::Modify { .. }));
    }

    #[test]
    fn script_with_multiple_operations() {
        let ops = parse_update_script(
            &with_prefixes(
                "INSERT DATA { ex:team9 foaf:name \"A\" . } ;\n\
                 DELETE DATA { ex:team9 foaf:name \"A\" . } ;\n\
                 PREFIX x: <http://example.org/extra#>\n\
                 INSERT DATA { ex:team9 x:note \"n\" . }",
            ),
            PrefixMap::new(),
        )
        .unwrap();
        assert_eq!(ops.len(), 3);
        assert!(matches!(ops[0], UpdateOp::InsertData { .. }));
        assert!(matches!(ops[1], UpdateOp::DeleteData { .. }));
    }

    #[test]
    fn script_single_operation_and_trailing_semicolon() {
        let ops = parse_update_script(
            &with_prefixes("INSERT DATA { ex:team9 foaf:name \"A\" . } ;"),
            PrefixMap::new(),
        )
        .unwrap();
        assert_eq!(ops.len(), 1);
        // Single-op parser also tolerates the trailing semicolon.
        assert!(parse_update(&with_prefixes(
            "INSERT DATA { ex:team9 foaf:name \"A\" . } ;"
        ))
        .is_ok());
    }

    #[test]
    fn empty_script_rejected() {
        assert!(parse_update_script("", PrefixMap::new()).is_err());
        assert!(parse_update_script(
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>",
            PrefixMap::new()
        )
        .is_err());
    }

    #[test]
    fn empty_templates_allowed() {
        let op = parse_update(&with_prefixes(
            "MODIFY DELETE { } INSERT { ?x foaf:name \"X\" . } WHERE { ?x a foaf:Person . }",
        ))
        .unwrap();
        let UpdateOp::Modify { delete, .. } = op else {
            panic!()
        };
        assert!(delete.is_empty());
    }
}
