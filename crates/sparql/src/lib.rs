//! SPARQL and SPARQL/Update front end for the OntoAccess reproduction
//! (Hert, Reif, Gall: *Updating Relational Data via SPARQL/Update*,
//! EDBT 2010).
//!
//! Implements the fragment the paper needs: `SELECT`/`ASK` queries over
//! basic graph patterns with `FILTER`, and the three update operations of
//! the 2008 SPARQL/Update member submission — `INSERT DATA`,
//! `DELETE DATA`, and `MODIFY` (paper Listings 6-8) — plus the SPARQL 1.1
//! `DELETE/INSERT … WHERE` spellings normalized to `MODIFY`.
//!
//! [`eval`] and [`update`] implement *native triple store* semantics over
//! an [`rdf::Graph`]: the baseline the paper contrasts against (§3) and
//! the reference semantics for OntoAccess's correctness properties.

#![warn(missing_docs)]

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod update;

pub use ast::{
    AskQuery, CompareOp, FilterExpr, GroupPattern, Projection, Query, SelectQuery, TermPattern,
    TriplePattern, UpdateOp, Variable,
};
pub use eval::{
    evaluate, evaluate_ask, evaluate_select, match_group, Binding, QueryOutcome, Solutions,
};
pub use parser::{
    parse_query, parse_query_with_prefixes, parse_update, parse_update_script,
    parse_update_with_prefixes, ParseError,
};
pub use update::{apply, instantiate, instantiate_all, UpdateError, UpdateStats};
