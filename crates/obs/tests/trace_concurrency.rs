//! Trace-store concurrency: writer threads churn traces through the
//! process-global store while it evicts under both retention classes.
//! The invariants audited here are the ones the span model promises:
//!
//! * no lost parent links — every retained span's parent resolves
//!   inside its own trace, and always to an earlier span;
//! * tail-sampling priority — sampled churn fills the priority ring
//!   with error/slow traces and never starves it;
//! * the memory bound holds — the `spans_held` canary equals exactly
//!   the spans retained across both rings, and stays under the
//!   capacity-derived ceiling (the same style of audit PR 7's `Weak`
//!   canary runs on the MVCC version chain).
//!
//! One test function on purpose: the global store is process-wide, and
//! this integration binary is its only user, so the final accounting
//! can be exact instead of monotone.

use obs::trace::{self, MAX_SPANS_PER_TRACE};

const THREADS: usize = 8;
const TRACES_PER_THREAD: usize = 200;

#[test]
fn concurrent_churn_keeps_links_priority_and_the_memory_bound() {
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..TRACES_PER_THREAD {
                    let id = format!("churn-{t}-{i}");
                    let tr = trace::start(&id, "request");
                    assert!(tr.armed(), "one trace per thread must always arm");
                    {
                        let a = trace::span("stage.a");
                        a.attr_u64("iteration", i as u64);
                        {
                            let b = trace::span("stage.b");
                            b.attr_str("thread", "writer");
                        }
                    }
                    drop(trace::span("stage.c"));
                    // A deterministic mix of priority classes riding on
                    // heavy sampled traffic.
                    if i % 10 == 0 {
                        trace::mark_slow();
                    }
                    if i % 17 == 0 {
                        trace::mark_error();
                    }
                    assert!(tr.finish(), "armed traces are always retained on submit");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("writer thread");
    }

    let store = trace::store();
    let (priority, sampled) = store.counts();
    let (priority_cap, sampled_cap) = store.capacities();

    // Both rings bounded; the priority ring is *full* — each thread
    // emitted ~30 priority traces (240 total against a cap of 64), and
    // sampled churn must not have evicted any of them.
    assert!(sampled <= sampled_cap);
    assert_eq!(
        priority, priority_cap,
        "priority ring must be at capacity, never starved by sampled churn"
    );

    let index = store.index();
    assert_eq!(index.len(), priority + sampled);
    for record in &index {
        // Every indexed trace is reachable by id (the operator's
        // `GET /trace/<id>` path).
        assert!(store.contains(&record.trace_id));
        assert_eq!(record.spans.len(), 4, "root + three stage spans");
        for span in &record.spans {
            match span.parent {
                None => assert_eq!(span.id, 0, "only the root is parentless"),
                Some(parent) => {
                    assert!(
                        parent < span.id,
                        "parents precede children ({} -> {parent})",
                        span.id
                    );
                    assert_eq!(
                        record.spans[parent as usize].id, parent,
                        "parent link resolves within the trace"
                    );
                }
            }
            assert!(span.end_micros >= span.start_micros);
        }
    }

    // The canary is exact — not just bounded — after quiescence.
    let retained_spans: u64 = index.iter().map(|r| r.spans.len() as u64).sum();
    assert_eq!(store.spans_held(), retained_spans);
    assert!(
        store.spans_held() <= ((priority_cap + sampled_cap) * MAX_SPANS_PER_TRACE) as u64,
        "memory bound: spans held must stay under the capacity-derived ceiling"
    );
}
