//! Request tracing: explicit span handles assembled into per-request
//! traces, stored in a bounded tail-sampled trace store.
//!
//! # Span model
//!
//! A **trace** is one request's tree of **spans** — named, timed
//! sections with a parent link and typed attributes. The trace is
//! keyed by the request id (`X-Request-Id` on the HTTP layer), so the
//! id a client saw is the handle an operator queries
//! (`GET /trace/<request-id>`).
//!
//! Context propagation is thread-local: [`start`] installs the trace
//! on the current thread, [`span`] opens a child of the innermost open
//! span, and dropping the guard closes it. Layers never pass a context
//! object — the server starts the trace, and core/dur code running on
//! the same thread (the request handler is synchronous end to end)
//! emits spans against it. Code running without an active trace pays
//! one thread-local probe and records nothing, so instrumented library
//! paths are free outside a traced request. Cross-node propagation is
//! explicit instead: a leader write stamps its trace id into the WAL
//! commit unit, and the follower's apply starts a *new* local trace
//! under that id, linking the two stores by key.
//!
//! # Tail-based retention
//!
//! Traces are classified when they **finish** (tail sampling — the
//! decision sees the outcome, not the first span): error and
//! slow-marked traces go to a priority ring that only error/slow
//! traces can evict; everything else goes to a sampled ring that churns
//! under load. Both rings are bounded, spans per trace are bounded
//! ([`MAX_SPANS_PER_TRACE`], overflow counted in `spans_dropped`), so
//! the store's memory is bounded by construction — [`TraceStore::spans_held`]
//! is the auditable canary.
//!
//! The whole layer honors [`crate::set_enabled`]: when the kill switch
//! is off, [`start`] returns an inert guard and every span call
//! degrades to a thread-local probe.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Span identifier, unique within its trace (0 is the root).
pub type SpanId = u32;

/// Typed attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (counts, sequence numbers, micros).
    U64(u64),
    /// Short string (strategy names, ids).
    Str(String),
    /// Flag.
    Bool(bool),
}

/// One recorded span: timing relative to the trace start (monotonic
/// clock), parent link, and attributes.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Identifier within the trace (root is 0).
    pub id: SpanId,
    /// Parent span, `None` for the root.
    pub parent: Option<SpanId>,
    /// Static span name (`"query.execute"`, `"wal.append"`, …).
    pub name: &'static str,
    /// Start offset from the trace start, microseconds.
    pub start_micros: u64,
    /// End offset from the trace start, microseconds (`0` while open;
    /// finished traces close every span).
    pub end_micros: u64,
    /// Typed attributes, in recording order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// Hard per-trace span bound: spans beyond it are counted in
/// `spans_dropped` instead of stored, so one pathological request
/// cannot balloon the store.
pub const MAX_SPANS_PER_TRACE: usize = 256;

// The trace being assembled on this thread. Single-owner by
// construction (context is thread-local), so no lock is needed.
struct ActiveTrace {
    id: String,
    root: &'static str,
    started: Instant,
    started_unix_ms: u64,
    spans: Vec<SpanRecord>,
    // Innermost-open-span stack; new spans parent to the top.
    stack: Vec<SpanId>,
    error: bool,
    slow: bool,
    dropped: u64,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// Begin a trace on this thread, keyed by `trace_id`, with a root span
/// named `root`. Returns an inert guard (nothing records) when the
/// kill switch is off or a trace is already active on this thread.
/// Dropping (or [`Trace::finish`]ing) the guard closes the root span
/// and submits the trace to the global [`store`].
pub fn start(trace_id: &str, root: &'static str) -> Trace {
    if !crate::enabled() {
        return Trace { armed: false };
    }
    let armed = ACTIVE.with(|active| {
        let mut active = active.borrow_mut();
        if active.is_some() {
            return false; // nested starts are inert, the outer trace owns the thread
        }
        *active = Some(ActiveTrace {
            id: trace_id.to_owned(),
            root,
            started: Instant::now(),
            started_unix_ms: now_unix_ms(),
            spans: vec![SpanRecord {
                id: 0,
                parent: None,
                name: root,
                start_micros: 0,
                end_micros: 0,
                attrs: Vec::new(),
            }],
            stack: vec![0],
            error: false,
            slow: false,
            dropped: 0,
        });
        true
    });
    Trace { armed }
}

/// Guard for one in-progress trace (see [`start`]).
#[derive(Debug)]
pub struct Trace {
    armed: bool,
}

impl Trace {
    /// Whether this guard actually records (false when tracing was
    /// disabled or another trace already owned the thread).
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// Attach an integer attribute to the root span.
    pub fn attr_u64(&self, key: &'static str, value: u64) {
        self.root_attr(key, AttrValue::U64(value));
    }

    /// Attach a string attribute to the root span.
    pub fn attr_str(&self, key: &'static str, value: &str) {
        self.root_attr(key, AttrValue::Str(value.to_owned()));
    }

    fn root_attr(&self, key: &'static str, value: AttrValue) {
        if !self.armed {
            return;
        }
        ACTIVE.with(|active| {
            if let Some(trace) = active.borrow_mut().as_mut() {
                trace.spans[0].attrs.push((key, value));
            }
        });
    }

    /// Finish the trace and submit it to the global [`store`]. Returns
    /// whether the store retained it (always true for armed traces —
    /// both retention classes are rings, entries are only evicted by
    /// *later* traces).
    pub fn finish(mut self) -> bool {
        self.finish_inner(true)
    }

    /// Drop the trace without submitting it (e.g. a replication fetch
    /// round that carried no data and is not worth a store slot).
    pub fn discard(mut self) {
        self.finish_inner(false);
    }

    fn finish_inner(&mut self, submit: bool) -> bool {
        if !self.armed {
            return false;
        }
        self.armed = false;
        let Some(mut trace) = ACTIVE.with(|active| active.borrow_mut().take()) else {
            return false;
        };
        let duration_micros = trace.started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        // Close every span still open (defensive: guards normally close
        // their own spans before the trace ends).
        for span in &mut trace.spans {
            if span.end_micros == 0 && !(span.id == 0 && duration_micros == 0) {
                span.end_micros = duration_micros;
            }
        }
        if !submit {
            return false;
        }
        store().insert(TraceRecord {
            trace_id: trace.id,
            root: trace.root,
            started_unix_ms: trace.started_unix_ms,
            duration_micros,
            error: trace.error,
            slow: trace.slow,
            spans_dropped: trace.dropped,
            spans: trace.spans,
        });
        true
    }
}

impl Drop for Trace {
    fn drop(&mut self) {
        self.finish_inner(true);
    }
}

/// Whether a trace is active on this thread (spans would record).
pub fn is_active() -> bool {
    ACTIVE.with(|active| active.borrow().is_some())
}

/// The id of the trace active on this thread, if any — what a write
/// path stamps into cross-node metadata (the WAL commit unit).
pub fn current_trace_id() -> Option<String> {
    ACTIVE.with(|active| active.borrow().as_ref().map(|t| t.id.clone()))
}

/// Mark the active trace as an error trace (always retained).
pub fn mark_error() {
    ACTIVE.with(|active| {
        if let Some(trace) = active.borrow_mut().as_mut() {
            trace.error = true;
        }
    });
}

/// Mark the active trace as slow (always retained).
pub fn mark_slow() {
    ACTIVE.with(|active| {
        if let Some(trace) = active.borrow_mut().as_mut() {
            trace.slow = true;
        }
    });
}

/// Open a span named `name` as a child of the innermost open span of
/// this thread's trace. Returns an inert guard when no trace is
/// active (or the per-trace span bound is hit). Close by dropping.
pub fn span(name: &'static str) -> Span {
    let id = ACTIVE.with(|active| {
        let mut active = active.borrow_mut();
        let trace = active.as_mut()?;
        if trace.spans.len() >= MAX_SPANS_PER_TRACE {
            trace.dropped += 1;
            return None;
        }
        let id = trace.spans.len() as SpanId;
        let parent = trace.stack.last().copied();
        let start_micros = trace.started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        trace.spans.push(SpanRecord {
            id,
            parent,
            name,
            start_micros,
            end_micros: 0,
            attrs: Vec::new(),
        });
        trace.stack.push(id);
        Some(id)
    });
    Span { id }
}

/// Guard for one open span (see [`span`]).
#[derive(Debug)]
pub struct Span {
    id: Option<SpanId>,
}

impl Span {
    /// Whether this guard actually records.
    pub fn armed(&self) -> bool {
        self.id.is_some()
    }

    /// Attach an integer attribute.
    pub fn attr_u64(&self, key: &'static str, value: u64) {
        self.attr(key, AttrValue::U64(value));
    }

    /// Attach a string attribute.
    pub fn attr_str(&self, key: &'static str, value: &str) {
        self.attr(key, AttrValue::Str(value.to_owned()));
    }

    /// Attach a boolean attribute.
    pub fn attr_bool(&self, key: &'static str, value: bool) {
        self.attr(key, AttrValue::Bool(value));
    }

    fn attr(&self, key: &'static str, value: AttrValue) {
        let Some(id) = self.id else { return };
        ACTIVE.with(|active| {
            if let Some(trace) = active.borrow_mut().as_mut() {
                if let Some(span) = trace.spans.get_mut(id as usize) {
                    span.attrs.push((key, value));
                }
            }
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        ACTIVE.with(|active| {
            let mut active = active.borrow_mut();
            let Some(trace) = active.as_mut() else { return };
            let end = trace.started.elapsed().as_micros().min(u64::MAX as u128) as u64;
            if let Some(span) = trace.spans.get_mut(id as usize) {
                span.end_micros = end.max(span.start_micros);
            }
            // Guards drop innermost-first in straight-line code; the
            // retain is defensive against a guard outliving a sibling.
            trace.stack.retain(|&open| open != id);
        });
    }
}

// ----------------------------------------------------------------------
// Trace store
// ----------------------------------------------------------------------

/// One finished, retained trace.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// The request id that keys the trace.
    pub trace_id: String,
    /// Root span name.
    pub root: &'static str,
    /// Wall-clock start (Unix milliseconds).
    pub started_unix_ms: u64,
    /// Total trace wall time, microseconds.
    pub duration_micros: u64,
    /// Error-class trace (tail-sampling priority).
    pub error: bool,
    /// Slow-class trace (tail-sampling priority).
    pub slow: bool,
    /// Spans dropped past [`MAX_SPANS_PER_TRACE`].
    pub spans_dropped: u64,
    /// The recorded spans, ids dense from 0 (the root).
    pub spans: Vec<SpanRecord>,
}

impl TraceRecord {
    /// Whether tail sampling classifies this trace as priority
    /// (error or slow — kept over sampled traffic).
    pub fn is_priority(&self) -> bool {
        self.error || self.slow
    }
}

#[derive(Debug, Default)]
struct StoreInner {
    // Two retention classes, each FIFO-bounded: a sampled trace can
    // never evict a priority one.
    priority: VecDeque<Arc<TraceRecord>>,
    sampled: VecDeque<Arc<TraceRecord>>,
    by_id: HashMap<String, Arc<TraceRecord>>,
}

/// Bounded, tail-sampled trace store: error/slow traces in a priority
/// ring, everything else ring-sampled. Lookup by trace id.
#[derive(Debug)]
pub struct TraceStore {
    priority_cap: usize,
    sampled_cap: usize,
    inner: Mutex<StoreInner>,
    // Spans currently held across both rings — the memory-bound canary
    // concurrency tests audit (must never exceed
    // (priority_cap + sampled_cap) * MAX_SPANS_PER_TRACE).
    spans_held: AtomicU64,
}

/// Default capacity of the priority (error/slow) ring.
pub const DEFAULT_PRIORITY_TRACES: usize = 64;
/// Default capacity of the sampled ring.
pub const DEFAULT_SAMPLED_TRACES: usize = 64;

/// The process-global trace store — where [`Trace::finish`] submits.
pub fn store() -> &'static TraceStore {
    static STORE: OnceLock<TraceStore> = OnceLock::new();
    STORE.get_or_init(|| TraceStore::new(DEFAULT_PRIORITY_TRACES, DEFAULT_SAMPLED_TRACES))
}

impl TraceStore {
    /// A store retaining up to `priority_cap` error/slow traces and
    /// `sampled_cap` ring-sampled ones.
    pub fn new(priority_cap: usize, sampled_cap: usize) -> TraceStore {
        TraceStore {
            priority_cap: priority_cap.max(1),
            sampled_cap: sampled_cap.max(1),
            inner: Mutex::new(StoreInner::default()),
            spans_held: AtomicU64::new(0),
        }
    }

    /// Insert a finished trace, evicting within its retention class.
    /// A re-used trace id replaces the previous record.
    pub fn insert(&self, record: TraceRecord) {
        let record = Arc::new(record);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut held_delta = record.spans.len() as i64;
        if let Some(previous) = inner.by_id.remove(&record.trace_id) {
            held_delta -= previous.spans.len() as i64;
            let drop_same = |ring: &mut VecDeque<Arc<TraceRecord>>| {
                ring.retain(|t| !Arc::ptr_eq(t, &previous));
            };
            drop_same(&mut inner.priority);
            drop_same(&mut inner.sampled);
        }
        inner
            .by_id
            .insert(record.trace_id.clone(), Arc::clone(&record));
        let (ring, cap) = if record.is_priority() {
            (&mut inner.priority, self.priority_cap)
        } else {
            (&mut inner.sampled, self.sampled_cap)
        };
        ring.push_back(record);
        let mut evicted = Vec::new();
        while ring.len() > cap {
            if let Some(old) = ring.pop_front() {
                held_delta -= old.spans.len() as i64;
                evicted.push(old);
            }
        }
        for old in evicted {
            // Only unmap ids still pointing at the evicted record (the
            // id may have been re-inserted above).
            if inner
                .by_id
                .get(&old.trace_id)
                .is_some_and(|current| Arc::ptr_eq(current, &old))
            {
                inner.by_id.remove(&old.trace_id);
            }
        }
        drop(inner);
        if held_delta >= 0 {
            self.spans_held
                .fetch_add(held_delta as u64, Ordering::Relaxed);
        } else {
            self.spans_held
                .fetch_sub(held_delta.unsigned_abs(), Ordering::Relaxed);
        }
    }

    /// Look one trace up by its id.
    pub fn get(&self, trace_id: &str) -> Option<Arc<TraceRecord>> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .by_id
            .get(trace_id)
            .cloned()
    }

    /// Whether a trace with this id is currently retained.
    pub fn contains(&self, trace_id: &str) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .by_id
            .contains_key(trace_id)
    }

    /// Every retained trace, newest first (priority and sampled
    /// interleaved by start time).
    pub fn index(&self) -> Vec<Arc<TraceRecord>> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut all: Vec<Arc<TraceRecord>> = inner
            .priority
            .iter()
            .chain(inner.sampled.iter())
            .cloned()
            .collect();
        all.sort_by_key(|record| std::cmp::Reverse(record.started_unix_ms));
        all
    }

    /// Retained trace counts: `(priority, sampled)`.
    pub fn counts(&self) -> (usize, usize) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (inner.priority.len(), inner.sampled.len())
    }

    /// Ring capacities: `(priority, sampled)`.
    pub fn capacities(&self) -> (usize, usize) {
        (self.priority_cap, self.sampled_cap)
    }

    /// Spans currently held across both rings — the memory-bound
    /// canary (see the concurrency tests).
    pub fn spans_held(&self) -> u64 {
        self.spans_held.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace context is thread-local, but the kill switch and the
    // global store are process-wide; tests that toggle or submit
    // serialize with the lib-level tests' discipline by running each
    // trace on a dedicated thread where needed.
    fn on_thread<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
        std::thread::spawn(f).join().expect("test thread")
    }

    fn make_record(id: &str, priority: bool, spans: usize) -> TraceRecord {
        TraceRecord {
            trace_id: id.to_owned(),
            root: "test",
            started_unix_ms: 1,
            duration_micros: 10,
            error: priority,
            slow: false,
            spans_dropped: 0,
            spans: (0..spans as u32)
                .map(|i| SpanRecord {
                    id: i,
                    parent: (i > 0).then(|| i - 1),
                    name: "s",
                    start_micros: 0,
                    end_micros: 1,
                    attrs: Vec::new(),
                })
                .collect(),
        }
    }

    #[test]
    fn spans_nest_and_parent_links_hold() {
        on_thread(|| {
            let trace = start("t-nest", "root");
            assert!(trace.armed());
            {
                let a = span("a");
                a.attr_u64("n", 7);
                {
                    let b = span("b");
                    b.attr_str("k", "v");
                }
            }
            let c = span("c");
            drop(c);
            assert_eq!(current_trace_id().as_deref(), Some("t-nest"));
            assert!(trace.finish());
            let record = store().get("t-nest").expect("retained");
            assert_eq!(record.spans.len(), 4);
            let by_name = |n: &str| record.spans.iter().find(|s| s.name == n).unwrap();
            assert_eq!(by_name("a").parent, Some(0));
            assert_eq!(by_name("b").parent, Some(by_name("a").id));
            assert_eq!(by_name("c").parent, Some(0));
            assert!(by_name("a").attrs.contains(&("n", AttrValue::U64(7))));
        });
    }

    #[test]
    fn spans_without_a_trace_are_inert() {
        on_thread(|| {
            assert!(!is_active());
            let s = span("orphan");
            assert!(!s.armed());
            s.attr_u64("ignored", 1);
            assert_eq!(current_trace_id(), None);
        });
    }

    #[test]
    fn nested_start_is_inert_and_outer_survives() {
        on_thread(|| {
            let outer = start("t-outer", "root");
            let inner = start("t-inner", "root");
            assert!(!inner.armed());
            drop(inner);
            assert!(is_active(), "inner drop must not tear the outer trace down");
            assert_eq!(current_trace_id().as_deref(), Some("t-outer"));
            outer.finish();
            assert!(store().contains("t-outer"));
            assert!(!store().contains("t-inner"));
        });
    }

    #[test]
    fn discard_submits_nothing() {
        on_thread(|| {
            let trace = start("t-discard", "root");
            span("work");
            trace.discard();
            assert!(!store().contains("t-discard"));
            assert!(!is_active());
        });
    }

    #[test]
    fn eviction_respects_tail_sampling_priority() {
        let store = TraceStore::new(2, 2);
        for i in 0..2 {
            store.insert(make_record(&format!("p{i}"), true, 3));
        }
        for i in 0..5 {
            store.insert(make_record(&format!("s{i}"), false, 3));
        }
        // Sampled churn never touched the priority ring…
        assert!(store.contains("p0") && store.contains("p1"));
        // …and the sampled ring kept only the newest two.
        let (priority, sampled) = store.counts();
        assert_eq!((priority, sampled), (2, 2));
        assert!(!store.contains("s0") && !store.contains("s2"));
        assert!(store.contains("s3") && store.contains("s4"));
        // A third priority trace evicts the *oldest priority* trace.
        store.insert(make_record("p2", true, 3));
        assert!(!store.contains("p0"));
        assert!(store.contains("p1") && store.contains("p2"));
        // The canary counts exactly the held spans.
        assert_eq!(store.spans_held(), 4 * 3);
    }

    #[test]
    fn reused_id_replaces_and_keeps_the_canary_exact() {
        let store = TraceStore::new(4, 4);
        store.insert(make_record("dup", false, 5));
        store.insert(make_record("dup", false, 2));
        assert_eq!(store.counts(), (0, 1));
        assert_eq!(store.spans_held(), 2);
        assert_eq!(store.get("dup").unwrap().spans.len(), 2);
    }

    #[test]
    fn span_bound_drops_overflow_but_counts_it() {
        on_thread(|| {
            let trace = start("t-bound", "root");
            for _ in 0..(MAX_SPANS_PER_TRACE + 10) {
                span("s");
            }
            trace.finish();
            let record = store().get("t-bound").expect("retained");
            assert_eq!(record.spans.len(), MAX_SPANS_PER_TRACE);
            assert_eq!(record.spans_dropped as usize, 11);
        });
    }
}
