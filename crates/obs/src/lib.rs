//! Observability: a lock-free metrics registry with Prometheus text
//! exposition, plus a structured-logging facade emitting logfmt lines
//! to stderr.
//!
//! # Metrics
//!
//! One process-global [`Registry`] (the same pattern as `rel`'s
//! process-global string dictionary) hands out `&'static` handles to
//! three metric kinds:
//!
//! * [`Counter`] — monotonic `u64`;
//! * [`Gauge`] — settable `u64`;
//! * [`Histogram`] — fixed exponential buckets over `u64` samples
//!   (latencies are recorded in microseconds and exposed in seconds),
//!   with `_bucket`/`_sum`/`_count` exposition and p50/p95/p99
//!   extraction via [`Histogram::quantile`].
//!
//! Registration takes a mutex once per call site; the returned handle
//! is a leaked `&'static`, so hot paths touch only relaxed atomics.
//! Call sites cache handles in `OnceLock` statics or per-instance
//! structs. Exposition order is registration order, so `/metrics`
//! output is stable across scrapes.
//!
//! The whole layer has a runtime kill-switch, [`set_enabled`]: when
//! off, every recording call degrades to one relaxed load and a
//! branch. The overhead bench measures instrumented vs. killed to
//! bound the hot-path cost.
//!
//! # Logging
//!
//! [`log`] writes one logfmt line (`ts=… level=… target=… msg=… k=v`)
//! to stderr when `level` passes the process-wide filter. The filter
//! defaults to **off**, and is raised via [`set_log_filter_str`]
//! (the CLI's `--log-level`) or the `ONTOACCESS_LOG` environment
//! variable (`error|warn|info|debug`).

#![warn(missing_docs)]

pub mod trace;

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

// ----------------------------------------------------------------------
// Kill switch
// ----------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turn metric recording on or off process-wide. When off, every
/// `inc`/`set`/`observe` is a relaxed load plus a branch — the
/// "compiled to no-op" baseline the overhead bench compares against.
/// Registered metrics keep their last values and keep rendering.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether metric recording is currently on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ----------------------------------------------------------------------
// Metric kinds
// ----------------------------------------------------------------------

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Set the current value.
    pub fn set(&self, v: u64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Add `n` (e.g. entering an in-flight section).
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtract `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        if enabled() {
            // fetch_update never underflows even under races.
            let _ = self
                .value
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                    Some(v.saturating_sub(n))
                });
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Latency histogram bucket upper bounds, in microseconds: 10µs to
/// 2.5s in a 1–2.5–5 decade ladder (plus the implicit +Inf bucket).
pub const LATENCY_BUCKETS_MICROS: &[u64] = &[
    10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
    500_000, 1_000_000, 2_500_000,
];

/// Bucket upper bounds for small-count distributions (group-commit
/// batch sizes and the like).
pub const COUNT_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128];

/// A fixed-bucket cumulative histogram over `u64` samples.
///
/// Buckets are chosen at registration; samples land in the first
/// bucket whose upper bound is `>= sample` (the last slot is +Inf).
/// `scale` converts raw sample units to exposition units — latency
/// histograms record microseconds and expose seconds (`scale = 1e-6`).
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    scale: f64,
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &'static [u64], scale: f64) -> Histogram {
        Histogram {
            bounds,
            scale,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one raw sample.
    pub fn observe(&self, raw: u64) {
        if !enabled() {
            return;
        }
        let slot = self.bounds.partition_point(|&bound| bound < raw);
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(raw, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration (microsecond resolution; use with
    /// seconds-scaled histograms).
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of raw samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) in **raw** units by
    /// linear interpolation inside the winning bucket. Returns 0 with
    /// no samples; +Inf-bucket samples clamp to the largest bound.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut cumulative = 0u64;
        for (slot, &count) in counts.iter().enumerate() {
            let next = cumulative + count;
            if (next as f64) >= target && count > 0 {
                let upper = self
                    .bounds
                    .get(slot)
                    .copied()
                    .unwrap_or(*self.bounds.last().expect("bounds are non-empty"));
                let lower = if slot == 0 { 0 } else { self.bounds[slot - 1] };
                let within = (target - cumulative as f64) / count as f64;
                return lower as f64 + within * (upper - lower) as f64;
            }
            cumulative = next;
        }
        *self.bounds.last().expect("bounds are non-empty") as f64
    }
}

// ----------------------------------------------------------------------
// Registry
// ----------------------------------------------------------------------

// Holds only leaked 'static references, so it is freely copyable out
// of the registry lock.
#[derive(Debug, Clone, Copy)]
enum Handle {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

#[derive(Debug)]
struct Entry {
    name: &'static str,
    help: &'static str,
    /// Rendered label pair (`key="value"`), if the series is labeled.
    label: Option<String>,
    handle: Handle,
}

/// The process-global metric registry: named handles plus Prometheus
/// text exposition. Obtain it via [`registry`].
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

/// The process-global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

impl Registry {
    /// Register (or look up) an unlabeled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> &'static Counter {
        self.counter_labeled(name, help, None)
    }

    /// Register (or look up) a counter, optionally labeled
    /// `{key="value"}`.
    pub fn counter_labeled(
        &self,
        name: &'static str,
        help: &'static str,
        label: Option<(&str, &str)>,
    ) -> &'static Counter {
        match self.entry(name, help, label, || {
            Handle::Counter(Box::leak(Box::new(Counter::default())))
        }) {
            Handle::Counter(c) => c,
            _ => panic!("metric {name} is already registered with a different kind"),
        }
    }

    /// Register (or look up) an unlabeled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> &'static Gauge {
        self.gauge_labeled(name, help, None)
    }

    /// Register (or look up) a gauge, optionally labeled.
    pub fn gauge_labeled(
        &self,
        name: &'static str,
        help: &'static str,
        label: Option<(&str, &str)>,
    ) -> &'static Gauge {
        match self.entry(name, help, label, || {
            Handle::Gauge(Box::leak(Box::new(Gauge::default())))
        }) {
            Handle::Gauge(g) => g,
            _ => panic!("metric {name} is already registered with a different kind"),
        }
    }

    /// Register (or look up) a latency histogram (microsecond samples,
    /// exposed in seconds, [`LATENCY_BUCKETS_MICROS`] bounds).
    pub fn latency_histogram(&self, name: &'static str, help: &'static str) -> &'static Histogram {
        self.histogram_with(name, help, None, LATENCY_BUCKETS_MICROS, 1e-6)
    }

    /// Register (or look up) a labeled latency histogram.
    pub fn latency_histogram_labeled(
        &self,
        name: &'static str,
        help: &'static str,
        label: (&str, &str),
    ) -> &'static Histogram {
        self.histogram_with(name, help, Some(label), LATENCY_BUCKETS_MICROS, 1e-6)
    }

    /// Register (or look up) a unit-less histogram over custom bounds
    /// (e.g. [`COUNT_BUCKETS`] for batch sizes).
    pub fn sized_histogram(
        &self,
        name: &'static str,
        help: &'static str,
        bounds: &'static [u64],
    ) -> &'static Histogram {
        self.histogram_with(name, help, None, bounds, 1.0)
    }

    fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        label: Option<(&str, &str)>,
        bounds: &'static [u64],
        scale: f64,
    ) -> &'static Histogram {
        match self.entry(name, help, label, || {
            Handle::Histogram(Box::leak(Box::new(Histogram::new(bounds, scale))))
        }) {
            Handle::Histogram(h) => h,
            _ => panic!("metric {name} is already registered with a different kind"),
        }
    }

    fn entry(
        &self,
        name: &'static str,
        help: &'static str,
        label: Option<(&str, &str)>,
        create: impl FnOnce() -> Handle,
    ) -> Handle {
        let label = label.map(|(key, value)| format!("{key}=\"{}\"", escape_label(value)));
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = entries.iter().find(|e| e.name == name && e.label == label) {
            return existing.handle;
        }
        let handle = create();
        entries.push(Entry {
            name,
            help,
            label,
            handle,
        });
        handle
    }

    /// Render every registered metric in Prometheus text exposition
    /// format (version 0.0.4): `# HELP` / `# TYPE` per metric name,
    /// one sample line per series, histograms as cumulative
    /// `_bucket{le=…}` plus `_sum` and `_count`.
    pub fn render(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::with_capacity(4096);
        let mut done: Vec<&str> = Vec::new();
        for entry in entries.iter() {
            if done.contains(&entry.name) {
                continue;
            }
            done.push(entry.name);
            let kind = match entry.handle {
                Handle::Counter(_) => "counter",
                Handle::Gauge(_) => "gauge",
                Handle::Histogram(_) => "histogram",
            };
            out.push_str("# HELP ");
            out.push_str(entry.name);
            out.push(' ');
            out.push_str(entry.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(entry.name);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            // All series of this name, in registration order.
            for series in entries.iter().filter(|e| e.name == entry.name) {
                render_series(&mut out, series);
            }
        }
        out
    }
}

fn render_series(out: &mut String, series: &Entry) {
    let label = series.label.as_deref();
    match series.handle {
        Handle::Counter(c) => render_sample(out, series.name, label, None, c.get() as f64),
        Handle::Gauge(g) => render_sample(out, series.name, label, None, g.get() as f64),
        Handle::Histogram(h) => {
            let mut cumulative = 0u64;
            for (slot, bound) in h.bounds.iter().enumerate() {
                cumulative += h.buckets[slot].load(Ordering::Relaxed);
                let le = format_number(*bound as f64 * h.scale);
                render_sample(
                    out,
                    &format!("{}_bucket", series.name),
                    label,
                    Some(("le", &le)),
                    cumulative as f64,
                );
            }
            cumulative += h.buckets[h.bounds.len()].load(Ordering::Relaxed);
            render_sample(
                out,
                &format!("{}_bucket", series.name),
                label,
                Some(("le", "+Inf")),
                cumulative as f64,
            );
            render_sample(
                out,
                &format!("{}_sum", series.name),
                label,
                None,
                h.sum() as f64 * h.scale,
            );
            render_sample(
                out,
                &format!("{}_count", series.name),
                label,
                None,
                h.count() as f64,
            );
        }
    }
}

fn render_sample(
    out: &mut String,
    name: &str,
    label: Option<&str>,
    extra: Option<(&str, &str)>,
    value: f64,
) {
    out.push_str(name);
    if label.is_some() || extra.is_some() {
        out.push('{');
        if let Some(label) = label {
            out.push_str(label);
            if extra.is_some() {
                out.push(',');
            }
        }
        if let Some((key, value)) = extra {
            out.push_str(key);
            out.push_str("=\"");
            out.push_str(&escape_label(value));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&format_number(value));
    out.push('\n');
}

// Stable decimal rendering: integers without a fraction, fractions via
// the shortest `f64` Display (Rust's Display round-trips).
fn format_number(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

// ----------------------------------------------------------------------
// Request ids
// ----------------------------------------------------------------------

/// Generate a process-unique request id: wall-clock millis, the
/// process id, and a monotonic counter — unique across restarts
/// without any randomness dependency.
pub fn next_request_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let millis = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("{millis:x}-{:x}-{n:x}", std::process::id())
}

// ----------------------------------------------------------------------
// Structured logging
// ----------------------------------------------------------------------

/// Log severity, most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or divergence-risking conditions.
    Error = 1,
    /// Degraded but self-healing conditions (reconnects, overload).
    Warn = 2,
    /// Request-level operational events.
    Info = 3,
    /// Per-stage detail.
    Debug = 4,
}

impl Level {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

// 0 = off; 1..=4 = Level. u8::MAX = "not initialized yet".
static LOG_FILTER: AtomicU8 = AtomicU8::new(u8::MAX);

fn parse_filter(s: &str) -> Option<u8> {
    match s.trim().to_ascii_lowercase().as_str() {
        "off" | "none" => Some(0),
        "error" => Some(Level::Error as u8),
        "warn" | "warning" => Some(Level::Warn as u8),
        "info" => Some(Level::Info as u8),
        "debug" | "trace" => Some(Level::Debug as u8),
        _ => None,
    }
}

fn log_filter() -> u8 {
    let current = LOG_FILTER.load(Ordering::Relaxed);
    if current != u8::MAX {
        return current;
    }
    // First use: adopt ONTOACCESS_LOG, defaulting to off. Racing
    // initializers agree on the same value.
    let from_env = std::env::var("ONTOACCESS_LOG")
        .ok()
        .and_then(|v| parse_filter(&v))
        .unwrap_or(0);
    LOG_FILTER.store(from_env, Ordering::Relaxed);
    from_env
}

/// Set the log filter from its textual form
/// (`off|error|warn|info|debug`); overrides `ONTOACCESS_LOG`.
pub fn set_log_filter_str(s: &str) -> Result<(), String> {
    match parse_filter(s) {
        Some(filter) => {
            LOG_FILTER.store(filter, Ordering::Relaxed);
            Ok(())
        }
        None => Err(format!(
            "unknown log level {s:?} (expected off, error, warn, info, or debug)"
        )),
    }
}

/// Whether a line at `level` would currently be emitted — guard any
/// log call whose field rendering is not free.
pub fn log_enabled(level: Level) -> bool {
    (level as u8) <= log_filter()
}

/// Emit one logfmt line to stderr:
/// `ts=<unix-millis> level=<l> target=<t> msg=<m> k=v …`
/// Values containing spaces, quotes, or `=` are quoted and escaped.
/// A no-op when `level` does not pass the filter.
pub fn log(level: Level, target: &str, message: &str, fields: &[(&str, &dyn std::fmt::Display)]) {
    if !log_enabled(level) {
        return;
    }
    let millis = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let mut line = String::with_capacity(128);
    line.push_str(&format!("ts={millis} level={} target=", level.as_str()));
    push_logfmt_value(&mut line, target);
    line.push_str(" msg=");
    push_logfmt_value(&mut line, message);
    for (key, value) in fields {
        line.push(' ');
        line.push_str(key);
        line.push('=');
        push_logfmt_value(&mut line, &value.to_string());
    }
    // One write per line keeps concurrent lines unmangled.
    eprintln!("{line}");
}

fn push_logfmt_value(out: &mut String, value: &str) {
    let needs_quoting = value.is_empty()
        || value
            .chars()
            .any(|c| c.is_whitespace() || c == '"' || c == '=' || c == '\\');
    if !needs_quoting {
        out.push_str(value);
        return;
    }
    out.push('"');
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    // The kill switch is process-global; every test that records or
    // toggles serializes here so parallel test threads cannot observe
    // each other's disabled windows.
    static SWITCH: Mutex<()> = Mutex::new(());

    #[test]
    fn counter_and_gauge_round_trip() {
        let _serial = SWITCH.lock().unwrap_or_else(|e| e.into_inner());
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.set(10);
        g.sub(3);
        g.add(1);
        assert_eq!(g.get(), 8);
        g.sub(100);
        assert_eq!(g.get(), 0, "gauge saturates at zero");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let _serial = SWITCH.lock().unwrap_or_else(|e| e.into_inner());
        let h = Histogram::new(&[10, 100, 1000], 1.0);
        for v in [5, 5, 5, 5, 50, 50, 50, 500, 500, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 6170);
        // 4 ≤10, 3 ≤100, 2 ≤1000, 1 +Inf.
        let p50 = h.quantile(0.5);
        assert!(p50 > 0.0 && p50 <= 100.0, "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 >= 1000.0, "p99 = {p99}");
        assert_eq!(Histogram::new(&[10], 1.0).quantile(0.5), 0.0);
    }

    #[test]
    fn kill_switch_stops_recording() {
        let _serial = SWITCH.lock().unwrap_or_else(|e| e.into_inner());
        let c = Counter::default();
        set_enabled(false);
        c.inc();
        assert_eq!(c.get(), 0);
        set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn registry_dedupes_by_name_and_label() {
        let _serial = SWITCH.lock().unwrap_or_else(|e| e.into_inner());
        let registry = registry();
        let a = registry.counter("obs_test_total", "test counter");
        let b = registry.counter("obs_test_total", "test counter");
        assert!(std::ptr::eq(a, b), "same name returns the same handle");
        let labeled = registry.counter_labeled("obs_test_total", "test counter", Some(("k", "v")));
        assert!(!std::ptr::eq(a, labeled), "labels are distinct series");
        a.inc();
        assert!(registry.render().contains("obs_test_total"));
    }

    #[test]
    fn render_is_valid_exposition_shape() {
        let _serial = SWITCH.lock().unwrap_or_else(|e| e.into_inner());
        let registry = registry();
        let h = registry.latency_histogram("obs_test_render_seconds", "render test");
        h.observe(120);
        let text = registry.render();
        assert!(text.contains("# TYPE obs_test_render_seconds histogram"));
        assert!(text.contains("obs_test_render_seconds_bucket{le=\"+Inf\"}"));
        assert!(text.contains("obs_test_render_seconds_count"));
        assert!(text.contains("obs_test_render_seconds_sum"));
        // Bucket for 250µs bound carries the 120µs sample.
        assert!(text.contains("obs_test_render_seconds_bucket{le=\"0.00025\"}"));
    }

    #[test]
    fn logfmt_quotes_what_needs_quoting() {
        let mut out = String::new();
        push_logfmt_value(&mut out, "plain");
        assert_eq!(out, "plain");
        out.clear();
        push_logfmt_value(&mut out, "two words \"quoted\"");
        assert_eq!(out, "\"two words \\\"quoted\\\"\"");
        out.clear();
        push_logfmt_value(&mut out, "");
        assert_eq!(out, "\"\"");
    }

    #[test]
    fn filter_parses_and_rejects() {
        assert_eq!(parse_filter("warn"), Some(2));
        assert_eq!(parse_filter("OFF"), Some(0));
        assert_eq!(parse_filter("verbose"), None);
        assert!(set_log_filter_str("nope").is_err());
    }

    #[test]
    fn request_ids_are_unique() {
        let a = next_request_id();
        let b = next_request_id();
        assert_ne!(a, b);
    }
}
