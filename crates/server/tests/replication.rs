//! Protocol tests for the replication endpoints and `/status` objects,
//! on both sides of the topology: a durable leader shipping its WAL
//! over `GET /wal` + `GET /snapshot/latest`, and a follower serving
//! read-only SPARQL while tailing it.

use fixtures::http_probe::{one_shot, ProbeResponse};
use ontoaccess_server::{serve, ServerConfig, ServerHandle};
use std::time::{Duration, Instant};

fn send(server: &ServerHandle, raw: &str) -> ProbeResponse {
    one_shot(server.addr(), raw).expect("request against the test server")
}

fn get(server: &ServerHandle, target: &str) -> ProbeResponse {
    send(
        server,
        &format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn post(server: &ServerHandle, target: &str, content_type: &str, body: &str) -> ProbeResponse {
    send(
        server,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: t\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn durable_leader(dir: &std::path::Path) -> ServerHandle {
    let (mediator, _) = fixtures::durable_mediator_with_sample_data(dir);
    serve(
        mediator,
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

fn insert_author(n: u32) -> String {
    format!(
        "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
         PREFIX ex: <http://example.org/db/>\n\
         INSERT DATA {{ ex:author{n} foaf:family_name \"Replicated{n}\" . }}"
    )
}

// ----------------------------------------------------------------------
// Leader side
// ----------------------------------------------------------------------

#[test]
fn wal_endpoint_ships_committed_bytes_with_coordinates() {
    let dir = fixtures::scratch_dir("repl-wal-endpoint");
    let server = durable_leader(&dir);
    assert_eq!(
        post(
            &server,
            "/update",
            "application/sparql-update",
            &insert_author(40)
        )
        .status,
        200
    );
    // Fresh directory: snapshot 0 exists, so the epoch is 0 and the
    // stream starts right after the magic.
    let response = get(&server, "/wal?from=8&epoch=0&timeout_ms=0");
    assert_eq!(response.status, 200, "{}", response.text());
    assert_eq!(
        response.header("content-type"),
        Some("application/octet-stream")
    );
    assert!(!response.body.is_empty(), "one commit must be on the wire");
    assert_eq!(response.header("x-wal-epoch"), Some("0"));
    assert_eq!(response.header("x-leader-seq"), Some("1"));
    assert_eq!(response.header("x-snapshot-seq"), Some("0"));
    let durable: u64 = response.header("x-wal-size").unwrap().parse().unwrap();
    assert_eq!(durable, 8 + response.body.len() as u64);

    // Caught up: an empty 200 with the same coordinates (zero timeout
    // returns immediately instead of long-polling).
    let caught_up = get(
        &server,
        &format!("/wal?from={durable}&epoch=0&timeout_ms=0"),
    );
    assert_eq!(caught_up.status, 200);
    assert!(caught_up.body.is_empty());
    assert_eq!(
        caught_up.header("x-wal-size"),
        Some(durable.to_string().as_str())
    );

    // A caught-up request with a timeout long-polls until new bytes
    // commit: write from a second connection while the poll parks.
    let writer = std::thread::spawn({
        let addr = server.addr();
        move || {
            std::thread::sleep(Duration::from_millis(150));
            let body = insert_author(41);
            one_shot(
                addr,
                &format!(
                    "POST /update HTTP/1.1\r\nHost: t\r\nContent-Type: application/sparql-update\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                ),
            )
        }
    });
    let woken = get(
        &server,
        &format!("/wal?from={durable}&epoch=0&timeout_ms=5000"),
    );
    writer.join().unwrap().expect("concurrent write");
    assert_eq!(woken.status, 200);
    assert!(
        !woken.body.is_empty(),
        "long poll must wake on the new commit"
    );
    assert_eq!(woken.header("x-leader-seq"), Some("2"));

    // Wrong epoch and out-of-range offsets answer 409 with the real
    // coordinates.
    let stale = get(&server, "/wal?from=8&epoch=999&timeout_ms=0");
    assert_eq!(stale.status, 409, "{}", stale.text());
    assert!(stale.text().contains("\"reposition\":true"));
    assert_eq!(stale.header("x-wal-epoch"), Some("0"));
    let beyond = get(&server, "/wal?from=999999&epoch=0&timeout_ms=0");
    assert_eq!(beyond.status, 409);

    // Missing/invalid parameters are a client error, wrong method 405.
    assert_eq!(get(&server, "/wal").status, 400);
    assert_eq!(get(&server, "/wal?from=x&epoch=0").status, 400);
    assert_eq!(post(&server, "/wal", "text/plain", "").status, 405);
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_latest_serves_decodable_bootstrap_bytes() {
    let dir = fixtures::scratch_dir("repl-snapshot-endpoint");
    let server = durable_leader(&dir);
    assert_eq!(
        post(
            &server,
            "/update",
            "application/sparql-update",
            &insert_author(42)
        )
        .status,
        200
    );
    // Checkpoint so the newest snapshot includes the write.
    assert_eq!(post(&server, "/snapshot", "text/plain", "").status, 200);
    let response = get(&server, "/snapshot/latest");
    assert_eq!(response.status, 200);
    assert_eq!(response.header("x-snapshot-seq"), Some("1"));
    assert_eq!(response.header("x-wal-epoch"), Some("1"));
    let schema = fixtures::database().schema().clone();
    let (seq, db, _dict) =
        dur::snapshot::decode_snapshot(&response.body, &schema).expect("snapshot decodes");
    assert_eq!(seq, 1);
    // The sample data seeds authors 6 and 7; author 42 is our write.
    assert_eq!(db.row_count("author").unwrap(), 3);
    assert_eq!(
        post(&server, "/snapshot/latest", "text/plain", "").status,
        405
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn replication_endpoints_need_a_durable_leader() {
    let server = serve(
        fixtures::mediator_with_sample_data(),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind ephemeral port");
    let wal = get(&server, "/wal?from=8&epoch=0&timeout_ms=0");
    assert_eq!(wal.status, 501, "{}", wal.text());
    assert_eq!(get(&server, "/snapshot/latest").status, 501);
    // And the status object calls the server standalone.
    assert!(get(&server, "/status")
        .text()
        .contains("\"role\":\"standalone\""));
    server.shutdown();
}

#[test]
fn leader_status_reports_its_commit_frontier() {
    let dir = fixtures::scratch_dir("repl-leader-status");
    let server = durable_leader(&dir);
    assert_eq!(
        post(
            &server,
            "/update",
            "application/sparql-update",
            &insert_author(43)
        )
        .status,
        200
    );
    let status = get(&server, "/status").text();
    assert!(status.contains("\"role\":\"leader\""), "{status}");
    assert!(status.contains("\"applied_seq\":1"), "{status}");
    assert!(status.contains("\"lag_units\":0"), "{status}");
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

// ----------------------------------------------------------------------
// Follower side
// ----------------------------------------------------------------------

fn wait_for_lag_zero(status: &repl::ReplicationStatus, leader_seq: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = status.snapshot();
        if snap.applied_seq >= leader_seq {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "follower stuck at {snap:?} waiting for seq {leader_seq}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn follower_serves_reads_refuses_writes_and_reports_status() {
    let dir = fixtures::scratch_dir("repl-follower");
    let leader = durable_leader(&dir);
    assert_eq!(
        post(
            &leader,
            "/update",
            "application/sparql-update",
            &insert_author(50)
        )
        .status,
        200
    );

    let (mediator, replicator) = repl::Replicator::start(
        leader.addr().to_string(),
        fixtures::database(),
        fixtures::mapping(),
        repl::ReplicatorConfig {
            poll_timeout: Duration::from_millis(500),
            ..repl::ReplicatorConfig::default()
        },
    )
    .expect("bootstrap against live leader");
    let status = replicator.status();
    let follower = serve(
        mediator,
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            replication: Some(status.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("bind follower port");
    wait_for_lag_zero(&status, 1);

    // The replicated row answers on the follower's query endpoint.
    let query = "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
                 SELECT ?n WHERE { ?x foaf:family_name ?n . }";
    let solutions = get(
        &follower,
        &format!("/sparql?query={}", fixtures::http_probe::urlencode(query)),
    );
    assert_eq!(solutions.status, 200);
    assert!(
        solutions.text().contains("Replicated50"),
        "{}",
        solutions.text()
    );

    // Writes answer 409 and name the leader.
    let rejected = post(
        &follower,
        "/update",
        "application/sparql-update",
        &insert_author(51),
    );
    assert_eq!(rejected.status, 409, "{}", rejected.text());
    assert!(
        rejected.text().contains("read replica"),
        "{}",
        rejected.text()
    );
    assert!(
        rejected.text().contains(&leader.addr().to_string()),
        "{}",
        rejected.text()
    );

    // Admin checkpoint and WAL shipping are a leader's business: the
    // follower has no WAL of its own (501, cascading replication is
    // refused rather than silently wrong).
    assert_eq!(post(&follower, "/snapshot", "text/plain", "").status, 501);
    assert_eq!(
        get(&follower, "/wal?from=8&epoch=0&timeout_ms=0").status,
        501
    );

    // The follower's status object reports the replica role.
    let follower_status = get(&follower, "/status").text();
    assert!(
        follower_status.contains("\"role\":\"replica\""),
        "{follower_status}"
    );
    assert!(
        follower_status.contains(&format!("\"leader\":\"{}\"", leader.addr())),
        "{follower_status}"
    );
    assert!(
        follower_status.contains("\"state\":\"streaming\""),
        "{follower_status}"
    );
    assert!(
        follower_status.contains("\"applied_seq\":1"),
        "{follower_status}"
    );
    assert!(
        follower_status.contains("\"lag_units\":0"),
        "{follower_status}"
    );

    // New leader writes keep flowing.
    assert_eq!(
        post(
            &leader,
            "/update",
            "application/sparql-update",
            &insert_author(52)
        )
        .status,
        200
    );
    wait_for_lag_zero(&status, 2);
    let solutions = get(
        &follower,
        &format!("/sparql?query={}", fixtures::http_probe::urlencode(query)),
    );
    assert!(
        solutions.text().contains("Replicated52"),
        "{}",
        solutions.text()
    );

    // Kill the leader: the follower keeps serving its last consistent
    // version and reports the reconnect attempts.
    leader.shutdown();
    let deadline = Instant::now() + Duration::from_secs(10);
    while status.snapshot().reconnects == 0 {
        assert!(Instant::now() < deadline, "no reconnect attempt recorded");
        std::thread::sleep(Duration::from_millis(20));
    }
    let stale = get(
        &follower,
        &format!("/sparql?query={}", fixtures::http_probe::urlencode(query)),
    );
    assert_eq!(stale.status, 200);
    assert!(stale.text().contains("Replicated52"), "{}", stale.text());
    let follower_status = get(&follower, "/status").text();
    assert!(
        follower_status.contains("\"state\":\"reconnecting\""),
        "{follower_status}"
    );

    follower.shutdown();
    replicator.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

// ----------------------------------------------------------------------
// Cross-node tracing
// ----------------------------------------------------------------------

// The tracing acceptance path: a slow leader write produces one trace
// whose span tree crosses server → core → dur, its id rides the WAL
// commit unit to the follower, and the follower's apply trace under
// the *same* id names the matching leader seq.
//
// In production the two stores live in two processes; here both ends
// share the process-global store, where a same-id insert replaces. So
// the leader's span tree is verified *before* the replicator starts,
// and the apply trace (which then takes the id over) after.
#[test]
fn slow_leader_write_traces_across_layers_and_links_the_follower_apply() {
    let dir = fixtures::scratch_dir("repl-trace-xnode");
    let (mediator, _) = fixtures::durable_mediator_with_sample_data(&dir);
    let leader = serve(
        mediator,
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            // Threshold 0: the write is tail-classified slow, pinning
            // its trace to the priority ring.
            slow_query_ms: 0,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");

    // One request id for the whole topology.
    let update = insert_author(60);
    let response = send(
        &leader,
        &format!(
            "POST /update HTTP/1.1\r\nHost: t\r\nContent-Type: application/sparql-update\r\n\
             X-Request-Id: xnode-write-60\r\nContent-Length: {}\r\nConnection: close\r\n\r\n\
             {update}",
            update.len()
        ),
    );
    assert_eq!(response.status, 200, "{}", response.text());

    // Leader: the retained trace's span tree crosses every layer — the
    // server's request root, core's update pipeline and commit, dur's
    // WAL append and group-fsync wait.
    let leader_trace = get(&leader, "/trace/xnode-write-60");
    assert_eq!(leader_trace.status, 200, "{}", leader_trace.text());
    let text = leader_trace.text();
    assert!(text.contains("\"trace_id\":\"xnode-write-60\""), "{text}");
    assert!(text.contains("\"root\":\"request\""), "{text}");
    assert!(text.contains("\"slow\":true"), "{text}");
    for span in [
        "\"name\":\"update.parse\"",
        "\"name\":\"update.translate\"",
        "\"name\":\"txn.commit\"",
        "\"name\":\"wal.append\"",
        "\"name\":\"wal.fsync_wait\"",
    ] {
        assert!(text.contains(span), "{span} in {text}");
    }
    assert!(
        text.contains("\"seq\":1"),
        "the commit seq rides the WAL spans: {text}"
    );

    // Bootstrap the follower: it tails the WAL, meets the commit unit
    // stamped with the write's trace id, and applies it under an apply
    // trace keyed by that id.
    let (follower_mediator, replicator) = repl::Replicator::start(
        leader.addr().to_string(),
        fixtures::database(),
        fixtures::mapping(),
        repl::ReplicatorConfig {
            poll_timeout: Duration::from_millis(500),
            ..repl::ReplicatorConfig::default()
        },
    )
    .expect("bootstrap against live leader");
    let status = replicator.status();
    let follower = serve(
        follower_mediator,
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            replication: Some(status.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("bind follower port");
    wait_for_lag_zero(&status, 1);

    // Follower: the apply trace under the same id links back to the
    // leader write, and its leader_seq matches the commit.
    let follower_trace = get(&follower, "/trace/xnode-write-60");
    assert_eq!(follower_trace.status, 200, "{}", follower_trace.text());
    let text = follower_trace.text();
    assert!(text.contains("\"trace_id\":\"xnode-write-60\""), "{text}");
    assert!(text.contains("\"root\":\"repl.apply\""), "{text}");
    assert!(text.contains("\"leader_seq\":1"), "{text}");
    assert!(
        text.contains(&format!("\"leader\":\"{}\"", leader.addr())),
        "{text}"
    );

    follower.shutdown();
    leader.shutdown();
    replicator.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}
