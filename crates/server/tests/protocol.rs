//! SPARQL Protocol integration tests over loopback: a real server on
//! an ephemeral port, the shared raw-socket probe client
//! ([`fixtures::http_probe`]), and one test per protocol behavior —
//! request forms, content negotiation, error statuses, limits, and
//! keep-alive.

use fixtures::http_probe::{one_shot, urlencode, ProbeConn, ProbeResponse};
use ontoaccess_server::{serve, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::time::Duration;

fn connect(server: &ServerHandle) -> ProbeConn {
    ProbeConn::connect(server.addr()).expect("connect to test server")
}

// One-shot request; `raw` must include the blank line and any body.
fn send(server: &ServerHandle, raw: &str) -> ProbeResponse {
    one_shot(server.addr(), raw).expect("request against the test server")
}

fn get(server: &ServerHandle, target: &str, accept: Option<&str>) -> ProbeResponse {
    let accept_line = accept
        .map(|a| format!("Accept: {a}\r\n"))
        .unwrap_or_default();
    send(
        server,
        &format!("GET {target} HTTP/1.1\r\nHost: t\r\n{accept_line}Connection: close\r\n\r\n"),
    )
}

fn post(server: &ServerHandle, target: &str, content_type: &str, body: &str) -> ProbeResponse {
    send(
        server,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: t\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn test_server() -> ServerHandle {
    serve(
        fixtures::mediator_with_sample_data(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            keep_alive_timeout: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

const PERSONS: &str = "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
                       SELECT ?x WHERE { ?x a foaf:Person . }";

// ----------------------------------------------------------------------
// Queries
// ----------------------------------------------------------------------

#[test]
fn get_query_answers_sparql_json() {
    let server = test_server();
    let response = get(
        &server,
        &format!("/sparql?query={}", urlencode(PERSONS)),
        None,
    );
    assert_eq!(response.status, 200);
    assert_eq!(
        response.header("content-type"),
        Some("application/sparql-results+json")
    );
    let text = response.text();
    assert!(text.contains("\"vars\":[\"x\"]"), "head in {text}");
    assert!(text.contains("http://example.org/db/author6"));
    assert!(text.contains("http://example.org/db/author7"));
    server.shutdown();
}

#[test]
fn accept_header_switches_to_xml_results() {
    let server = test_server();
    let response = get(
        &server,
        &format!("/sparql?query={}", urlencode(PERSONS)),
        Some("application/sparql-results+xml"),
    );
    assert_eq!(response.status, 200);
    assert_eq!(
        response.header("content-type"),
        Some("application/sparql-results+xml")
    );
    assert!(response
        .text()
        .contains("<uri>http://example.org/db/author6</uri>"));
    server.shutdown();
}

#[test]
fn post_query_as_raw_body_and_as_form() {
    let server = test_server();
    let raw = post(&server, "/sparql", "application/sparql-query", PERSONS);
    assert_eq!(raw.status, 200);
    assert!(raw.text().contains("author6"));
    let form = post(
        &server,
        "/sparql",
        "application/x-www-form-urlencoded",
        &format!("query={}", urlencode(PERSONS)),
    );
    assert_eq!(form.status, 200);
    assert!(form.text().contains("author6"));
    server.shutdown();
}

#[test]
fn ask_query_answers_boolean_documents() {
    let server = test_server();
    let ask = "PREFIX foaf: <http://xmlns.com/foaf/0.1/> ASK { ?x a foaf:Person . }";
    let json = get(&server, &format!("/sparql?query={}", urlencode(ask)), None);
    assert_eq!(json.text(), "{\"head\":{},\"boolean\":true}");
    let xml = get(
        &server,
        &format!("/sparql?query={}", urlencode(ask)),
        Some("text/xml"),
    );
    assert!(xml.text().contains("<boolean>true</boolean>"));
    server.shutdown();
}

#[test]
fn query_protocol_errors() {
    let server = test_server();
    // Missing parameter.
    assert_eq!(get(&server, "/sparql", None).status, 400);
    // Unparseable query → mediator parse error → 400 with JSON body.
    let bad = get(
        &server,
        &format!("/sparql?query={}", urlencode("NONSENSE")),
        None,
    );
    assert_eq!(bad.status, 400);
    assert!(bad.text().contains("\"code\":\"ParseError\""));
    // Unsupported POST content type.
    assert_eq!(post(&server, "/sparql", "text/csv", "x").status, 415);
    // No acceptable representation.
    let unacceptable = get(
        &server,
        &format!("/sparql?query={}", urlencode(PERSONS)),
        Some("image/png"),
    );
    assert_eq!(unacceptable.status, 406);
    server.shutdown();
}

// ----------------------------------------------------------------------
// Updates
// ----------------------------------------------------------------------

const INSERT_GALL: &str = "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
                           PREFIX ex: <http://example.org/db/>\n\
                           INSERT DATA { ex:author8 foaf:family_name \"Gall\" . }";

#[test]
fn update_answers_rdf_feedback_and_takes_effect() {
    let server = test_server();
    let response = post(&server, "/update", "application/sparql-update", INSERT_GALL);
    assert_eq!(response.status, 200);
    assert_eq!(response.header("content-type"), Some("text/turtle"));
    let feedback = response.text();
    assert!(feedback.contains("fb:Confirmation"), "feedback: {feedback}");
    assert!(feedback.contains("INSERT DATA"));
    assert!(feedback.contains("fb:rowsAffected"));
    // The §6 feedback document is valid RDF.
    assert!(!rdf::turtle::parse(&feedback).unwrap().is_empty());
    // And the write is visible to a subsequent query.
    let check = get(
        &server,
        &format!("/sparql?query={}", urlencode(PERSONS)),
        None,
    );
    assert!(check.text().contains("author8"));
    server.shutdown();
}

#[test]
fn update_as_form_field_works() {
    let server = test_server();
    let response = post(
        &server,
        "/update",
        "application/x-www-form-urlencoded",
        &format!("update={}", urlencode(INSERT_GALL)),
    );
    assert_eq!(response.status, 200);
    assert!(response.text().contains("fb:Confirmation"));
    server.shutdown();
}

#[test]
fn rejected_update_maps_status_and_keeps_feedback_body() {
    let server = test_server();
    // Dangling object → 409 Conflict, RDF rejection document.
    let dangling = "PREFIX ont: <http://example.org/ontology#>\n\
                    PREFIX ex: <http://example.org/db/>\n\
                    INSERT DATA { ex:author6 ont:team ex:team424242 . }";
    let response = post(&server, "/update", "application/sparql-update", dangling);
    assert_eq!(response.status, 409);
    assert_eq!(response.header("content-type"), Some("text/turtle"));
    let feedback = response.text();
    assert!(feedback.contains("fb:Rejection"));
    assert!(feedback.contains("DanglingObject"));
    // Parse failure → 400.
    let parse = post(
        &server,
        "/update",
        "application/sparql-update",
        "NOT SPARQL",
    );
    assert_eq!(parse.status, 400);
    assert!(parse.text().contains("fb:Rejection"));
    // Unknown property → 422.
    let unknown = "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
                   PREFIX ex: <http://example.org/db/>\n\
                   INSERT DATA { ex:author6 foaf:nick \"h\" . }";
    let response = post(&server, "/update", "application/sparql-update", unknown);
    assert_eq!(response.status, 422);
    server.shutdown();
}

#[test]
fn multi_operation_update_script_is_atomic() {
    let server = test_server();
    let script = "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
                  PREFIX ont: <http://example.org/ontology#>\n\
                  PREFIX ex: <http://example.org/db/>\n\
                  INSERT DATA { ex:team9 foaf:name \"T9\" ; ont:teamCode \"C9\" . } ;\n\
                  INSERT DATA { ex:author6 ont:team ex:team424242 . }";
    let response = post(&server, "/update", "application/sparql-update", script);
    assert_eq!(response.status, 409, "second operation fails the script");
    // The first operation rolled back with it.
    let q = "PREFIX ont: <http://example.org/ontology#>\n\
             SELECT ?t WHERE { ?t ont:teamCode \"C9\" . }";
    let check = get(&server, &format!("/sparql?query={}", urlencode(q)), None);
    assert!(check.text().contains("\"bindings\":[]"), "{}", check.text());
    server.shutdown();
}

// ----------------------------------------------------------------------
// Graph endpoints and status
// ----------------------------------------------------------------------

#[test]
fn describe_negotiates_turtle_and_ntriples() {
    let server = test_server();
    let uri = "http://example.org/db/author6";
    let turtle = get(&server, &format!("/describe?uri={}", urlencode(uri)), None);
    assert_eq!(turtle.status, 200);
    assert_eq!(turtle.header("content-type"), Some("text/turtle"));
    assert!(!rdf::turtle::parse(&turtle.text()).unwrap().is_empty());
    let nt = get(
        &server,
        &format!("/describe?uri={}", urlencode(uri)),
        Some("application/n-triples"),
    );
    assert_eq!(nt.header("content-type"), Some("application/n-triples"));
    assert!(!rdf::ntriples::parse(&nt.text()).unwrap().is_empty());
    // Unmapped URI → 422; invalid URI → 400.
    assert_eq!(
        get(
            &server,
            &format!("/describe?uri={}", urlencode("http://elsewhere.org/x")),
            None
        )
        .status,
        422
    );
    assert_eq!(
        get(
            &server,
            &format!("/describe?uri={}", urlencode("not a uri")),
            None
        )
        .status,
        400
    );
    server.shutdown();
}

#[test]
fn dump_returns_the_full_rdf_view() {
    let server = test_server();
    let response = get(&server, "/dump", None);
    assert_eq!(response.status, 200);
    let graph = rdf::turtle::parse(&response.text()).unwrap();
    let mediator = fixtures::mediator_with_sample_data();
    assert_eq!(graph, mediator.materialize().unwrap());
    server.shutdown();
}

#[test]
fn status_reports_tables_cache_and_counters() {
    let server = test_server();
    get(
        &server,
        &format!("/sparql?query={}", urlencode(PERSONS)),
        None,
    );
    let response = get(&server, "/status", None);
    assert_eq!(response.status, 200);
    assert_eq!(response.header("content-type"), Some("application/json"));
    let text = response.text();
    assert!(text.contains("\"author\":2"), "{text}");
    assert!(text.contains("\"query_cache\""));
    assert!(text.contains("\"misses\":1"));
    assert!(text.contains("\"queries\":1"));
    // The version and durability state are always reported; this
    // server runs in memory.
    assert!(
        text.contains(&format!("\"version\":\"{}\"", env!("CARGO_PKG_VERSION"))),
        "{text}"
    );
    assert!(text.contains("\"uptime_seconds\":"), "{text}");
    assert!(
        text.contains("\"durability\":{\"enabled\":false}"),
        "{text}"
    );
    // Dictionary counters: the fixture interns text values, so the
    // process-global symbol count is non-zero by the time /status runs.
    assert!(text.contains("\"dictionary\":{\"symbols\":"), "{text}");
    assert!(text.contains("\"bytes_saved\":"), "{text}");
    let symbols: u64 = text
        .split("\"dictionary\":{\"symbols\":")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|n| n.parse().ok())
        .expect("symbols counter is a number");
    assert!(symbols > 0, "{text}");
    server.shutdown();
}

#[test]
fn status_reports_concurrency_object() {
    let server = test_server();
    // Fresh in-memory server: version 0, only the initial version
    // retained, no writers yet.
    let text = get(&server, "/status", None).text();
    assert!(
        text.contains("\"concurrency\":{\"current_version\":0,\"versions_retained\":1,"),
        "{text}"
    );
    assert!(text.contains("\"read_sessions_live\":"), "{text}");
    assert!(text.contains("\"write_lock_waits\":0"), "{text}");
    assert!(text.contains("\"write_lock_wait_micros\":"), "{text}");
    // One committed update publishes one new version: the current
    // version advances and the chain retains both, and the write-lock
    // acquisition shows up in the wait counters.
    let insert = "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
                  PREFIX ex: <http://example.org/db/>\n\
                  INSERT DATA { ex:author8 foaf:family_name \"Gall\" . }";
    assert_eq!(
        post(&server, "/update", "application/sparql-update", insert).status,
        200
    );
    let text = get(&server, "/status", None).text();
    assert!(
        text.contains("\"concurrency\":{\"current_version\":1,\"versions_retained\":2,"),
        "{text}"
    );
    assert!(text.contains("\"write_lock_waits\":1"), "{text}");
    server.shutdown();
}

#[test]
fn snapshot_endpoint_requires_durability() {
    let server = test_server();
    let response = post(&server, "/snapshot", "text/plain", "");
    assert_eq!(response.status, 501, "{}", response.text());
    assert!(response.text().contains("\"code\":\"Unsupported\""));
    // Wrong method is routed, not 404.
    assert_eq!(get(&server, "/snapshot", None).status, 405);
    server.shutdown();
}

#[test]
fn snapshot_endpoint_checkpoints_a_durable_server() {
    let dir = fixtures::scratch_dir("server-snapshot");
    let (mediator, _) = fixtures::durable_mediator_with_sample_data(&dir);
    let server = serve(
        mediator,
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let insert = "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
                  PREFIX ex: <http://example.org/db/>\n\
                  INSERT DATA { ex:author8 foaf:family_name \"Gall\" . }";
    assert_eq!(
        post(&server, "/update", "application/sparql-update", insert).status,
        200
    );
    // Durable counters are live before the checkpoint…
    let status = get(&server, "/status", None).text();
    assert!(status.contains("\"enabled\":true"), "{status}");
    assert!(status.contains("\"commits_appended\":1"), "{status}");
    // …the checkpoint truncates the WAL and reports its sequence…
    let response = post(&server, "/snapshot", "text/plain", "");
    assert_eq!(response.status, 200, "{}", response.text());
    let text = response.text();
    assert!(text.contains("\"snapshot_seq\":1"), "{text}");
    // …and /status reflects it.
    let status = get(&server, "/status", None).text();
    assert!(status.contains("\"last_snapshot\":1"), "{status}");
    assert!(status.contains("\"snapshots\":1"), "{status}");
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

// ----------------------------------------------------------------------
// Routing and HTTP-level behavior
// ----------------------------------------------------------------------

#[test]
fn unknown_paths_and_methods() {
    let server = test_server();
    assert_eq!(get(&server, "/nope", None).status, 404);
    let put = send(
        &server,
        "PUT /sparql HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(put.status, 405);
    assert_eq!(put.header("allow"), Some("GET, HEAD, POST"));
    let del = send(
        &server,
        "DELETE /update HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(del.status, 405);
    server.shutdown();
}

#[test]
fn oversized_body_is_rejected_with_413() {
    let server = serve(
        fixtures::mediator_with_sample_data(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            max_body_bytes: 64,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let response = post(
        &server,
        "/update",
        "application/sparql-update",
        &"x".repeat(65),
    );
    assert_eq!(response.status, 413);
    server.shutdown();
}

#[test]
fn oversized_head_is_rejected_with_431() {
    let server = serve(
        fixtures::mediator_with_sample_data(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            max_head_bytes: 256,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let response = send(
        &server,
        &format!(
            "GET /status HTTP/1.1\r\nHost: t\r\nX-Filler: {}\r\nConnection: close\r\n\r\n",
            "f".repeat(512)
        ),
    );
    assert_eq!(response.status, 431);
    server.shutdown();
}

#[test]
fn head_request_sends_headers_without_body() {
    let server = test_server();
    let mut conn = connect(&server);
    // HEAD then GET on one keep-alive connection: if the HEAD response
    // leaked body bytes the GET response would desynchronize.
    conn.stream()
        .write_all(b"HEAD /status HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 2048];
    // Read only the head: the blank line must be the end of the data.
    std::thread::sleep(Duration::from_millis(200));
    conn.stream()
        .set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    loop {
        match conn.stream().read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let text = String::from_utf8_lossy(&buf).into_owned();
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    assert!(
        text.ends_with("\r\n\r\n"),
        "HEAD response leaked body bytes: {text}"
    );
    let declared: usize = text
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    assert!(declared > 0, "HEAD keeps the GET Content-Length");
    // The connection is still usable for a normal GET.
    conn.stream()
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let response = conn
        .send("GET /status HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    assert_eq!(response.status, 200);
    assert!(response.text().contains("\"query_cache\""));
    server.shutdown();
}

#[test]
fn conflicting_framing_headers_are_rejected() {
    let server = test_server();
    // Differing duplicate Content-Length → 400 (anti-smuggling).
    let conflicting = send(
        &server,
        "POST /update HTTP/1.1\r\nHost: t\r\nContent-Type: application/sparql-update\r\n\
         Content-Length: 4\r\nContent-Length: 2\r\nConnection: close\r\n\r\nabcd",
    );
    assert_eq!(conflicting.status, 400);
    // A chunked Transfer-Encoding hidden behind an identity one → 501.
    let smuggled = send(
        &server,
        "POST /update HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: identity\r\n\
         Transfer-Encoding: chunked\r\nContent-Length: 4\r\n\r\nabcd",
    );
    assert_eq!(smuggled.status, 501);
    // Non-DIGIT Content-Length (Rust's parse would take "+4") → 400.
    let plus = send(
        &server,
        "POST /update HTTP/1.1\r\nHost: t\r\nContent-Type: application/sparql-update\r\n\
         Content-Length: +4\r\nConnection: close\r\n\r\nabcd",
    );
    assert_eq!(plus.status, 400);
    server.shutdown();
}

#[test]
fn crlf_flood_cannot_pin_a_worker() {
    let server = test_server();
    let mut conn = connect(&server);
    // Skipped pre-request CRLFs count against the head limit (16 KiB
    // default): a pure-CRLF stream is answered 431, not read forever.
    conn.stream().write_all(&b"\r\n".repeat(10 * 1024)).unwrap();
    let response = conn.read_response().unwrap();
    assert_eq!(response.status, 431);
    server.shutdown();
}

#[test]
fn chunked_transfer_encoding_is_501() {
    let server = test_server();
    let response = send(
        &server,
        "POST /update HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n",
    );
    assert_eq!(response.status, 501);
    server.shutdown();
}

#[test]
fn keep_alive_serves_multiple_requests_on_one_connection() {
    let server = test_server();
    let mut conn = connect(&server);
    for i in 0..3 {
        let target = format!("/sparql?query={}", urlencode(PERSONS));
        let response = conn
            .send(&format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n"))
            .unwrap();
        assert_eq!(response.status, 200, "request {i} on the same connection");
        assert_eq!(response.header("connection"), Some("keep-alive"));
    }
    // A stray CRLF between requests is skipped (RFC 9112 §2.2), not
    // treated as a malformed request line.
    let response = conn
        .send("\r\nGET /status HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    assert_eq!(response.status, 200, "stray CRLF must not kill keep-alive");
    // HTTP/1.0 without keep-alive closes.
    let response = send(&server, "GET /status HTTP/1.0\r\n\r\n");
    assert_eq!(response.header("connection"), Some("close"));
    server.shutdown();
}

#[test]
fn overload_answers_503_with_retry_after() {
    // One worker, a queue of one: park the worker on an idle
    // connection, fill the queue with a second, and the third must be
    // rejected at accept time.
    let server = serve(
        fixtures::mediator_with_sample_data(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            keep_alive_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let _parked = connect(&server); // worker blocks reading this one
    std::thread::sleep(Duration::from_millis(150));
    let _queued = connect(&server); // fills the queue
    std::thread::sleep(Duration::from_millis(150));
    let mut rejected = connect(&server);
    let response = rejected.read_response().unwrap(); // 503 written at accept
    assert_eq!(response.status, 503);
    assert_eq!(response.header("retry-after"), Some("1"));
    assert_eq!(server.stats().overload_rejections(), 1);
    server.shutdown();
}

#[test]
fn bad_request_line_is_400_and_expect_continue_is_honored() {
    let server = test_server();
    let bad = send(&server, "GARBAGE\r\n\r\n");
    assert_eq!(bad.status, 400);
    // Expect: 100-continue → interim response, then the real one.
    let mut conn = connect(&server);
    let body = format!("query={}", urlencode(PERSONS));
    conn.stream()
        .write_all(
            format!(
                "POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Type: application/x-www-form-urlencoded\r\n\
                 Content-Length: {}\r\nExpect: 100-continue\r\nConnection: close\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut interim = [0u8; 25];
    conn.stream().read_exact(&mut interim).unwrap();
    assert_eq!(&interim, b"HTTP/1.1 100 Continue\r\n\r\n");
    let response = conn.send(&body).unwrap();
    assert_eq!(response.status, 200);
    server.shutdown();
}
