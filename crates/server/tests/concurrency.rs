//! Concurrency integration test: many client threads over loopback
//! mixing queries and updates against one server — the end-to-end
//! exercise of the mediator's session model under real socket I/O.
//!
//! Invariants checked:
//!
//! * **No torn reads** — every update inserts an *even-sized* batch of
//!   marker teams in one atomic operation, so any query snapshot must
//!   observe an even number of markers;
//! * **Correct statuses under load** — well-formed updates answer 200,
//!   dangling references 409, garbage queries 400, each with the right
//!   body shape, regardless of what other threads are doing;
//! * **Graceful shutdown** — with clients still sending, shutdown
//!   completes, every response that was received is complete and
//!   well-formed, and committed writes survive into the drained
//!   mediator.

use fixtures::http_probe::{one_shot, urlencode, ProbeResponse};
use ontoaccess_server::{serve, ServerConfig};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

// ----------------------------------------------------------------------
// Fallible wrappers over the shared probe client (a request against a
// server that may be shutting down can legitimately fail at any
// point; a torn response surfaces as `None`, never as a partial body).
// ----------------------------------------------------------------------

struct Reply {
    status: u16,
    body: String,
}

impl From<ProbeResponse> for Reply {
    fn from(response: ProbeResponse) -> Reply {
        Reply {
            status: response.status,
            body: response.text(),
        }
    }
}

fn get(addr: SocketAddr, target: &str) -> Option<Reply> {
    one_shot(
        addr,
        &format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
    .ok()
    .map(Reply::from)
}

fn post_update(addr: SocketAddr, update: &str) -> Option<Reply> {
    one_shot(
        addr,
        &format!(
            "POST /update HTTP/1.1\r\nHost: t\r\nContent-Type: application/sparql-update\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{update}",
            update.len()
        ),
    )
    .ok()
    .map(Reply::from)
}

// ----------------------------------------------------------------------
// The mixed workload
// ----------------------------------------------------------------------

const WRITERS: usize = 4;
const READERS: usize = 4;
const ROUNDS: usize = 12;
// Each atomic op inserts this many marker teams; any snapshot must see
// a multiple of it.
const PAIR: usize = 2;

// All marker-team codes in one query snapshot.
const MARKER_QUERY: &str = "PREFIX ont: <http://example.org/ontology#>\n\
                            SELECT ?t ?c WHERE { ?t ont:teamCode ?c . }";

fn marker_count(body: &str) -> usize {
    body.matches("\"MARK").count()
}

fn pair_insert(team_a: i64, team_b: i64, tag: &str) -> String {
    format!(
        "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
         PREFIX ont: <http://example.org/ontology#>\n\
         PREFIX ex: <http://example.org/db/>\n\
         INSERT DATA {{\n\
           ex:team{team_a} foaf:name \"Pair {tag} a\" ; ont:teamCode \"MARK{tag}a\" .\n\
           ex:team{team_b} foaf:name \"Pair {tag} b\" ; ont:teamCode \"MARK{tag}b\" .\n\
         }}"
    )
}

#[test]
fn mixed_queries_and_updates_have_no_torn_reads_and_correct_statuses() {
    let mediator = fixtures::mediator_with_sample_data();
    let server = serve(
        mediator.clone(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 8,
            queue_capacity: 256,
            keep_alive_timeout: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    let writers_done = Arc::new(AtomicBool::new(false));
    let snapshots_checked = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for t in 0..WRITERS {
            scope.spawn(move || {
                for k in 0..ROUNDS {
                    let base = 1_000_000 + (t * ROUNDS + k) as i64 * PAIR as i64;
                    let tag = format!("t{t}k{k}");
                    // Well-formed atomic pair insert → 200 Confirmation.
                    let reply = post_update(addr, &pair_insert(base, base + 1, &tag))
                        .expect("update reply while server is up");
                    assert_eq!(reply.status, 200, "update {tag}: {}", reply.body);
                    assert!(reply.body.contains("fb:Confirmation"));
                    // Interleave deliberate failures; statuses must hold
                    // under concurrency.
                    if k % 3 == 0 {
                        let dangling = "PREFIX ont: <http://example.org/ontology#>\n\
                                        PREFIX ex: <http://example.org/db/>\n\
                                        INSERT DATA { ex:author6 ont:team ex:team77777777 . }";
                        let reply = post_update(addr, dangling).expect("dangling reply");
                        assert_eq!(reply.status, 409, "{}", reply.body);
                        assert!(reply.body.contains("fb:Rejection"));
                    }
                }
            });
        }
        for r in 0..READERS {
            let writers_done = Arc::clone(&writers_done);
            let snapshots_checked = Arc::clone(&snapshots_checked);
            scope.spawn(move || {
                let target = format!("/sparql?query={}", urlencode(MARKER_QUERY));
                let mut i = 0usize;
                while !writers_done.load(Ordering::SeqCst) {
                    if i % 5 == 4 {
                        // Garbage query → 400, even under write load.
                        let reply =
                            get(addr, &format!("/sparql?query={}", urlencode("NOT SPARQL")))
                                .expect("error reply");
                        assert_eq!(reply.status, 400);
                    } else {
                        let reply = get(addr, &target).expect("query reply");
                        assert_eq!(reply.status, 200);
                        let markers = marker_count(&reply.body);
                        // The torn-read check: ops insert PAIR markers
                        // atomically, so every snapshot sees a multiple.
                        assert_eq!(
                            markers % PAIR,
                            0,
                            "reader {r} saw a torn write: {markers} markers"
                        );
                        snapshots_checked.fetch_add(1, Ordering::Relaxed);
                    }
                    i += 1;
                }
            });
        }
        // Stop the readers once every writer's effect is visible (the
        // deadline only bounds the wait if a writer panicked — the
        // scope join below then propagates that panic).
        let expected = WRITERS * ROUNDS * PAIR;
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        loop {
            let reply = get(addr, &format!("/sparql?query={}", urlencode(MARKER_QUERY)))
                .expect("progress poll");
            if marker_count(&reply.body) >= expected || std::time::Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        writers_done.store(true, Ordering::SeqCst);
    });

    assert!(
        snapshots_checked.load(Ordering::Relaxed) > 0,
        "readers must have observed at least one snapshot"
    );
    // Final state: exactly every pair, visible over HTTP and in the
    // shared mediator.
    let reply = get(addr, &format!("/sparql?query={}", urlencode(MARKER_QUERY))).unwrap();
    assert_eq!(marker_count(&reply.body), WRITERS * ROUNDS * PAIR);
    server.shutdown();
    let solutions = mediator.select(MARKER_QUERY).unwrap();
    let markers = solutions
        .bindings
        .iter()
        .filter(|b| {
            b.get("c")
                .and_then(|t| t.as_literal())
                .is_some_and(|l| l.lexical().starts_with("MARK"))
        })
        .count();
    assert_eq!(markers, WRITERS * ROUNDS * PAIR);
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let mediator = fixtures::mediator_with_sample_data();
    let server = serve(
        mediator.clone(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            keep_alive_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));

    let clients: Vec<_> = (0..4)
        .map(|c| {
            let stop = Arc::clone(&stop);
            let completed = Arc::clone(&completed);
            std::thread::spawn(move || {
                let mut ok_after_none = false;
                while !stop.load(Ordering::SeqCst) {
                    let reply = if c % 2 == 0 {
                        get(addr, "/status")
                    } else {
                        let update = format!(
                            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
                             PREFIX ex: <http://example.org/db/>\n\
                             INSERT DATA {{ ex:author{} foaf:family_name \"L{}\" . }}",
                            5_000_000 + c,
                            c
                        );
                        post_update(addr, &update)
                    };
                    match reply {
                        Some(reply) => {
                            // Every response that arrives must be complete
                            // and well-formed — even mid-shutdown. (The
                            // first insert per client succeeds, repeats
                            // conflict; both are expected statuses.)
                            assert!(
                                matches!(reply.status, 200 | 409 | 503),
                                "unexpected status {} during shutdown",
                                reply.status
                            );
                            assert!(!reply.body.is_empty());
                            assert!(!ok_after_none, "request succeeded after the listener died");
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        // Connection refused / cut: the server is gone —
                        // it must not come back.
                        None => ok_after_none = true,
                    }
                }
            })
        })
        .collect();

    // Let the clients build up traffic, then shut down underneath them.
    std::thread::sleep(Duration::from_millis(200));
    server.shutdown(); // must return: drained, joined, listener closed
    assert!(
        completed.load(Ordering::Relaxed) > 0,
        "clients must have completed requests before shutdown"
    );
    // After shutdown nothing accepts.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err()
            || get(addr, "/status").is_none(),
        "server still answering after shutdown"
    );
    stop.store(true, Ordering::SeqCst);
    for client in clients {
        client.join().unwrap();
    }
    // Committed writes survived the drain into the shared mediator.
    let survivors = mediator
        .select(
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             SELECT ?x WHERE { ?x a foaf:Person . }",
        )
        .unwrap();
    assert!(survivors.len() >= 2, "sample authors remain");
}
