//! Golden-file tests for the wire serializers: the SPARQL JSON/XML
//! results documents are compared byte-for-byte against checked-in
//! expectations (escaping, typed and language-tagged literals, blank
//! nodes, unbound variables), and graph serialization is verified by
//! round-tripping through the workspace's own Turtle and N-Triples
//! parsers.
//!
//! Regenerate the golden files after an intentional format change with
//! `UPDATE_GOLDEN=1 cargo test -p ontoaccess-server --test wire_golden`.

use ontoaccess_server::wire;
use rdf::namespace::PrefixMap;
use rdf::{Graph, Iri, Literal, Term, Triple};
use sparql::{Binding, Solutions};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

// Compare against the checked-in file, or rewrite it when
// UPDATE_GOLDEN is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "{name} diverged from its golden file (run with UPDATE_GOLDEN=1 to regenerate)"
    );
}

// A solution sequence exercising every term shape and the characters
// both formats must escape.
fn tricky_solutions() -> Solutions {
    let xsd_integer = Iri::parse("http://www.w3.org/2001/XMLSchema#integer").unwrap();
    let mut first = Binding::new();
    first.insert("s".into(), Term::iri("http://example.org/db/a?x=1&y='2'"));
    first.insert("label".into(), Term::Literal(Literal::lang("café", "FR")));
    first.insert(
        "count".into(),
        Term::Literal(Literal::typed("42", xsd_integer)),
    );
    first.insert(
        "note".into(),
        Term::Literal(Literal::plain("say \"hi\" \\ tab\there\nnew & <line>\u{1}")),
    );
    // `missing` stays unbound in the first solution.
    let mut second = Binding::new();
    second.insert("s".into(), Term::blank("b0"));
    second.insert(
        "label".into(),
        Term::Literal(Literal::plain("<&>'\" plain")),
    );
    second.insert("missing".into(), Term::plain("bound here"));
    Solutions {
        variables: vec![
            "s".into(),
            "label".into(),
            "count".into(),
            "note".into(),
            "missing".into(),
        ],
        bindings: vec![first, second],
    }
}

#[test]
fn sparql_json_results_match_golden() {
    assert_golden("select.json", &wire::solutions_to_json(&tricky_solutions()));
}

#[test]
fn sparql_xml_results_match_golden() {
    assert_golden("select.xml", &wire::solutions_to_xml(&tricky_solutions()));
}

#[test]
fn boolean_results_match_golden() {
    assert_golden("ask_true.json", &wire::boolean_to_json(true));
    assert_golden("ask_false.xml", &wire::boolean_to_xml(false));
}

#[test]
fn empty_solutions_serialize_to_empty_sequences() {
    let empty = Solutions {
        variables: vec!["x".into()],
        bindings: vec![],
    };
    assert_eq!(
        wire::solutions_to_json(&empty),
        "{\"head\":{\"vars\":[\"x\"]},\"results\":{\"bindings\":[]}}"
    );
    assert!(wire::solutions_to_xml(&empty).contains("<results>\n  </results>"));
}

// A graph exercising term shapes the serializers must not mangle.
fn tricky_graph() -> Graph {
    let mut g = Graph::new();
    let s = Term::iri("http://example.org/db/entity1");
    let p = |local: &str| Iri::parse(format!("http://example.org/ontology#{local}")).unwrap();
    g.insert(Triple::new(
        s.clone(),
        p("quote"),
        Term::Literal(Literal::plain("a \"quoted\" value with \\ and \nnewline")),
    ));
    g.insert(Triple::new(
        s.clone(),
        p("lang"),
        Term::Literal(Literal::lang("grüße", "de")),
    ));
    g.insert(Triple::new(
        s.clone(),
        p("typed"),
        Term::Literal(Literal::typed(
            "3.14",
            Iri::parse("http://www.w3.org/2001/XMLSchema#double").unwrap(),
        )),
    ));
    g.insert(Triple::new(s, p("linked"), Term::blank("anon1")));
    g.insert(Triple::new(
        Term::blank("anon1"),
        p("backref"),
        Term::iri("http://example.org/db/entity2"),
    ));
    g
}

#[test]
fn graph_turtle_round_trips_through_the_parser() {
    let graph = tricky_graph();
    let turtle = wire::graph_to_turtle(&graph, &PrefixMap::common());
    let parsed = rdf::turtle::parse(&turtle).expect("server-produced Turtle parses");
    assert_eq!(parsed, graph, "Turtle round-trip must preserve the graph");
}

#[test]
fn graph_ntriples_round_trips_through_the_parser() {
    let graph = tricky_graph();
    let nt = wire::graph_to_ntriples(&graph);
    let parsed = rdf::ntriples::parse(&nt).expect("server-produced N-Triples parses");
    assert_eq!(
        parsed, graph,
        "N-Triples round-trip must preserve the graph"
    );
}

#[test]
fn mediator_query_results_round_trip_sanely() {
    // End to end through the real engine: the JSON document for a
    // fixture query carries the expected URIs, correctly typed.
    let mediator = fixtures::mediator_with_sample_data();
    let solutions = mediator
        .select(
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             SELECT ?x WHERE { ?x a foaf:Person . }",
        )
        .unwrap();
    let json = wire::solutions_to_json(&solutions);
    assert!(json.contains("{\"type\":\"uri\",\"value\":\"http://example.org/db/author6\"}"));
    let xml = wire::solutions_to_xml(&solutions);
    assert!(xml.contains("<uri>http://example.org/db/author7</uri>"));
}
