//! Observability integration tests: the `/metrics` Prometheus
//! exposition (validated with the fixtures' format checker), per-query
//! profiling (`?profile=1` → `X-Profile`), request-id propagation, and
//! the bounded slow-query log on `/status`.

use fixtures::http_probe::{one_shot, urlencode, ProbeResponse};
use ontoaccess_server::{serve, ServerConfig, ServerHandle};
use std::time::Duration;

fn send(server: &ServerHandle, raw: &str) -> ProbeResponse {
    one_shot(server.addr(), raw).expect("request against the test server")
}

fn get(server: &ServerHandle, target: &str) -> ProbeResponse {
    send(
        server,
        &format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn test_server(slow_query_ms: u64) -> ServerHandle {
    serve(
        fixtures::mediator_with_sample_data(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            keep_alive_timeout: Duration::from_millis(500),
            slow_query_ms,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

const PERSONS: &str = "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
                       SELECT ?x WHERE { ?x a foaf:Person . }";

const JOIN_QUERY: &str = "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
                          PREFIX ont: <http://example.org/ontology#>\n\
                          SELECT ?n ?c WHERE { ?x a foaf:Person . \
                          ?x foaf:family_name ?n . ?x ont:team ?t . \
                          ?t ont:teamCode ?c . }";

// ----------------------------------------------------------------------
// /metrics exposition
// ----------------------------------------------------------------------

#[test]
fn metrics_expose_valid_prometheus_text_across_layers() {
    let server = test_server(250);
    // Drive some traffic so the interesting series exist.
    for _ in 0..3 {
        let q = get(&server, &format!("/sparql?query={}", urlencode(PERSONS)));
        assert_eq!(q.status, 200);
    }
    let update = "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
                  PREFIX ont: <http://example.org/ontology#>\n\
                  PREFIX ex: <http://example.org/db/>\n\
                  INSERT DATA { ex:team9 foaf:name \"Obs\" ; ont:teamCode \"OBS\" . }";
    let response = send(
        &server,
        &format!(
            "POST /update HTTP/1.1\r\nHost: t\r\n\
             Content-Type: application/sparql-update\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{update}",
            update.len()
        ),
    );
    assert_eq!(response.status, 200);

    let metrics = get(&server, "/metrics");
    assert_eq!(metrics.status, 200);
    assert_eq!(
        metrics.header("content-type"),
        Some("text/plain; version=0.0.4")
    );
    let text = metrics.text();
    let exposition = fixtures::prom::validate(&text)
        .unwrap_or_else(|e| panic!("/metrics must be valid exposition: {e}\n{text}"));

    // One stable name per instrumented layer, histograms included.
    for name in [
        // server
        "ontoaccess_http_requests_total",
        "ontoaccess_http_queries_total",
        "ontoaccess_http_in_flight_requests",
        "ontoaccess_pool_queue_depth",
        // core
        "ontoaccess_query_parse_seconds_count",
        "ontoaccess_query_execute_seconds_sum",
        "ontoaccess_query_cache_hits_total",
        "ontoaccess_txn_commit_seconds_count",
        "ontoaccess_query_cache_entries",
        // sampled gauges
        "ontoaccess_dictionary_symbols",
        "ontoaccess_mvcc_current_version",
        "ontoaccess_build_info",
    ] {
        assert!(exposition.has(name), "missing {name} in:\n{text}");
    }
    // The per-endpoint histogram carries the endpoint label.
    let by_endpoint = exposition.series("ontoaccess_http_request_seconds_count");
    assert!(
        by_endpoint
            .iter()
            .any(|s| s.label("endpoint") == Some("/sparql") && s.value >= 3.0),
        "per-endpoint latency series in:\n{text}"
    );
    server.shutdown();
}

// ----------------------------------------------------------------------
// ?profile=1
// ----------------------------------------------------------------------

#[test]
fn profile_param_returns_plan_and_stage_timings() {
    let server = test_server(250);
    let target = format!("/sparql?query={}&profile=1", urlencode(JOIN_QUERY));
    let first = get(&server, &target);
    assert_eq!(first.status, 200);
    let profile = first.header("x-profile").expect("X-Profile on first run");
    assert!(
        profile.contains("\"cache_hit\":false"),
        "first run compiles: {profile}"
    );
    for key in [
        "\"parse_micros\":",
        "\"plan_micros\":",
        "\"execute_micros\":",
        "\"rows\":",
        "\"joins\":[",
        "\"strategy\":",
        "\"join_keys\":",
        "\"residual_conjuncts\":",
    ] {
        assert!(profile.contains(key), "{key} in {profile}");
    }
    // The three-join query plans real join work.
    assert!(
        profile.contains("\"table\":"),
        "join targets named: {profile}"
    );

    let second = get(&server, &target);
    let profile = second.header("x-profile").expect("X-Profile on rerun");
    assert!(
        profile.contains("\"cache_hit\":true"),
        "second run hits the cache: {profile}"
    );
    // A plain query is unaffected.
    let plain = get(&server, &format!("/sparql?query={}", urlencode(PERSONS)));
    assert_eq!(plain.status, 200);
    assert!(plain.header("x-profile").is_none());
    server.shutdown();
}

// ----------------------------------------------------------------------
// X-Request-Id
// ----------------------------------------------------------------------

#[test]
fn request_ids_are_echoed_or_generated_and_attached_to_errors() {
    let server = test_server(250);
    // Inbound ids within the allowed alphabet flow through.
    let response = send(
        &server,
        "GET /status HTTP/1.1\r\nHost: t\r\nX-Request-Id: trace-42.a\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(response.header("x-request-id"), Some("trace-42.a"));
    // Absent (or unusable) ids get a generated one.
    let response = get(&server, "/status");
    let generated = response.header("x-request-id").expect("generated id");
    assert!(!generated.is_empty());
    let response = send(
        &server,
        "GET /status HTTP/1.1\r\nHost: t\r\nX-Request-Id: bad id!\r\nConnection: close\r\n\r\n",
    );
    let replaced = response.header("x-request-id").expect("replacement id");
    assert_ne!(replaced, "bad id!");
    // JSON error bodies lead with the request id.
    let error = send(
        &server,
        "GET /nowhere HTTP/1.1\r\nHost: t\r\nX-Request-Id: err-7\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(error.status, 404);
    assert_eq!(error.header("x-request-id"), Some("err-7"));
    let text = error.text();
    assert!(
        text.starts_with("{\"request_id\":\"err-7\","),
        "id leads the error body: {text}"
    );
    assert!(text.contains("\"error\":{"), "error object kept: {text}");
    server.shutdown();
}

// ----------------------------------------------------------------------
// Slow-query log
// ----------------------------------------------------------------------

#[test]
fn slow_query_log_is_bounded_and_surfaced_on_status() {
    // Threshold 0: every query is "slow", so the ring must evict.
    let server = test_server(0);
    for i in 0..40 {
        let query = format!(
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             SELECT ?x{i} WHERE {{ ?x{i} a foaf:Person . }}"
        );
        let response = get(&server, &format!("/sparql?query={}", urlencode(&query)));
        assert_eq!(response.status, 200);
    }
    let status = get(&server, "/status");
    assert_eq!(status.status, 200);
    let text = status.text();
    let entries = text.matches("\"micros\":").count();
    assert_eq!(entries, 32, "ring capped at 32 entries: {text}");
    // The oldest queries were evicted, the newest retained.
    assert!(!text.contains("?x0 "), "oldest evicted: {text}");
    assert!(text.contains("?x39"), "newest retained: {text}");
    server.shutdown();
}
