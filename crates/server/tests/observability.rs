//! Observability integration tests: the `/metrics` Prometheus
//! exposition (validated with the fixtures' format checker), per-query
//! profiling (`?profile=1` → `X-Profile`), request-id propagation,
//! the bounded slow-query log on `/status`, the trace endpoints
//! (`/trace/<id>`, `/traces`), `?explain=1`, and update profiling.

use fixtures::http_probe::{one_shot, urlencode, ProbeResponse};
use ontoaccess_server::{serve, ServerConfig, ServerHandle};
use std::time::Duration;

fn send(server: &ServerHandle, raw: &str) -> ProbeResponse {
    one_shot(server.addr(), raw).expect("request against the test server")
}

fn get(server: &ServerHandle, target: &str) -> ProbeResponse {
    send(
        server,
        &format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn test_server(slow_query_ms: u64) -> ServerHandle {
    serve(
        fixtures::mediator_with_sample_data(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            keep_alive_timeout: Duration::from_millis(500),
            slow_query_ms,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

const PERSONS: &str = "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
                       SELECT ?x WHERE { ?x a foaf:Person . }";

const JOIN_QUERY: &str = "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
                          PREFIX ont: <http://example.org/ontology#>\n\
                          SELECT ?n ?c WHERE { ?x a foaf:Person . \
                          ?x foaf:family_name ?n . ?x ont:team ?t . \
                          ?t ont:teamCode ?c . }";

// ----------------------------------------------------------------------
// /metrics exposition
// ----------------------------------------------------------------------

#[test]
fn metrics_expose_valid_prometheus_text_across_layers() {
    let server = test_server(250);
    // Drive some traffic so the interesting series exist.
    for _ in 0..3 {
        let q = get(&server, &format!("/sparql?query={}", urlencode(PERSONS)));
        assert_eq!(q.status, 200);
    }
    let update = "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
                  PREFIX ont: <http://example.org/ontology#>\n\
                  PREFIX ex: <http://example.org/db/>\n\
                  INSERT DATA { ex:team9 foaf:name \"Obs\" ; ont:teamCode \"OBS\" . }";
    let response = send(
        &server,
        &format!(
            "POST /update HTTP/1.1\r\nHost: t\r\n\
             Content-Type: application/sparql-update\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{update}",
            update.len()
        ),
    );
    assert_eq!(response.status, 200);

    let metrics = get(&server, "/metrics");
    assert_eq!(metrics.status, 200);
    assert_eq!(
        metrics.header("content-type"),
        Some("text/plain; version=0.0.4")
    );
    let text = metrics.text();
    let exposition = fixtures::prom::validate(&text)
        .unwrap_or_else(|e| panic!("/metrics must be valid exposition: {e}\n{text}"));

    // One stable name per instrumented layer, histograms included.
    for name in [
        // server
        "ontoaccess_http_requests_total",
        "ontoaccess_http_queries_total",
        "ontoaccess_http_in_flight_requests",
        "ontoaccess_pool_queue_depth",
        // core
        "ontoaccess_query_parse_seconds_count",
        "ontoaccess_query_execute_seconds_sum",
        "ontoaccess_query_cache_hits_total",
        "ontoaccess_txn_commit_seconds_count",
        "ontoaccess_query_cache_entries",
        // sampled gauges
        "ontoaccess_dictionary_symbols",
        "ontoaccess_mvcc_current_version",
        "ontoaccess_build_info",
    ] {
        assert!(exposition.has(name), "missing {name} in:\n{text}");
    }
    // The per-endpoint histogram carries the endpoint label.
    let by_endpoint = exposition.series("ontoaccess_http_request_seconds_count");
    assert!(
        by_endpoint
            .iter()
            .any(|s| s.label("endpoint") == Some("/sparql") && s.value >= 3.0),
        "per-endpoint latency series in:\n{text}"
    );
    server.shutdown();
}

// ----------------------------------------------------------------------
// ?profile=1
// ----------------------------------------------------------------------

#[test]
fn profile_param_returns_plan_and_stage_timings() {
    let server = test_server(250);
    let target = format!("/sparql?query={}&profile=1", urlencode(JOIN_QUERY));
    let first = get(&server, &target);
    assert_eq!(first.status, 200);
    let profile = first.header("x-profile").expect("X-Profile on first run");
    assert!(
        profile.contains("\"cache_hit\":false"),
        "first run compiles: {profile}"
    );
    for key in [
        "\"parse_micros\":",
        "\"plan_micros\":",
        "\"execute_micros\":",
        "\"rows\":",
        "\"joins\":[",
        "\"strategy\":",
        "\"join_keys\":",
        "\"residual_conjuncts\":",
    ] {
        assert!(profile.contains(key), "{key} in {profile}");
    }
    // The three-join query plans real join work.
    assert!(
        profile.contains("\"table\":"),
        "join targets named: {profile}"
    );

    let second = get(&server, &target);
    let profile = second.header("x-profile").expect("X-Profile on rerun");
    assert!(
        profile.contains("\"cache_hit\":true"),
        "second run hits the cache: {profile}"
    );
    // A plain query is unaffected.
    let plain = get(&server, &format!("/sparql?query={}", urlencode(PERSONS)));
    assert_eq!(plain.status, 200);
    assert!(plain.header("x-profile").is_none());
    server.shutdown();
}

// ----------------------------------------------------------------------
// X-Request-Id
// ----------------------------------------------------------------------

#[test]
fn request_ids_are_echoed_or_generated_and_attached_to_errors() {
    let server = test_server(250);
    // Inbound ids within the allowed alphabet flow through.
    let response = send(
        &server,
        "GET /status HTTP/1.1\r\nHost: t\r\nX-Request-Id: trace-42.a\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(response.header("x-request-id"), Some("trace-42.a"));
    // Absent (or unusable) ids get a generated one.
    let response = get(&server, "/status");
    let generated = response.header("x-request-id").expect("generated id");
    assert!(!generated.is_empty());
    let response = send(
        &server,
        "GET /status HTTP/1.1\r\nHost: t\r\nX-Request-Id: bad id!\r\nConnection: close\r\n\r\n",
    );
    let replaced = response.header("x-request-id").expect("replacement id");
    assert_ne!(replaced, "bad id!");
    // JSON error bodies lead with the request id.
    let error = send(
        &server,
        "GET /nowhere HTTP/1.1\r\nHost: t\r\nX-Request-Id: err-7\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(error.status, 404);
    assert_eq!(error.header("x-request-id"), Some("err-7"));
    let text = error.text();
    assert!(
        text.starts_with("{\"request_id\":\"err-7\","),
        "id leads the error body: {text}"
    );
    assert!(text.contains("\"error\":{"), "error object kept: {text}");
    server.shutdown();
}

// ----------------------------------------------------------------------
// Slow-query log
// ----------------------------------------------------------------------

#[test]
fn slow_ring_entries_link_to_retained_traces() {
    // Threshold 0: the query is "slow", so its trace is pinned to the
    // priority ring and the slow-ring entry links to it by request id.
    let server = test_server(0);
    let response = send(
        &server,
        &format!(
            "GET /sparql?query={} HTTP/1.1\r\nHost: t\r\n\
             X-Request-Id: slow-link-1\r\nConnection: close\r\n\r\n",
            urlencode(PERSONS)
        ),
    );
    assert_eq!(response.status, 200);
    let status = get(&server, "/status");
    let text = status.text();
    assert!(
        text.contains("\"request_id\":\"slow-link-1\""),
        "ring entry names the request id: {text}"
    );
    assert!(
        text.contains("\"trace_retained\":true"),
        "ring entry flags the retained trace: {text}"
    );
    // The flagged id resolves on the trace endpoint.
    let trace = get(&server, "/trace/slow-link-1");
    assert_eq!(trace.status, 200);
    assert!(trace.text().contains("\"trace_id\":\"slow-link-1\""));
    server.shutdown();
}

#[test]
fn slow_query_log_is_bounded_and_surfaced_on_status() {
    // Threshold 0: every query is "slow", so the ring must evict.
    let server = test_server(0);
    for i in 0..40 {
        let query = format!(
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
             SELECT ?x{i} WHERE {{ ?x{i} a foaf:Person . }}"
        );
        let response = get(&server, &format!("/sparql?query={}", urlencode(&query)));
        assert_eq!(response.status, 200);
    }
    let status = get(&server, "/status");
    assert_eq!(status.status, 200);
    let text = status.text();
    let entries = text.matches("\"micros\":").count();
    assert_eq!(entries, 32, "ring capped at 32 entries: {text}");
    // The oldest queries were evicted, the newest retained.
    assert!(!text.contains("?x0 "), "oldest evicted: {text}");
    assert!(text.contains("?x39"), "newest retained: {text}");
    server.shutdown();
}

// ----------------------------------------------------------------------
// Trace endpoints
// ----------------------------------------------------------------------

#[test]
fn trace_endpoint_returns_the_span_tree_of_a_slow_query() {
    // Threshold 0: the request is tail-classified slow, so its trace
    // lands in the priority ring and `/trace/<id>` must resolve it.
    let server = test_server(0);
    let response = send(
        &server,
        &format!(
            "GET /sparql?query={} HTTP/1.1\r\nHost: t\r\n\
             X-Request-Id: traced-join-1\r\nConnection: close\r\n\r\n",
            urlencode(JOIN_QUERY)
        ),
    );
    assert_eq!(response.status, 200);

    let trace = get(&server, "/trace/traced-join-1");
    assert_eq!(trace.status, 200);
    assert_eq!(trace.header("content-type"), Some("application/json"));
    let text = trace.text();
    // Record header: keyed by the request id, classified slow.
    assert!(text.contains("\"trace_id\":\"traced-join-1\""), "{text}");
    assert!(text.contains("\"root\":\"request\""), "{text}");
    assert!(text.contains("\"slow\":true"), "{text}");
    // The span tree crosses the server layer into core: the root
    // request span parents the query pipeline, joins included.
    for span in [
        "\"name\":\"query.parse\"",
        "\"name\":\"query.plan\"",
        "\"name\":\"query.execute\"",
        "\"name\":\"query.join\"",
    ] {
        assert!(text.contains(span), "{span} in {text}");
    }
    assert!(
        text.contains("\"parent\":null") && text.contains("\"parent\":0"),
        "root is parentless, top-level spans parent to it: {text}"
    );
    assert!(
        text.contains("\"strategy\":"),
        "join spans carry the strategy: {text}"
    );

    // The index lists it, with store occupancy and the span canary.
    let index = get(&server, "/traces");
    assert_eq!(index.status, 200);
    let text = index.text();
    assert!(text.contains("\"trace_id\":\"traced-join-1\""), "{text}");
    for key in [
        "\"priority\":",
        "\"sampled\":",
        "\"spans_held\":",
        "\"traces\":[",
    ] {
        assert!(text.contains(key), "{key} in {text}");
    }

    // Unknown ids answer a JSON 404.
    let missing = get(&server, "/trace/never-seen");
    assert_eq!(missing.status, 404);
    server.shutdown();
}

// ----------------------------------------------------------------------
// ?explain=1
// ----------------------------------------------------------------------

#[test]
fn explain_matches_the_profiled_join_plan_without_executing() {
    let server = test_server(250);
    let profile_target = format!("/sparql?query={}&profile=1", urlencode(JOIN_QUERY));
    // First run compiles against a snapshot pinned before the join
    // indexes were provisioned; the steady state (cache hit, fresh
    // pin) is what EXPLAIN must match byte for byte.
    assert_eq!(get(&server, &profile_target).status, 200);
    let profiled = get(&server, &profile_target);
    assert_eq!(profiled.status, 200);
    let profile = profiled.header("x-profile").expect("X-Profile").to_owned();

    let explained = get(
        &server,
        &format!("/sparql?query={}&explain=1", urlencode(JOIN_QUERY)),
    );
    assert_eq!(explained.status, 200);
    assert_eq!(explained.header("content-type"), Some("application/json"));
    let body = explained.text();
    assert!(body.contains("\"form\":\"select\""), "{body}");
    assert!(body.contains("\"cache_hit\":true"), "{body}");
    for key in [
        "\"version_seq\":",
        "\"join_keys\":",
        "\"conjuncts\":",
        "\"residual_conjuncts\":",
    ] {
        assert!(body.contains(key), "{key} in {body}");
    }
    // No execution: EXPLAIN reports the plan, never row data.
    assert!(
        !body.contains("\"rows\""),
        "explain must not execute: {body}"
    );

    // The joins array — join order, index selections — is the same
    // bytes on both surfaces (shared renderer over the shared plan
    // computation).
    let joins_of = |s: &str| {
        let start = s.find("\"joins\":[").expect("joins array");
        let end = s[start..].find(']').expect("closed array");
        s[start..start + end + 1].to_owned()
    };
    assert_eq!(
        joins_of(&body),
        joins_of(&profile),
        "explain joins must be byte-identical to the profiled plan"
    );
    server.shutdown();
}

// ----------------------------------------------------------------------
// Update ?profile=1
// ----------------------------------------------------------------------

#[test]
fn update_profile_param_returns_stage_timings() {
    let server = test_server(250);
    let update = "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
                  PREFIX ont: <http://example.org/ontology#>\n\
                  PREFIX ex: <http://example.org/db/>\n\
                  INSERT DATA { ex:team8 foaf:name \"Profiled\" ; ont:teamCode \"PRF\" . }";
    let response = send(
        &server,
        &format!(
            "POST /update?profile=1 HTTP/1.1\r\nHost: t\r\n\
             Content-Type: application/sparql-update\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{update}",
            update.len()
        ),
    );
    assert_eq!(response.status, 200);
    let profile = response.header("x-profile").expect("X-Profile on update");
    for key in [
        "\"parse_micros\":",
        "\"translate_micros\":",
        "\"sort_micros\":",
        "\"execute_micros\":",
        "\"wal_append_micros\":",
        "\"fsync_micros\":",
        "\"operations\":1",
    ] {
        assert!(profile.contains(key), "{key} in {profile}");
    }
    // The feedback document still answers the body.
    assert!(
        response.text().contains("Confirmation"),
        "feedback body kept"
    );

    // A plain update is unaffected.
    let update2 = update.replace("team8", "team7").replace("PRF", "PR7");
    let plain = send(
        &server,
        &format!(
            "POST /update HTTP/1.1\r\nHost: t\r\n\
             Content-Type: application/sparql-update\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{update2}",
            update2.len()
        ),
    );
    assert_eq!(plain.status, 200);
    assert!(plain.header("x-profile").is_none());
    server.shutdown();
}
