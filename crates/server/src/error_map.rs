//! Structured mapping from [`OntoError`] to HTTP.
//!
//! One exhaustive `match` decides the status for every variant — no
//! wildcard arm, so adding a variant to [`OntoError`] is a compile
//! error here until someone decides its wire status. The error body is
//! machine-readable JSON carrying the mediator's stable error code,
//! the rendered message, and the hint when the feedback protocol has
//! one.

use crate::json::JsonObject;
use crate::wire::JSON;
use ontoaccess::OntoError;

/// The HTTP status a rejection maps to.
///
/// The grouping mirrors the paper's rejection taxonomy:
///
/// * requests the parser refuses or that are structurally unanswerable
///   → **400** (client must rewrite the request text);
/// * requests that parse but violate the mapping's semantic contract
///   (unknown subjects/properties, class or datatype mismatches,
///   missing required properties) → **422** (well-formed but
///   unprocessable against this mapping);
/// * requests that conflict with the *current state* of the database
///   (dangling references, already-set attributes, absent triples,
///   NOT-NULL protection, engine-level constraint violations) →
///   **409** (the same request could succeed against another state);
/// * requests using features outside the supported fragment → **501**;
/// * durable-storage faults (WAL append/fsync failure, poisoned log) →
///   **500** — the request is fine, the server's disk is not.
pub fn status_for(error: &OntoError) -> u16 {
    match error {
        // 400 — the request text itself is at fault.
        OntoError::Parse { .. } => 400,
        OntoError::AmbiguousPattern { .. } => 400,
        OntoError::BlankNodeSubject { .. } => 400,
        // 422 — parses, but the mapping cannot process it.
        OntoError::UnknownSubject { .. } => 422,
        OntoError::UnknownProperty { .. } => 422,
        OntoError::ClassMismatch { .. } => 422,
        OntoError::ValueIncompatible { .. } => 422,
        OntoError::MissingRequiredProperty { .. } => 422,
        OntoError::CannotRemoveType { .. } => 422,
        // 409 — valid request, wrong database state.
        OntoError::DanglingObject { .. } => 409,
        OntoError::AttributeAlreadySet { .. } => 409,
        OntoError::TripleNotPresent { .. } => 409,
        OntoError::NotNullDelete { .. } => 409,
        OntoError::Database(_) => 409,
        // 409 — valid request, wrong *server*: a read replica refuses
        // writes and the error names the leader that accepts them.
        OntoError::ReadOnlyReplica { .. } => 409,
        // 500 — the server's durable storage failed, not the request.
        OntoError::Storage { .. } => 500,
        // 501 — outside the implemented fragment.
        OntoError::Unsupported { .. } => 501,
    }
}

/// The JSON error document: stable code, status, message, and the
/// feedback protocol's hint when available.
pub fn error_body(error: &OntoError) -> String {
    let mut inner = JsonObject::new()
        .str("code", error.code())
        .u64("status", status_for(error) as u64)
        .str("message", &error.to_string());
    if let Some(hint) = error.hint() {
        inner = inner.str("hint", &hint);
    }
    JsonObject::new().raw("error", &inner.finish()).finish()
}

/// A protocol-level (non-mediator) JSON error document.
pub fn protocol_error_body(status: u16, message: &str) -> String {
    let inner = JsonObject::new()
        .str("code", "Protocol")
        .u64("status", status as u64)
        .str("message", message)
        .finish();
    JsonObject::new().raw("error", &inner).finish()
}

/// Content type of the JSON error documents.
pub const ERROR_CONTENT_TYPE: &str = JSON;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_partition_the_variants() {
        let parse = OntoError::Parse {
            message: "x".into(),
        };
        assert_eq!(status_for(&parse), 400);
        let unknown = OntoError::UnknownSubject {
            subject: rdf::Term::iri("http://example.org/x"),
        };
        assert_eq!(status_for(&unknown), 422);
        let dangling = OntoError::NotNullDelete {
            table: "author".into(),
            attribute: "lastname".into(),
        };
        assert_eq!(status_for(&dangling), 409);
        let unsupported = OntoError::Unsupported {
            message: "x".into(),
        };
        assert_eq!(status_for(&unsupported), 501);
        let storage = OntoError::Storage {
            message: "wal append failed".into(),
        };
        assert_eq!(status_for(&storage), 500);
    }

    #[test]
    fn error_body_carries_code_and_hint() {
        let e = OntoError::NotNullDelete {
            table: "author".into(),
            attribute: "lastname".into(),
        };
        let body = error_body(&e);
        assert!(body.contains("\"code\":\"NotNullDelete\""));
        assert!(body.contains("\"status\":409"));
        assert!(body.contains("\"hint\":"));
    }
}
