//! Server-side observability plumbing: the per-endpoint HTTP metric
//! handles and the bounded slow-query log.
//!
//! Metric handles are resolved once at server construction (registry
//! lookups take a mutex; the request path must not), then recording is
//! a couple of relaxed atomic ops per request — cheap enough to leave
//! on in production, and compiled to a no-op via [`obs::set_enabled`]
//! for the overhead baseline.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

const ENDPOINT_HELP: &str = "HTTP request wall time per endpoint, routing through response build";

// The routable paths, each its own labeled latency series; anything
// else (404s) lands in the "other" series.
const ENDPOINTS: &[&str] = &[
    "/",
    "/sparql",
    "/update",
    "/describe",
    "/dump",
    "/status",
    "/metrics",
    "/snapshot",
    "/wal",
    "/snapshot/latest",
    "/trace",
    "/traces",
];

/// Pre-resolved handles for the HTTP layer's metrics.
#[derive(Debug)]
pub(crate) struct HttpMetrics {
    /// Requests currently being handled (gauge).
    pub in_flight: &'static obs::Gauge,
    endpoints: Vec<(&'static str, &'static obs::Histogram)>,
    other: &'static obs::Histogram,
}

impl HttpMetrics {
    pub fn new() -> Self {
        let registry = obs::registry();
        HttpMetrics {
            in_flight: registry.gauge(
                "ontoaccess_http_in_flight_requests",
                "Requests currently being handled by a worker",
            ),
            endpoints: ENDPOINTS
                .iter()
                .map(|path| {
                    (
                        *path,
                        registry.latency_histogram_labeled(
                            "ontoaccess_http_request_seconds",
                            ENDPOINT_HELP,
                            ("endpoint", path),
                        ),
                    )
                })
                .collect(),
            other: registry.latency_histogram_labeled(
                "ontoaccess_http_request_seconds",
                ENDPOINT_HELP,
                ("endpoint", "other"),
            ),
        }
    }

    /// The latency series for a request path.
    pub fn endpoint(&self, path: &str) -> &'static obs::Histogram {
        self.endpoints
            .iter()
            .find(|(p, _)| *p == path)
            .map_or(self.other, |(_, h)| *h)
    }
}

/// One retained slow query.
#[derive(Debug, Clone)]
pub(crate) struct SlowQueryEntry {
    /// The query text, truncated to [`SlowQueryLog::TEXT_LIMIT`].
    pub query: String,
    /// Total handler wall time, in microseconds.
    pub micros: u64,
    /// The request id the query ran under — the handle for
    /// `GET /trace/<request-id>` when `trace_retained` is set.
    pub request_id: String,
    /// Whether a trace was recorded for this request (slow traces are
    /// tail-sampling priority, so a recorded trace is a retained one).
    pub trace_retained: bool,
    /// Wall-clock capture time (Unix milliseconds).
    pub at_unix_ms: u64,
}

/// Bounded in-memory ring of the most recent queries that crossed the
/// configured threshold, surfaced on `/status` as `slow_queries`.
#[derive(Debug)]
pub(crate) struct SlowQueryLog {
    capacity: usize,
    inner: Mutex<VecDeque<SlowQueryEntry>>,
}

impl SlowQueryLog {
    /// Longest query text retained per entry; the tail is elided.
    pub const TEXT_LIMIT: usize = 200;

    pub fn new(capacity: usize) -> Self {
        SlowQueryLog {
            capacity: capacity.max(1),
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Record one slow query, evicting the oldest entry at capacity.
    pub fn record(&self, query: &str, micros: u64, request_id: &str, trace_retained: bool) {
        let mut text: String = query.chars().take(Self::TEXT_LIMIT).collect();
        if text.len() < query.len() {
            text.push('…');
        }
        let at_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        let mut ring = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        while ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(SlowQueryEntry {
            query: text,
            micros,
            request_id: request_id.to_owned(),
            trace_retained,
            at_unix_ms,
        });
    }

    /// Snapshot the retained entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQueryEntry> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_query_log_evicts_oldest_at_capacity() {
        let log = SlowQueryLog::new(3);
        for i in 0..5 {
            log.record(&format!("SELECT {i}"), i, &format!("req-{i}"), i % 2 == 0);
        }
        let entries = log.entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].query, "SELECT 2");
        assert_eq!(entries[2].query, "SELECT 4");
        assert_eq!(entries[2].micros, 4);
        assert_eq!(entries[2].request_id, "req-4");
        assert!(entries[2].trace_retained);
        assert!(!entries[1].trace_retained);
    }

    #[test]
    fn slow_query_log_truncates_long_text() {
        let log = SlowQueryLog::new(1);
        let long = "x".repeat(SlowQueryLog::TEXT_LIMIT + 50);
        log.record(&long, 1, "req-long", false);
        let entry = &log.entries()[0];
        assert!(entry.query.chars().count() == SlowQueryLog::TEXT_LIMIT + 1);
        assert!(entry.query.ends_with('…'));
    }

    #[test]
    fn endpoint_lookup_falls_back_to_other() {
        let metrics = HttpMetrics::new();
        let sparql = metrics.endpoint("/sparql");
        let nowhere = metrics.endpoint("/nowhere");
        assert!(!std::ptr::eq(sparql, nowhere));
        assert!(std::ptr::eq(nowhere, metrics.endpoint("/elsewhere")));
    }
}
