//! Server-level counters, shared between the acceptor, the workers,
//! and the `/status` endpoint. All relaxed atomics: these are
//! monotonic counters for observability, not synchronization.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic request counters for one server instance.
#[derive(Debug, Default)]
pub struct ServerStats {
    requests: AtomicU64,
    queries: AtomicU64,
    updates: AtomicU64,
    snapshots: AtomicU64,
    overload_rejections: AtomicU64,
}

impl ServerStats {
    pub(crate) fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_update(&self) {
        self.updates.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_snapshot(&self) {
        self.snapshots.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_overload_rejection(&self) {
        self.overload_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests routed (any endpoint, any outcome).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Query requests that reached execution.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Update requests that reached execution.
    pub fn updates(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    /// Admin checkpoints (`POST /snapshot`) that completed.
    pub fn snapshots(&self) -> u64 {
        self.snapshots.load(Ordering::Relaxed)
    }

    /// Connections answered 503 because the accept queue was full.
    pub fn overload_rejections(&self) -> u64 {
        self.overload_rejections.load(Ordering::Relaxed)
    }
}
