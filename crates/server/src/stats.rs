//! Server-level counters, shared between the acceptor, the workers,
//! and the `/status` endpoint.
//!
//! The counters live in the process-global [`obs`] registry, so
//! `/status` and `/metrics` read the same source of truth — this
//! struct is just the pre-resolved handles (registry lookups take a
//! mutex; the request path records through `&'static` references).
//! Global registry semantics follow: several servers in one process
//! share these series, exactly like the string dictionary.

/// Monotonic request counters, backed by the process-global metric
/// registry.
#[derive(Debug)]
pub struct ServerStats {
    requests: &'static obs::Counter,
    queries: &'static obs::Counter,
    updates: &'static obs::Counter,
    snapshots: &'static obs::Counter,
    overload_rejections: &'static obs::Counter,
}

impl Default for ServerStats {
    fn default() -> Self {
        let registry = obs::registry();
        ServerStats {
            requests: registry.counter(
                "ontoaccess_http_requests_total",
                "Requests routed (any endpoint, any outcome)",
            ),
            queries: registry.counter(
                "ontoaccess_http_queries_total",
                "Query requests that reached execution",
            ),
            updates: registry.counter(
                "ontoaccess_http_updates_total",
                "Update requests that reached execution",
            ),
            snapshots: registry.counter(
                "ontoaccess_http_snapshots_total",
                "Admin checkpoints (POST /snapshot) that completed",
            ),
            overload_rejections: registry.counter(
                "ontoaccess_http_overload_rejections_total",
                "Connections answered 503 because the accept queue was full",
            ),
        }
    }
}

impl ServerStats {
    pub(crate) fn record_request(&self) {
        self.requests.inc();
    }

    pub(crate) fn record_query(&self) {
        self.queries.inc();
    }

    pub(crate) fn record_update(&self) {
        self.updates.inc();
    }

    pub(crate) fn record_snapshot(&self) {
        self.snapshots.inc();
    }

    pub(crate) fn record_overload_rejection(&self) {
        self.overload_rejections.inc();
    }

    /// Requests routed (any endpoint, any outcome).
    pub fn requests(&self) -> u64 {
        self.requests.get()
    }

    /// Query requests that reached execution.
    pub fn queries(&self) -> u64 {
        self.queries.get()
    }

    /// Update requests that reached execution.
    pub fn updates(&self) -> u64 {
        self.updates.get()
    }

    /// Admin checkpoints (`POST /snapshot`) that completed.
    pub fn snapshots(&self) -> u64 {
        self.snapshots.get()
    }

    /// Connections answered 503 because the accept queue was full.
    pub fn overload_rejections(&self) -> u64 {
        self.overload_rejections.get()
    }
}
