//! Minimal HTTP/1.1 on `std::net`: an incremental request parser and a
//! response writer, sized to what the SPARQL Protocol endpoints need.
//!
//! The parser owns the connection's read buffer, so pipelined requests
//! and keep-alive reuse fall out naturally: bytes past the current
//! request's body simply stay buffered for the next
//! [`Connection::read_request`] call. Hard limits guard both directions
//! of the head/body split — an oversized header block is rejected with
//! 431 before it is parsed, an oversized body with 413 before it is
//! read — so a misbehaving client cannot make a worker allocate
//! unboundedly.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Parse/IO outcome of reading one request off a connection.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or length field → 400.
    BadRequest(String),
    /// Header block exceeded the configured limit → 431.
    HeadersTooLarge,
    /// Declared body exceeded the configured limit → 413.
    BodyTooLarge(usize),
    /// `Transfer-Encoding` the server does not implement → 501.
    UnsupportedTransferEncoding,
    /// Unknown HTTP version → 505.
    VersionNotSupported(String),
    /// The peer went silent mid-request → 408.
    Timeout,
    /// The peer closed (or the socket failed) before a full request
    /// arrived; nothing can be answered.
    Disconnected,
}

impl HttpError {
    /// The status an error response should carry, or `None` when the
    /// connection is beyond answering.
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::BadRequest(_) => Some(400),
            HttpError::HeadersTooLarge => Some(431),
            HttpError::BodyTooLarge(_) => Some(413),
            HttpError::UnsupportedTransferEncoding => Some(501),
            HttpError::VersionNotSupported(_) => Some(505),
            HttpError::Timeout => Some(408),
            HttpError::Disconnected => None,
        }
    }

    /// Human-readable detail for the error body.
    pub fn message(&self) -> String {
        match self {
            HttpError::BadRequest(m) => format!("malformed request: {m}"),
            HttpError::HeadersTooLarge => "request header block too large".into(),
            HttpError::BodyTooLarge(n) => format!("request body of {n} bytes exceeds the limit"),
            HttpError::UnsupportedTransferEncoding => {
                "transfer-encoding is not supported; send a Content-Length body".into()
            }
            HttpError::VersionNotSupported(v) => format!("unsupported protocol version {v}"),
            HttpError::Timeout => "timed out waiting for the request".into(),
            HttpError::Disconnected => "client disconnected".into(),
        }
    }
}

/// Parser limits (see [`crate::ServerConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum size of the request line + headers in bytes.
    pub max_head_bytes: usize,
    /// Maximum size of a request body in bytes.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method.
    pub method: String,
    /// Path component of the target (before `?`), percent-decoded.
    pub path: String,
    /// Decoded query-string parameters, in order of appearance.
    pub params: Vec<(String, String)>,
    /// Headers with lower-cased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when none was sent).
    pub body: Vec<u8>,
    /// Whether the request was HTTP/1.1 (vs 1.0).
    pub http11: bool,
}

impl Request {
    /// First header with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query-string parameter with the given name.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The media type of the body, without parameters, lower-cased.
    pub fn content_type(&self) -> Option<String> {
        self.header("content-type").map(|v| {
            v.split(';')
                .next()
                .unwrap_or("")
                .trim()
                .to_ascii_lowercase()
        })
    }

    /// Whether the connection should stay open after this request.
    pub fn wants_keep_alive(&self) -> bool {
        let connection = self.header("connection").map(str::to_ascii_lowercase);
        match connection.as_deref() {
            Some(v) if v.split(',').any(|t| t.trim() == "close") => false,
            Some(v) if v.split(',').any(|t| t.trim() == "keep-alive") => true,
            _ => self.http11,
        }
    }

    /// Body parsed as `application/x-www-form-urlencoded` parameters.
    pub fn form_params(&self) -> Vec<(String, String)> {
        parse_query_string(&String::from_utf8_lossy(&self.body))
    }
}

/// One connection's parser state: the stream plus its carry-over buffer.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    buf: Vec<u8>,
    limits: Limits,
}

impl Connection {
    /// Wrap an accepted stream.
    pub fn new(stream: TcpStream, limits: Limits) -> Self {
        Connection {
            stream,
            buf: Vec::new(),
            limits,
        }
    }

    /// The underlying stream (for response writing).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Shared view of the socket (for shutdown registration).
    pub fn stream_ref(&self) -> &TcpStream {
        &self.stream
    }

    /// Set the read timeout used while waiting for (the rest of) a
    /// request.
    pub fn set_read_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        self.stream.set_read_timeout(Some(timeout))
    }

    /// Read one request. `Ok(None)` means the peer closed (or the idle
    /// timeout expired) cleanly *between* requests — nothing to answer.
    pub fn read_request(&mut self) -> Result<Option<Request>, HttpError> {
        // Phase 1: accumulate until the blank line ending the head.
        // Stray CRLFs before the request line are skipped (RFC 9112
        // §2.2: legacy clients emit one after a message body) but
        // count against the head limit — a client streaming CRLFs
        // forever must not pin a worker. `scanned` resumes the
        // terminator search where the last pass left off instead of
        // rescanning the whole buffer per read.
        let mut crlf_skipped = 0usize;
        let mut scanned = 0usize;
        let head_end = loop {
            while self.buf.starts_with(b"\r\n") {
                self.buf.drain(..2);
                crlf_skipped += 2;
                scanned = scanned.saturating_sub(2);
            }
            let start = scanned.saturating_sub(3);
            if let Some(pos) = self.buf[start..].windows(4).position(|w| w == b"\r\n\r\n") {
                break start + pos;
            }
            scanned = self.buf.len();
            if self.buf.len() + crlf_skipped > self.limits.max_head_bytes {
                return Err(HttpError::HeadersTooLarge);
            }
            let had_bytes = !self.buf.is_empty();
            match self.fill()? {
                0 => {
                    return if had_bytes {
                        Err(HttpError::Disconnected)
                    } else {
                        Ok(None)
                    }
                }
                _ => continue,
            }
        };
        if head_end > self.limits.max_head_bytes {
            return Err(HttpError::HeadersTooLarge);
        }
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let body_start = head_end + 4; // past \r\n\r\n
        let mut request = parse_head(&head)?;

        // Phase 2: the body. Only Content-Length framing is supported,
        // and the framing headers are checked across *every*
        // occurrence — a request whose duplicates disagree is rejected
        // rather than framed by one of them, which is the classic
        // request-smuggling desync (RFC 9112 §6.3).
        for (_, te) in request
            .headers
            .iter()
            .filter(|(n, _)| n == "transfer-encoding")
        {
            if !te.trim().eq_ignore_ascii_case("identity") {
                return Err(HttpError::UnsupportedTransferEncoding);
            }
        }
        let mut content_length = 0usize;
        let mut seen_length: Option<&str> = None;
        for (_, v) in request
            .headers
            .iter()
            .filter(|(n, _)| n == "content-length")
        {
            let v = v.trim();
            if let Some(prev) = seen_length {
                if prev != v {
                    return Err(HttpError::BadRequest(format!(
                        "conflicting Content-Length headers ({prev:?} vs {v:?})"
                    )));
                }
                continue;
            }
            seen_length = Some(v);
            // RFC 9110 §8.6: 1*DIGIT only — Rust's usize::parse would
            // also admit a leading '+', which a front proxy may frame
            // differently (the same desync the duplicate check guards).
            if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
                return Err(HttpError::BadRequest(format!("bad Content-Length {v:?}")));
            }
            content_length = v
                .parse::<usize>()
                .map_err(|_| HttpError::BadRequest(format!("bad Content-Length {v:?}")))?;
        }
        if content_length > self.limits.max_body_bytes {
            return Err(HttpError::BodyTooLarge(content_length));
        }
        // A 1.1 client may wait for permission before sending the body.
        if request
            .header("expect")
            .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
            && content_length > 0
        {
            let _ = self.stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
        }
        while self.buf.len() < body_start + content_length {
            if self.fill()? == 0 {
                return Err(HttpError::Disconnected);
            }
        }
        request.body = self.buf[body_start..body_start + content_length].to_vec();
        // Keep whatever follows (pipelined next request) buffered.
        self.buf.drain(..body_start + content_length);
        Ok(Some(request))
    }

    // One read() into the carry-over buffer. Translates timeouts: idle
    // (empty buffer) timeouts are a clean close, mid-request timeouts
    // are 408.
    fn fill(&mut self) -> Result<usize, HttpError> {
        let mut chunk = [0u8; 8 * 1024];
        match self.stream.read(&mut chunk) {
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(n)
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if self.buf.is_empty() {
                    Ok(0)
                } else {
                    Err(HttpError::Timeout)
                }
            }
            Err(_) => Err(HttpError::Disconnected),
        }
    }
}

// Parse request line + header lines (no body).
fn parse_head(head: &str) -> Result<Request, HttpError> {
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request".into()))?;
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequest(format!(
            "bad request line {request_line:?}"
        )));
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Err(HttpError::VersionNotSupported(other.to_owned())),
    };
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path: percent_decode(raw_path, false),
        params: raw_query.map(parse_query_string).unwrap_or_default(),
        headers,
        body: Vec::new(),
        http11,
    })
}

/// Decode a percent-encoded string; `plus_is_space` additionally maps
/// `+` to a space (form/query-string convention).
pub fn percent_decode(input: &str, plus_is_space: bool) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hi = (bytes[i + 1] as char).to_digit(16);
                let lo = (bytes[i + 2] as char).to_digit(16);
                match (hi, lo) {
                    (Some(hi), Some(lo)) => {
                        out.push((hi * 16 + lo) as u8);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parse `a=1&b=2` into decoded pairs (empty values allowed).
pub fn parse_query_string(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(k, true), percent_decode(v, true))
        })
        .collect()
}

/// A response about to be written.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body, if any.
    pub content_type: Option<String>,
    /// Extra headers (name must be in canonical form already).
    pub extra_headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with a body and content type.
    pub fn new(status: u16, content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: Some(content_type.to_owned()),
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Add a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.extra_headers.push((name.to_owned(), value.to_owned()));
        self
    }
}

/// Canonical reason phrase for the statuses this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        406 => "Not Acceptable",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        415 => "Unsupported Media Type",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Serialize and send a response. `keep_alive` selects the
/// `Connection` header; the `Content-Length` is always explicit, so
/// the framing never depends on connection close. `head_only` answers
/// a HEAD request: full headers (including the Content-Length the GET
/// body would have) but no body bytes on the wire.
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
    head_only: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\n",
        response.status,
        reason_phrase(response.status)
    );
    if let Some(ct) = &response.content_type {
        head.push_str(&format!("Content-Type: {ct}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n", response.body.len()));
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n"
    } else {
        "Connection: close\r\n"
    });
    head.push_str("Server: ontoaccess\r\n");
    for (name, value) in &response.extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if !head_only {
        stream.write_all(&response.body)?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_string_decoding() {
        let params = parse_query_string("query=SELECT+%3Fx%20WHERE&flag=&a=b%3Dc");
        assert_eq!(
            params,
            vec![
                ("query".into(), "SELECT ?x WHERE".into()),
                ("flag".into(), String::new()),
                ("a".into(), "b=c".into()),
            ]
        );
    }

    #[test]
    fn percent_decode_keeps_plus_in_paths() {
        assert_eq!(percent_decode("/a+b%2Fc", false), "/a+b/c");
    }

    #[test]
    fn head_parsing_normalizes_names_and_splits_target() {
        let req = parse_head(
            "GET /sparql?query=ASK HTTP/1.1\r\nHost: x\r\nContent-TYPE: text/plain; charset=utf-8",
        )
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/sparql");
        assert_eq!(req.param("query"), Some("ASK"));
        assert_eq!(req.content_type().as_deref(), Some("text/plain"));
        assert!(req.http11);
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn keep_alive_defaults_follow_version() {
        let r10 = parse_head("GET / HTTP/1.0\r\nHost: x").unwrap();
        assert!(!r10.wants_keep_alive());
        let r10ka = parse_head("GET / HTTP/1.0\r\nConnection: keep-alive").unwrap();
        assert!(r10ka.wants_keep_alive());
        let r11close = parse_head("GET / HTTP/1.1\r\nConnection: close").unwrap();
        assert!(!r11close.wants_keep_alive());
    }

    #[test]
    fn bad_version_is_rejected() {
        assert!(matches!(
            parse_head("GET / HTTP/2.0"),
            Err(HttpError::VersionNotSupported(_))
        ));
    }
}
