//! The server's concurrency skeleton: a bounded connection queue
//! between one acceptor and a fixed worker pool, plus the connection
//! registry graceful shutdown uses to unpark workers blocked in reads.
//!
//! Backpressure is explicit: the acceptor never blocks on a full
//! queue — it answers `503 Service Unavailable` inline and closes, so
//! overload degrades into fast rejections instead of unbounded memory
//! growth or accept-queue timeouts.

use std::collections::{HashMap, VecDeque};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

// Process-global queue metrics: instantaneous depth plus how long each
// connection sat waiting for a worker (the backpressure early-warning
// signal — wait grows before the 503s start).
struct PoolMetrics {
    depth: &'static obs::Gauge,
    wait: &'static obs::Histogram,
}

fn metrics() -> &'static PoolMetrics {
    static METRICS: std::sync::OnceLock<PoolMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = obs::registry();
        PoolMetrics {
            depth: registry.gauge(
                "ontoaccess_pool_queue_depth",
                "Accepted connections currently waiting for a worker",
            ),
            wait: registry.latency_histogram(
                "ontoaccess_pool_queue_wait_seconds",
                "Time an accepted connection waited in the queue before a worker picked it up",
            ),
        }
    })
}

// ----------------------------------------------------------------------
// Bounded handoff queue
// ----------------------------------------------------------------------

#[derive(Debug)]
struct QueueInner {
    // Each entry remembers when it was enqueued (queue-wait metric).
    deque: VecDeque<(Instant, TcpStream)>,
    closed: bool,
}

/// Bounded MPMC handoff of accepted connections.
#[derive(Debug)]
pub(crate) struct ConnQueue {
    inner: Mutex<QueueInner>,
    available: Condvar,
    capacity: usize,
}

impl ConnQueue {
    pub fn new(capacity: usize) -> Self {
        ConnQueue {
            inner: Mutex::new(QueueInner {
                deque: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue an accepted connection; hands the stream back when the
    /// queue is full (overload) or closed (shutting down).
    pub fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed || inner.deque.len() >= self.capacity {
            return Err(stream);
        }
        inner.deque.push_back((Instant::now(), stream));
        metrics().depth.set(inner.deque.len() as u64);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeue the next connection (with how long it sat queued, so
    /// the first request's trace can carry the pool wait), blocking
    /// while the queue is open and empty. `None` means closed **and**
    /// drained — queued connections are always served before workers
    /// exit.
    pub fn pop(&self) -> Option<(TcpStream, std::time::Duration)> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some((enqueued, stream)) = inner.deque.pop_front() {
                metrics().depth.set(inner.deque.len() as u64);
                let waited = enqueued.elapsed();
                metrics().wait.observe_duration(waited);
                return Some((stream, waited));
            }
            if inner.closed {
                return None;
            }
            inner = self
                .available
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Close the queue: no further pushes succeed; waiting workers
    /// drain what is queued and then exit.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        drop(inner);
        self.available.notify_all();
    }
}

// ----------------------------------------------------------------------
// Connection registry (graceful shutdown)
// ----------------------------------------------------------------------

/// Handles to the sockets workers are currently *reading* on, so
/// shutdown can unblock a worker parked in a keep-alive read by
/// shutting the socket's read half down. Entries are registered only
/// for the duration of a blocking read; request processing and
/// response writes are never interrupted — that is what "in-flight
/// requests are drained" means.
#[derive(Debug, Default)]
pub(crate) struct ConnRegistry {
    parked: Mutex<HashMap<u64, TcpStream>>,
    next_id: AtomicU64,
    closing: AtomicBool,
}

impl ConnRegistry {
    /// Whether shutdown has begun (workers then answer with
    /// `Connection: close` and stop reusing connections).
    pub fn closing(&self) -> bool {
        self.closing.load(Ordering::SeqCst)
    }

    /// Register a socket about to enter a blocking read. Returns a
    /// ticket for [`ConnRegistry::deregister`]. When shutdown already
    /// began, the read half is shut down immediately so the imminent
    /// read cannot park.
    pub fn register(&self, stream: &TcpStream) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            let mut parked = self.parked.lock().unwrap_or_else(|e| e.into_inner());
            parked.insert(id, clone);
            drop(parked);
            // Check *after* publishing the entry: a concurrent
            // `shutdown_reads` either sees the entry or this thread
            // sees the flag — no window where a read parks forever.
            if self.closing() {
                self.shutdown_one(id);
            }
        }
        id
    }

    /// Drop a ticket once the blocking read returned.
    pub fn deregister(&self, id: u64) {
        self.parked
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id);
    }

    fn shutdown_one(&self, id: u64) {
        let parked = self.parked.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(stream) = parked.get(&id) {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }

    /// Begin shutdown: mark closing and unblock every parked read.
    pub fn shutdown_reads(&self) {
        self.closing.store(true, Ordering::SeqCst);
        let parked = self.parked.lock().unwrap_or_else(|e| e.into_inner());
        for stream in parked.values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn stream_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn queue_rejects_when_full_and_drains_after_close() {
        let queue = ConnQueue::new(1);
        let (a, _ka) = stream_pair();
        let (b, _kb) = stream_pair();
        assert!(queue.push(a).is_ok());
        assert!(queue.push(b).is_err(), "second push must overflow");
        queue.close();
        assert!(queue.pop().is_some(), "queued connection drains");
        assert!(queue.pop().is_none(), "then the pool sees closed");
        let (c, _kc) = stream_pair();
        assert!(queue.push(c).is_err(), "closed queue takes nothing");
    }

    #[test]
    fn registry_unblocks_parked_reads() {
        use std::io::Read;
        let (client, server) = stream_pair();
        let registry = ConnRegistry::default();
        let id = registry.register(&server);
        registry.shutdown_reads();
        // The read half is shut down: a blocking read returns EOF now.
        let mut server = server;
        let mut byte = [0u8; 1];
        assert_eq!(server.read(&mut byte).unwrap(), 0);
        registry.deregister(id);
        // Registering after closing shuts down immediately.
        let id2 = registry.register(&client);
        let mut client = client;
        assert_eq!(client.read(&mut byte).unwrap(), 0);
        registry.deregister(id2);
    }
}
