//! Incremental JSON object writer.
//!
//! Every JSON body this server emits — `/status`, the replication
//! reposition answer, the error documents, the `X-Profile` trailer —
//! used to be hand-concatenated `format!` strings, each with its own
//! chance to misplace a comma or forget to escape a value. This tiny
//! builder centralizes the syntax: keys appear in call order (so
//! existing golden bodies keep their shape), values go through
//! [`crate::wire::json_string`] escaping, and nesting composes by
//! embedding one finished object as a [`JsonObject::raw`] field.

use crate::wire::json_string;

/// A JSON object under construction. Build with the chaining field
/// methods, close with [`JsonObject::finish`].
#[derive(Debug)]
pub(crate) struct JsonObject {
    out: String,
    first: bool,
}

impl JsonObject {
    pub fn new() -> Self {
        JsonObject {
            out: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push_str(&json_string(key));
        self.out.push(':');
    }

    /// A string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.out.push_str(&json_string(value));
        self
    }

    /// An unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        self.out.push_str(&value.to_string());
        self
    }

    /// A boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.out.push_str(if value { "true" } else { "false" });
        self
    }

    /// A field whose value is already rendered JSON (a nested object,
    /// an array, `null`) — embedded verbatim.
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.out.push_str(value);
        self
    }

    /// An optional integer: the number, or `null`.
    pub fn opt_u64(self, key: &str, value: Option<u64>) -> Self {
        match value {
            Some(v) => self.u64(key, v),
            None => self.raw(key, "null"),
        }
    }

    /// An optional string: escaped, or `null`.
    pub fn opt_str(self, key: &str, value: Option<&str>) -> Self {
        match value {
            Some(v) => self.str(key, v),
            None => self.raw(key, "null"),
        }
    }

    /// Close the object and return the rendered JSON.
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

/// Render a JSON array from already-rendered element strings.
pub(crate) fn json_array<I: IntoIterator<Item = String>>(elements: I) -> String {
    let mut out = String::from("[");
    for (i, element) in elements.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&element);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_render_in_call_order_with_escaping() {
        let body = JsonObject::new()
            .str("name", "a \"b\"\n")
            .u64("n", 7)
            .bool("ok", true)
            .raw("nested", &JsonObject::new().u64("x", 1).finish())
            .opt_u64("missing", None)
            .opt_str("hint", Some("h"))
            .finish();
        assert_eq!(
            body,
            "{\"name\":\"a \\\"b\\\"\\n\",\"n\":7,\"ok\":true,\
             \"nested\":{\"x\":1},\"missing\":null,\"hint\":\"h\"}"
        );
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(json_array(Vec::new()), "[]");
        assert_eq!(json_array(vec!["1".to_owned(), "2".to_owned()]), "[1,2]");
    }
}
