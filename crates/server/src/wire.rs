//! Wire formats of the SPARQL Protocol: W3C SPARQL 1.1 Query Results
//! in JSON and XML for solution sequences and booleans, and
//! Turtle / N-Triples for graph-shaped responses — plus the `Accept`
//! header negotiation that picks between them.
//!
//! Serialization is deterministic: variables appear in projection
//! order, bindings in solution order, and JSON object keys in a fixed
//! order — which is what lets the golden-file tests compare bytes.

use rdf::namespace::PrefixMap;
use rdf::{Graph, LiteralKind, Term};
use sparql::Solutions;

/// Media type of SPARQL JSON results.
pub const SPARQL_RESULTS_JSON: &str = "application/sparql-results+json";
/// Media type of SPARQL XML results.
pub const SPARQL_RESULTS_XML: &str = "application/sparql-results+xml";
/// Media type of Turtle.
pub const TURTLE: &str = "text/turtle";
/// Media type of N-Triples.
pub const NTRIPLES: &str = "application/n-triples";
/// Media type of the JSON error/status documents.
pub const JSON: &str = "application/json";

// ----------------------------------------------------------------------
// Escaping
// ----------------------------------------------------------------------

/// Append `s` JSON-escaped (without surrounding quotes) to `out`.
pub fn json_escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// `s` as a quoted JSON string.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    json_escape_into(s, &mut out);
    out.push('"');
    out
}

/// Append `s` XML-escaped (text or attribute content) to `out`.
pub fn xml_escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
}

fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    xml_escape_into(s, &mut out);
    out
}

// ----------------------------------------------------------------------
// SPARQL Results JSON (https://www.w3.org/TR/sparql11-results-json/)
// ----------------------------------------------------------------------

// One RDF term as a results-JSON object, keys in fixed order:
// type, value, then xml:lang / datatype.
fn term_to_json(term: &Term, out: &mut String) {
    match term {
        Term::Iri(iri) => {
            out.push_str("{\"type\":\"uri\",\"value\":");
            out.push_str(&json_string(iri.as_str()));
            out.push('}');
        }
        Term::Blank(b) => {
            out.push_str("{\"type\":\"bnode\",\"value\":");
            out.push_str(&json_string(b.label()));
            out.push('}');
        }
        Term::Literal(lit) => {
            out.push_str("{\"type\":\"literal\",\"value\":");
            out.push_str(&json_string(lit.lexical()));
            match lit.kind() {
                LiteralKind::Plain => {}
                LiteralKind::LanguageTagged(tag) => {
                    out.push_str(",\"xml:lang\":");
                    out.push_str(&json_string(tag));
                }
                LiteralKind::Typed(dt) => {
                    out.push_str(",\"datatype\":");
                    out.push_str(&json_string(dt.as_str()));
                }
            }
            out.push('}');
        }
    }
}

/// A solution sequence as SPARQL JSON results.
pub fn solutions_to_json(solutions: &Solutions) -> String {
    let mut out = String::new();
    out.push_str("{\"head\":{\"vars\":[");
    for (i, var) in solutions.variables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(var));
    }
    out.push_str("]},\"results\":{\"bindings\":[");
    for (i, binding) in solutions.bindings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        let mut first = true;
        // Projection order, skipping unbound variables.
        for var in &solutions.variables {
            let Some(term) = binding.get(var) else {
                continue;
            };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&json_string(var));
            out.push(':');
            term_to_json(term, &mut out);
        }
        out.push('}');
    }
    out.push_str("]}}");
    out
}

/// An ASK result as SPARQL JSON results.
pub fn boolean_to_json(value: bool) -> String {
    format!("{{\"head\":{{}},\"boolean\":{value}}}")
}

// ----------------------------------------------------------------------
// SPARQL Results XML (https://www.w3.org/TR/rdf-sparql-XMLres/)
// ----------------------------------------------------------------------

const XML_HEADER: &str = "<?xml version=\"1.0\"?>\n\
     <sparql xmlns=\"http://www.w3.org/2005/sparql-results#\">\n";

fn term_to_xml(term: &Term, out: &mut String) {
    match term {
        Term::Iri(iri) => {
            out.push_str("<uri>");
            xml_escape_into(iri.as_str(), out);
            out.push_str("</uri>");
        }
        Term::Blank(b) => {
            out.push_str("<bnode>");
            xml_escape_into(b.label(), out);
            out.push_str("</bnode>");
        }
        Term::Literal(lit) => {
            match lit.kind() {
                LiteralKind::Plain => out.push_str("<literal>"),
                LiteralKind::LanguageTagged(tag) => {
                    out.push_str(&format!("<literal xml:lang=\"{}\">", xml_escape(tag)));
                }
                LiteralKind::Typed(dt) => {
                    out.push_str(&format!(
                        "<literal datatype=\"{}\">",
                        xml_escape(dt.as_str())
                    ));
                }
            }
            xml_escape_into(lit.lexical(), out);
            out.push_str("</literal>");
        }
    }
}

/// A solution sequence as SPARQL XML results.
pub fn solutions_to_xml(solutions: &Solutions) -> String {
    let mut out = String::from(XML_HEADER);
    out.push_str("  <head>\n");
    for var in &solutions.variables {
        out.push_str(&format!("    <variable name=\"{}\"/>\n", xml_escape(var)));
    }
    out.push_str("  </head>\n  <results>\n");
    for binding in &solutions.bindings {
        out.push_str("    <result>\n");
        for var in &solutions.variables {
            let Some(term) = binding.get(var) else {
                continue;
            };
            out.push_str(&format!("      <binding name=\"{}\">", xml_escape(var)));
            term_to_xml(term, &mut out);
            out.push_str("</binding>\n");
        }
        out.push_str("    </result>\n");
    }
    out.push_str("  </results>\n</sparql>\n");
    out
}

/// An ASK result as SPARQL XML results.
pub fn boolean_to_xml(value: bool) -> String {
    format!("{XML_HEADER}  <head/>\n  <boolean>{value}</boolean>\n</sparql>\n")
}

// ----------------------------------------------------------------------
// Graph formats
// ----------------------------------------------------------------------

/// A graph as Turtle, using the mediator's prefixes.
pub fn graph_to_turtle(graph: &Graph, prefixes: &PrefixMap) -> String {
    rdf::turtle::write(graph, prefixes)
}

/// A graph as N-Triples.
pub fn graph_to_ntriples(graph: &Graph) -> String {
    rdf::ntriples::write(graph)
}

// ----------------------------------------------------------------------
// Content negotiation
// ----------------------------------------------------------------------

// One entry of an Accept header: type/subtype plus quality.
struct AcceptEntry {
    main: String,
    sub: String,
    q: f64,
    order: usize,
}

fn parse_accept(header: &str) -> Vec<AcceptEntry> {
    let mut entries = Vec::new();
    for (order, part) in header.split(',').enumerate() {
        let mut sections = part.split(';');
        let Some(mime) = sections.next() else {
            continue;
        };
        let mime = mime.trim().to_ascii_lowercase();
        let Some((main, sub)) = mime.split_once('/') else {
            continue;
        };
        let mut q = 1.0;
        for param in sections {
            if let Some((k, v)) = param.split_once('=') {
                if k.trim() == "q" {
                    q = v.trim().parse().unwrap_or(0.0);
                }
            }
        }
        entries.push(AcceptEntry {
            main: main.to_owned(),
            sub: sub.to_owned(),
            q,
            order,
        });
    }
    entries
}

/// Pick the best of `offers` (media types in server preference order)
/// for an `Accept` header. `None` header → the first offer. `Some` with
/// nothing acceptable → `None` (the caller answers 406).
pub fn negotiate<'a>(accept: Option<&str>, offers: &[&'a str]) -> Option<&'a str> {
    let Some(header) = accept else {
        return offers.first().copied();
    };
    let header = header.trim();
    if header.is_empty() {
        return offers.first().copied();
    }
    let entries = parse_accept(header);
    // RFC 9110 §12.5.1: for each offer, its quality is the q of the
    // *most specific* matching media-range (exact > type/* > */*) —
    // so `text/turtle;q=0, */*` really excludes Turtle instead of
    // letting the wildcard's q resurrect it. Among the surviving
    // offers: highest q wins, then higher specificity of the deciding
    // entry, then earlier header position, then server preference.
    let mut best: Option<(&str, f64, u8, usize, usize)> = None;
    for (offer_idx, offer) in offers.iter().enumerate() {
        let (omain, osub) = offer.split_once('/').expect("offers are type/subtype");
        // The most specific entry matching this offer (first one on
        // specificity ties) decides its quality.
        let mut deciding: Option<(u8, f64, usize)> = None;
        for e in &entries {
            let specificity = if e.main == omain && e.sub == osub {
                2
            } else if e.main == omain && e.sub == "*" {
                1
            } else if e.main == "*" && e.sub == "*" {
                0
            } else {
                continue;
            };
            if deciding.is_none_or(|(dspec, ..)| specificity > dspec) {
                deciding = Some((specificity, e.q, e.order));
            }
        }
        let Some((specificity, q, order)) = deciding else {
            continue;
        };
        if q <= 0.0 {
            continue; // explicitly excluded
        }
        let better = match best {
            None => true,
            Some((_, bq, bspec, border, bidx)) => {
                q > bq
                    || (q == bq
                        && (specificity > bspec
                            || (specificity == bspec
                                && (order < border || (order == border && offer_idx < bidx)))))
            }
        };
        if better {
            best = Some((offer, q, specificity, order, offer_idx));
        }
    }
    best.map(|(offer, ..)| offer)
}

/// The media types offered for solution/boolean results, in preference
/// order, with the format each resolves to.
pub fn negotiate_results(accept: Option<&str>) -> Option<(&'static str, ResultsFormat)> {
    let offer = negotiate(
        accept,
        &[
            SPARQL_RESULTS_JSON,
            SPARQL_RESULTS_XML,
            JSON,
            "application/xml",
            "text/xml",
        ],
    )?;
    match offer {
        SPARQL_RESULTS_JSON | JSON => Some((SPARQL_RESULTS_JSON, ResultsFormat::Json)),
        _ => Some((SPARQL_RESULTS_XML, ResultsFormat::Xml)),
    }
}

/// The media types offered for graph responses, in preference order.
pub fn negotiate_graph(accept: Option<&str>) -> Option<(&'static str, GraphFormat)> {
    let offer = negotiate(accept, &[TURTLE, NTRIPLES, "text/plain"])?;
    match offer {
        TURTLE => Some((TURTLE, GraphFormat::Turtle)),
        _ => Some((NTRIPLES, GraphFormat::NTriples)),
    }
}

/// Result serialization picked by negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultsFormat {
    /// `application/sparql-results+json`.
    Json,
    /// `application/sparql-results+xml`.
    Xml,
}

/// Graph serialization picked by negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphFormat {
    /// `text/turtle`.
    Turtle,
    /// `application/n-triples`.
    NTriples,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negotiation_prefers_quality_then_header_order() {
        assert_eq!(
            negotiate(
                Some("application/sparql-results+xml;q=0.9, application/sparql-results+json"),
                &[SPARQL_RESULTS_JSON, SPARQL_RESULTS_XML]
            ),
            Some(SPARQL_RESULTS_JSON)
        );
        assert_eq!(
            negotiate(
                Some("application/sparql-results+xml, application/sparql-results+json"),
                &[SPARQL_RESULTS_JSON, SPARQL_RESULTS_XML]
            ),
            Some(SPARQL_RESULTS_XML)
        );
    }

    #[test]
    fn exact_match_beats_wildcard_at_equal_quality() {
        // RFC 9110 §12.5.1: the most specific reference wins, even
        // when a catch-all is listed first.
        assert_eq!(
            negotiate(
                Some("*/*, application/sparql-results+xml"),
                &[SPARQL_RESULTS_JSON, SPARQL_RESULTS_XML]
            ),
            Some(SPARQL_RESULTS_XML)
        );
        assert_eq!(
            negotiate(Some("text/*, application/n-triples"), &[TURTLE, NTRIPLES]),
            Some(NTRIPLES)
        );
    }

    #[test]
    fn explicit_q0_exclusion_is_honored() {
        // The most specific matching range decides an offer's quality:
        // a wildcard must not resurrect an explicitly excluded type.
        assert_eq!(
            negotiate(Some("text/turtle;q=0, */*"), &[TURTLE, NTRIPLES]),
            Some(NTRIPLES)
        );
        assert_eq!(
            negotiate(Some("text/turtle;q=0.1, */*"), &[TURTLE, NTRIPLES]),
            Some(NTRIPLES)
        );
        assert_eq!(
            negotiate(Some("text/turtle;q=0, image/png"), &[TURTLE]),
            None
        );
    }

    #[test]
    fn wildcards_fall_back_to_server_preference() {
        assert_eq!(negotiate(Some("*/*"), &[TURTLE, NTRIPLES]), Some(TURTLE));
        assert_eq!(
            negotiate(Some("application/*"), &[TURTLE, NTRIPLES]),
            Some(NTRIPLES)
        );
        assert_eq!(negotiate(Some("image/png"), &[TURTLE, NTRIPLES]), None);
        assert_eq!(negotiate(None, &[TURTLE, NTRIPLES]), Some(TURTLE));
    }

    #[test]
    fn json_escaping_covers_control_and_quote_chars() {
        assert_eq!(
            json_string("a\"b\\c\nd\te\u{1}"),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\""
        );
    }

    #[test]
    fn boolean_documents() {
        assert_eq!(boolean_to_json(true), "{\"head\":{},\"boolean\":true}");
        assert!(boolean_to_xml(false).contains("<boolean>false</boolean>"));
    }
}
