//! SPARQL 1.1 Protocol server over the OntoAccess [`Mediator`]
//! (paper §6: the prototype "exposes the translator behind an HTTP
//! endpoint" — this crate is that endpoint, grown production-shaped).
//!
//! Std-only by construction: `std::net::TcpListener` plus a fixed
//! thread pool — no async runtime, no external dependencies — matching
//! the workspace's offline-shim approach. The layering:
//!
//! * [`http`] — incremental HTTP/1.1 request parser and response
//!   writer with keep-alive, pipelining, and head/body size limits;
//! * [`wire`] — W3C SPARQL JSON/XML results and Turtle/N-Triples
//!   graph serialization, plus `Accept` negotiation;
//! * [`router`] — the protocol endpoints (`/sparql`, `/update`,
//!   `/describe`, `/dump`, `/status`);
//! * [`error_map`] — the exhaustive [`ontoaccess::OntoError`] → HTTP
//!   status mapping and JSON error bodies;
//! * [`pool`] (private) — bounded accept queue between one acceptor
//!   and the worker pool, with 503 on overload and a connection
//!   registry for graceful shutdown.
//!
//! Concurrency model: every worker owns a [`ReadSession`], so queries
//! from different connections run in parallel under the database read
//! lock; updates serialize through the mediator's exclusive write
//! transaction. This is PR 3's session model driven by real sockets.
//!
//! ```no_run
//! use ontoaccess_server::{serve, ServerConfig};
//!
//! let mediator = /* build a Mediator */
//! #   ontoaccess::Mediator::new(
//! #       ontoaccess::usecase::database(),
//! #       ontoaccess::usecase::mapping(),
//! #   ).unwrap();
//! let handle = serve(mediator, "127.0.0.1:7878", ServerConfig::default()).unwrap();
//! println!("listening on http://{}/", handle.addr());
//! handle.join(); // serve until the process is killed
//! ```

#![warn(missing_docs)]

pub mod error_map;
pub mod http;
mod json;
mod metrics;
mod pool;
pub mod router;
mod stats;
pub mod wire;

pub use stats::ServerStats;

use crate::http::{Connection, Limits, Response};
use crate::pool::{ConnQueue, ConnRegistry};
use crate::router::AppContext;
use ontoaccess::mediator::{Mediator, ReadSession};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving requests (each holds one `ReadSession`).
    pub workers: usize,
    /// Accepted connections waiting for a worker; beyond this the
    /// acceptor answers `503` (backpressure instead of queue growth).
    pub queue_capacity: usize,
    /// Maximum request-head size in bytes (`431` beyond).
    pub max_head_bytes: usize,
    /// Maximum request-body size in bytes (`413` beyond).
    pub max_body_bytes: usize,
    /// How long an idle keep-alive connection may park a worker before
    /// it is closed.
    pub keep_alive_timeout: Duration,
    /// When this server fronts a read replica: the replicator's
    /// progress handle, surfaced under `/status`. `None` on leaders
    /// and plain standalone servers.
    pub replication: Option<repl::ReplicationStatus>,
    /// Queries whose handler wall time reaches this many milliseconds
    /// land in the bounded slow-query log surfaced on `/status`
    /// (`slow_queries`). `0` records every query.
    pub slow_query_ms: u64,
    /// Entries retained by the slow-query ring (oldest evicted beyond
    /// this).
    pub slow_query_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 128,
            max_head_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
            keep_alive_timeout: Duration::from_secs(5),
            replication: None,
            slow_query_ms: 250,
            slow_query_capacity: 32,
        }
    }
}

impl ServerConfig {
    fn limits(&self) -> Limits {
        Limits {
            max_head_bytes: self.max_head_bytes,
            max_body_bytes: self.max_body_bytes,
        }
    }
}

/// Bind `addr` and serve `mediator` until [`ServerHandle::shutdown`].
///
/// Port 0 binds an ephemeral port; the actual address is
/// [`ServerHandle::addr`].
pub fn serve<A: ToSocketAddrs>(
    mediator: Mediator,
    addr: A,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stats = Arc::new(ServerStats::default());
    let queue = Arc::new(ConnQueue::new(config.queue_capacity));
    let registry = Arc::new(ConnRegistry::default());
    let shutdown_flag = Arc::new(AtomicBool::new(false));
    let ctx = Arc::new(AppContext {
        mediator,
        stats: Arc::clone(&stats),
        started: Instant::now(),
        workers: config.workers.max(1),
        queue_capacity: config.queue_capacity.max(1),
        replication: config.replication.clone(),
        metrics: metrics::HttpMetrics::new(),
        slow_log: metrics::SlowQueryLog::new(config.slow_query_capacity),
        slow_query_micros: config.slow_query_ms.saturating_mul(1000),
    });

    let mut workers = Vec::with_capacity(ctx.workers);
    for i in 0..ctx.workers {
        let queue = Arc::clone(&queue);
        let registry = Arc::clone(&registry);
        let ctx = Arc::clone(&ctx);
        let limits = config.limits();
        let idle = config.keep_alive_timeout;
        workers.push(
            std::thread::Builder::new()
                .name(format!("ontoaccess-worker-{i}"))
                .spawn(move || worker_loop(&queue, &registry, &ctx, limits, idle))?,
        );
    }
    let acceptor = {
        let queue = Arc::clone(&queue);
        let stats = Arc::clone(&stats);
        let flag = Arc::clone(&shutdown_flag);
        std::thread::Builder::new()
            .name("ontoaccess-acceptor".into())
            .spawn(move || acceptor_loop(&listener, &queue, &stats, &flag))?
    };

    Ok(ServerHandle {
        addr,
        shutdown_flag,
        queue,
        registry,
        stats,
        acceptor: Some(acceptor),
        workers,
    })
}

/// A running server: its address, counters, and shutdown control.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown_flag: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    registry: Arc<ConnRegistry>,
    stats: Arc<ServerStats>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's request counters.
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Graceful shutdown: stop accepting, serve everything already
    /// queued, let in-flight requests finish and their responses
    /// flush, close idle keep-alive connections, join all threads.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    /// Block until the server stops (it only stops via
    /// [`ServerHandle::shutdown`], so for a foreground server this
    /// means "serve until the process is killed").
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    fn shutdown_impl(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return; // already shut down
        };
        // 1. Stop the acceptor: raise the flag, then poke the blocking
        //    accept() with a throwaway connection. An unspecified bind
        //    address is poked on its own family's loopback.
        self.shutdown_flag.store(true, Ordering::SeqCst);
        let poke_ip = match self.addr.ip() {
            ip if !ip.is_unspecified() => ip,
            std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        };
        let poke_addr = SocketAddr::new(poke_ip, self.addr.port());
        let _ = TcpStream::connect_timeout(&poke_addr, Duration::from_secs(1));
        let _ = acceptor.join();
        // 2. Close the queue (workers drain what is already accepted)
        //    and unblock workers parked in keep-alive reads.
        self.queue.close();
        self.registry.shutdown_reads();
        // 3. Wait for every worker to finish its in-flight work.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

// ----------------------------------------------------------------------
// Acceptor
// ----------------------------------------------------------------------

fn acceptor_loop(
    listener: &TcpListener,
    queue: &ConnQueue,
    stats: &ServerStats,
    shutdown: &AtomicBool,
) {
    for incoming in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = incoming else { continue };
        if let Err(stream) = queue.push(stream) {
            // Overload: reject inline rather than queue without bound.
            stats.record_overload_rejection();
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let response = router::attach_request_id(
                Response::new(
                    503,
                    error_map::ERROR_CONTENT_TYPE,
                    error_map::protocol_error_body(503, "server overloaded; retry shortly"),
                )
                .with_header("Retry-After", "1"),
                &obs::next_request_id(),
            );
            let mut stream = stream;
            let _ = http::write_response(&mut stream, &response, false, false);
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

// ----------------------------------------------------------------------
// Workers
// ----------------------------------------------------------------------

fn worker_loop(
    queue: &ConnQueue,
    registry: &ConnRegistry,
    ctx: &AppContext,
    limits: Limits,
    idle: Duration,
) {
    let session = ctx.mediator.read();
    while let Some((stream, queue_wait)) = queue.pop() {
        let _ = stream.set_nodelay(true);
        // A panicking handler must not take the worker down with it:
        // the connection is dropped, the next one is served. (Mediator
        // state stays consistent — a panicked WriteTxn rolls back in
        // its Drop.)
        let _ = catch_unwind(AssertUnwindSafe(|| {
            serve_connection(stream, queue_wait, registry, ctx, &session, limits, idle);
        }));
    }
}

fn serve_connection(
    stream: TcpStream,
    queue_wait: Duration,
    registry: &ConnRegistry,
    ctx: &AppContext,
    session: &ReadSession,
    limits: Limits,
    idle: Duration,
) {
    let mut conn = Connection::new(stream, limits);
    // The pool wait belongs to the first request on the connection;
    // keep-alive successors never queued.
    let mut queue_wait = Some(queue_wait);
    loop {
        let closing = registry.closing();
        // While draining, don't let a silent client park the worker:
        // read with a short timeout and close after the response.
        let timeout = if closing {
            idle.min(Duration::from_millis(200))
        } else {
            idle
        };
        let _ = conn.set_read_timeout(timeout);
        // Park-registration makes this blocking read interruptible by
        // shutdown; skipped while draining (the short timeout bounds
        // the wait instead).
        let ticket = (!closing).then(|| registry.register(conn.stream_ref()));
        let read = conn.read_request();
        if let Some(ticket) = ticket {
            registry.deregister(ticket);
        }
        match read {
            // Peer closed between requests, or idle timeout: done.
            Ok(None) => return,
            Ok(Some(request)) => {
                let response = router::handle_request(ctx, session, &request, queue_wait.take());
                let keep_alive = request.wants_keep_alive() && !registry.closing();
                let head_only = request.method == "HEAD";
                if http::write_response(conn.stream(), &response, keep_alive, head_only).is_err() {
                    return;
                }
                if !keep_alive {
                    return;
                }
            }
            Err(error) => {
                if let Some(status) = error.status() {
                    let response = router::attach_request_id(
                        Response::new(
                            status,
                            error_map::ERROR_CONTENT_TYPE,
                            error_map::protocol_error_body(status, &error.message()),
                        ),
                        &obs::next_request_id(),
                    );
                    let _ = http::write_response(conn.stream(), &response, false, false);
                }
                return;
            }
        }
    }
}
