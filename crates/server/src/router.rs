//! Request routing and the SPARQL Protocol endpoint handlers.
//!
//! | Method + path       | Operation |
//! |---------------------|-----------|
//! | `GET /sparql?query=`| SPARQL query (also `POST` with a `application/sparql-query` body or an urlencoded form) |
//! | `POST /update`      | SPARQL/Update; the response body is the paper's §6 RDF feedback document (Turtle) |
//! | `GET /describe?uri=`| Concise description of one instance URI (graph response) |
//! | `GET /dump`         | The database's full RDF view (graph response) |
//! | `GET /status`       | Version, uptime, row counts, query-cache, concurrency, durability, replication and server counters (JSON) |
//! | `GET /metrics`      | Prometheus text exposition (`text/plain; version=0.0.4`) of every layer's metrics |
//! | `POST /snapshot`    | Admin checkpoint: snapshot the committed state, truncate the WAL (durable servers only) |
//! | `GET /wal`          | Replication: committed WAL bytes from `from=` (absolute offset), long-polling when caught up (durable leaders only) |
//! | `GET /snapshot/latest` | Replication: the newest snapshot file, for replica bootstrap (durable leaders only) |
//! | `GET /traces`       | Index of retained traces (tail-sampled: error/slow priority + a sampled ring) |
//! | `GET /trace/<id>`   | Span tree of one retained trace, keyed by its request id (JSON) |
//!
//! Two query-string switches ride on `/sparql`: `?profile=1` executes
//! and attaches stage timings plus the chosen join plan as an
//! `X-Profile` header; `?explain=1` answers the chosen plan as JSON
//! **without executing**. `/update` honors `?profile=1` the same way
//! (translate/sort/execute/WAL-append/fsync stage timings).
//!
//! Queries execute on the worker's shared [`ReadSession`]; updates
//! serialize through the mediator's write transaction. Mediator
//! rejections map to statuses via [`crate::error_map`]; the update
//! endpoint keeps the RDF feedback document as its error body, the
//! query endpoints answer machine-readable JSON errors.

use crate::error_map::{error_body, protocol_error_body, status_for, ERROR_CONTENT_TYPE};
use crate::http::{Request, Response};
use crate::json::{json_array, JsonObject};
use crate::metrics::{HttpMetrics, SlowQueryLog};
use crate::stats::ServerStats;
use crate::wire;
use ontoaccess::feedback::Feedback;
use ontoaccess::mediator::{
    JoinPlan, Mediator, QueryExplain, QueryProfile, ReadSession, UpdateProfile,
};
use ontoaccess::OntoError;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Media type of a SPARQL query sent as a raw POST body.
pub const SPARQL_QUERY: &str = "application/sparql-query";
/// Media type of a SPARQL/Update sent as a raw POST body.
pub const SPARQL_UPDATE: &str = "application/sparql-update";
const FORM: &str = "application/x-www-form-urlencoded";

// Everything a handler can reach: the shared mediator (writes, admin)
// and server-level counters. Read sessions are per worker and passed
// alongside.
pub(crate) struct AppContext {
    pub mediator: Mediator,
    pub stats: Arc<ServerStats>,
    pub started: Instant,
    pub workers: usize,
    pub queue_capacity: usize,
    pub replication: Option<repl::ReplicationStatus>,
    pub metrics: HttpMetrics,
    pub slow_log: SlowQueryLog,
    /// Queries at or above this handler wall time land in `slow_log`.
    pub slow_query_micros: u64,
}

pub(crate) fn handle_request(
    ctx: &AppContext,
    session: &ReadSession,
    request: &Request,
    queue_wait: Option<Duration>,
) -> Response {
    let started = Instant::now();
    let request_id = request_id_for(request);
    ctx.stats.record_request();
    ctx.metrics.in_flight.add(1);
    // The request's trace, keyed by its id: every span the layers
    // below emit on this thread (parse, plan, join steps, WAL append,
    // fsync wait, …) parents into this root. Inert when [`obs`] is
    // disabled.
    let trace = obs::trace::start(&request_id, "request");
    trace.attr_str("method", &request.method);
    trace.attr_str("path", &request.path);
    if let Some(wait) = queue_wait {
        // Present only on a connection's first request: how long the
        // accepted socket sat in the pool queue before a worker ran.
        trace.attr_u64(
            "queue_wait_micros",
            wait.as_micros().min(u64::MAX as u128) as u64,
        );
    }
    // HEAD is answered like GET everywhere GET is allowed; the
    // connection layer suppresses the body bytes while keeping the
    // Content-Length a GET would have produced (RFC 9110 §9.3.2).
    let method = if request.method == "HEAD" {
        "GET"
    } else {
        request.method.as_str()
    };
    let response = match (method, request.path.as_str()) {
        ("GET", "/") => usage(),
        ("GET", "/sparql") => query_from_get(ctx, session, request, &request_id),
        ("POST", "/sparql") => query_from_post(ctx, session, request, &request_id),
        ("POST", "/update") => update(ctx, request),
        ("GET", "/describe") => describe(session, request),
        ("GET", "/dump") => dump(session, request),
        ("GET", "/status") => status(ctx),
        ("GET", "/metrics") => metrics_exposition(ctx),
        ("POST", "/snapshot") => snapshot(ctx),
        ("GET", "/wal") => wal(ctx, request),
        ("GET", "/snapshot/latest") => snapshot_latest(ctx),
        ("GET", "/traces") => traces_index(),
        ("GET", path) if path.starts_with("/trace/") => trace_detail(path),
        (_, "/sparql") => method_not_allowed("GET, HEAD, POST"),
        (_, "/update") | (_, "/snapshot") => method_not_allowed("POST"),
        (_, "/describe")
        | (_, "/dump")
        | (_, "/status")
        | (_, "/")
        | (_, "/metrics")
        | (_, "/wal")
        | (_, "/snapshot/latest")
        | (_, "/traces") => method_not_allowed("GET, HEAD"),
        (_, path) if path.starts_with("/trace/") => method_not_allowed("GET, HEAD"),
        _ => Response::new(
            404,
            ERROR_CONTENT_TYPE,
            protocol_error_body(404, &format!("no such endpoint {:?}", request.path)),
        ),
    };
    ctx.metrics.in_flight.sub(1);
    let elapsed = started.elapsed();
    // Tail-sample classification happens here, where the outcome is
    // known: failed and slow requests become priority traces.
    trace.attr_u64("status", u64::from(response.status));
    if response.status >= 400 {
        obs::trace::mark_error();
    }
    if elapsed.as_micros().min(u64::MAX as u128) as u64 >= ctx.slow_query_micros {
        obs::trace::mark_slow();
    }
    trace.finish();
    ctx.metrics
        .endpoint(endpoint_series(&request.path))
        .observe_duration(elapsed);
    obs::log(
        obs::Level::Info,
        "http",
        "request",
        &[
            ("id", &request_id),
            ("method", &request.method),
            ("path", &request.path),
            ("status", &response.status),
            ("micros", &elapsed.as_micros()),
        ],
    );
    attach_request_id(response, &request_id)
}

// The per-path `/trace/<id>` suffix would mint one latency series per
// trace id; collapse it onto a single "/trace" series.
fn endpoint_series(path: &str) -> &str {
    if path.starts_with("/trace/") {
        "/trace"
    } else {
        path
    }
}

// Accept a sane inbound `X-Request-Id` (so a caller's trace id flows
// through), otherwise mint one.
fn request_id_for(request: &Request) -> String {
    match request.header("x-request-id") {
        Some(id)
            if !id.is_empty()
                && id.len() <= 64
                && id
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.')) =>
        {
            id.to_owned()
        }
        _ => obs::next_request_id(),
    }
}

/// Echo the request id on the response, and stitch it into JSON error
/// documents so a client-reported failure is greppable in the server
/// log (`{"request_id":…,"error":…}`).
pub(crate) fn attach_request_id(mut response: Response, request_id: &str) -> Response {
    if response.status >= 400
        && response.content_type.as_deref() == Some(ERROR_CONTENT_TYPE)
        && response.body.first() == Some(&b'{')
    {
        let prefix = JsonObject::new().str("request_id", request_id).finish();
        let mut body = Vec::with_capacity(prefix.len() + response.body.len());
        // `{"request_id":"…"` + `,` + the original body minus its `{`.
        body.extend_from_slice(&prefix.as_bytes()[..prefix.len() - 1]);
        body.push(b',');
        body.extend_from_slice(&response.body[1..]);
        response.body = body;
    }
    response.with_header("X-Request-Id", request_id)
}

fn usage() -> Response {
    Response::new(
        200,
        "text/plain; charset=utf-8",
        "OntoAccess SPARQL 1.1 Protocol endpoint\n\
         \n\
         GET  /sparql?query=...   SPARQL query (SELECT/ASK)\n\
         POST /sparql             query as application/sparql-query or form\n\
         POST /update             SPARQL/Update as application/sparql-update or form\n\
         GET  /describe?uri=...   describe one instance URI\n\
         GET  /dump               full RDF view (Turtle / N-Triples)\n\
         GET  /status             version, row counts, cache, durability and replication statistics (JSON)\n\
         GET  /metrics            Prometheus text exposition of all server metrics\n\
         POST /snapshot           admin checkpoint: snapshot state, truncate the WAL\n\
         GET  /wal?from=&epoch=   replication: committed WAL bytes from an absolute offset (long-poll)\n\
         GET  /snapshot/latest    replication: the newest snapshot file for replica bootstrap\n\
         GET  /traces             index of retained traces (tail-sampled)\n\
         GET  /trace/<request-id> span tree of one retained trace (JSON)\n\
         \n\
         /sparql switches: ?profile=1 (X-Profile stage timings + join plan), ?explain=1 (plan JSON, no execution)\n\
         /update switches: ?profile=1 (X-Profile update stage timings)\n",
    )
}

fn method_not_allowed(allow: &str) -> Response {
    Response::new(
        405,
        ERROR_CONTENT_TYPE,
        protocol_error_body(405, &format!("method not allowed; allowed: {allow}")),
    )
    .with_header("Allow", allow)
}

// ----------------------------------------------------------------------
// Queries
// ----------------------------------------------------------------------

fn query_from_get(
    ctx: &AppContext,
    session: &ReadSession,
    request: &Request,
    request_id: &str,
) -> Response {
    match request.param("query") {
        Some(text) => run_query(ctx, session, text, request, request_id),
        None => Response::new(
            400,
            ERROR_CONTENT_TYPE,
            protocol_error_body(400, "missing required parameter \"query\""),
        ),
    }
}

fn query_from_post(
    ctx: &AppContext,
    session: &ReadSession,
    request: &Request,
    request_id: &str,
) -> Response {
    let text = match request.content_type().as_deref() {
        Some(SPARQL_QUERY) => String::from_utf8_lossy(&request.body).into_owned(),
        Some(FORM) => {
            let form = request.form_params();
            match form.into_iter().find(|(k, _)| k == "query") {
                Some((_, v)) => v,
                None => {
                    return Response::new(
                        400,
                        ERROR_CONTENT_TYPE,
                        protocol_error_body(400, "missing required form field \"query\""),
                    )
                }
            }
        }
        other => {
            return Response::new(
                415,
                ERROR_CONTENT_TYPE,
                protocol_error_body(
                    415,
                    &format!(
                        "unsupported content type {:?}; use {SPARQL_QUERY} or {FORM}",
                        other.unwrap_or("none")
                    ),
                ),
            )
        }
    };
    run_query(ctx, session, &text, request, request_id)
}

fn run_query(
    ctx: &AppContext,
    session: &ReadSession,
    text: &str,
    request: &Request,
    request_id: &str,
) -> Response {
    // `?explain=1`: describe the chosen plan without executing it. The
    // body is always JSON (there is no result set to negotiate).
    if request.param("explain").is_some_and(|v| v == "1") {
        ctx.stats.record_query();
        return match session.explain_query(text) {
            Ok(explain) => Response::new(200, wire::JSON, explain_json(&explain)),
            Err(error) => mediator_error(&error),
        };
    }
    let Some((content_type, format)) = wire::negotiate_results(request.header("accept")) else {
        return not_acceptable(
            "results",
            &[wire::SPARQL_RESULTS_JSON, wire::SPARQL_RESULTS_XML],
        );
    };
    ctx.stats.record_query();
    let profiled = request.param("profile").is_some_and(|v| v == "1");
    let query_started = Instant::now();
    let result = if profiled {
        session
            .execute_query_profiled(text)
            .map(|(outcome, profile)| (outcome, Some(profile)))
    } else {
        session.execute_query(text).map(|outcome| (outcome, None))
    };
    let micros = query_started.elapsed().as_micros().min(u64::MAX as u128) as u64;
    if micros >= ctx.slow_query_micros {
        // Flag the active trace *now* so tail sampling pins it to the
        // priority ring; the ring entry then links to it by id.
        obs::trace::mark_slow();
        ctx.slow_log
            .record(text, micros, request_id, obs::trace::is_active());
        obs::log(
            obs::Level::Warn,
            "http",
            "slow query",
            &[("id", &request_id), ("micros", &micros), ("query", &text)],
        );
    }
    match result {
        Ok((outcome, profile)) => {
            let response = outcome_response(&outcome, content_type, format);
            match profile {
                Some(p) => response.with_header("X-Profile", &profile_json(&p)),
                None => response,
            }
        }
        Err(error) => mediator_error(&error),
    }
}

fn outcome_response(
    outcome: &sparql::QueryOutcome,
    content_type: &'static str,
    format: wire::ResultsFormat,
) -> Response {
    let body = match (outcome, format) {
        (sparql::QueryOutcome::Solutions(s), wire::ResultsFormat::Json) => {
            wire::solutions_to_json(s)
        }
        (sparql::QueryOutcome::Solutions(s), wire::ResultsFormat::Xml) => wire::solutions_to_xml(s),
        (sparql::QueryOutcome::Boolean(b), wire::ResultsFormat::Json) => wire::boolean_to_json(*b),
        (sparql::QueryOutcome::Boolean(b), wire::ResultsFormat::Xml) => wire::boolean_to_xml(*b),
    };
    Response::new(200, content_type, body)
}

// The joins array shared *byte for byte* by `?profile=1` and
// `?explain=1` — one renderer over the one [`JoinPlan`] computation, so
// EXPLAIN output can be diffed against a profiled execution directly.
fn join_plan_json(joins: &[JoinPlan]) -> String {
    json_array(joins.iter().map(|join| {
        JsonObject::new()
            .str("table", &join.table)
            .str("column", &join.column)
            .str("strategy", join.strategy)
            .finish()
    }))
}

// The `X-Profile` trailer: the chosen plan (per-join strategy) and
// per-stage wall times, one line of JSON so it survives as a header.
fn profile_json(profile: &QueryProfile) -> String {
    JsonObject::new()
        .bool("cache_hit", profile.cache_hit)
        .u64("parse_micros", profile.parse_micros)
        .u64("plan_micros", profile.plan_micros)
        .u64("execute_micros", profile.execute_micros)
        .u64("version_seq", profile.version_seq)
        .u64("rows", profile.rows as u64)
        .raw("joins", &join_plan_json(&profile.joins))
        .u64("join_keys", profile.join_keys as u64)
        .u64("residual_conjuncts", profile.residual_conjuncts as u64)
        .finish()
}

// The `?explain=1` body: the plan the executor *would* run — conjunct
// classification, join order and strategy, snapshot coordinates —
// without touching row data.
fn explain_json(explain: &QueryExplain) -> String {
    JsonObject::new()
        .bool("cache_hit", explain.cache_hit)
        .str("form", explain.form)
        .u64("version_seq", explain.version_seq)
        .raw("joins", &join_plan_json(&explain.joins))
        .u64("join_keys", explain.join_keys as u64)
        .u64("conjuncts", explain.conjuncts as u64)
        .u64("residual_conjuncts", explain.residual_conjuncts as u64)
        .finish()
}

// ----------------------------------------------------------------------
// Updates
// ----------------------------------------------------------------------

fn update(ctx: &AppContext, request: &Request) -> Response {
    let text = match request.content_type().as_deref() {
        Some(SPARQL_UPDATE) => String::from_utf8_lossy(&request.body).into_owned(),
        Some(FORM) => {
            let form = request.form_params();
            match form.into_iter().find(|(k, _)| k == "update") {
                Some((_, v)) => v,
                None => {
                    return Response::new(
                        400,
                        ERROR_CONTENT_TYPE,
                        protocol_error_body(400, "missing required form field \"update\""),
                    )
                }
            }
        }
        other => {
            return Response::new(
                415,
                ERROR_CONTENT_TYPE,
                protocol_error_body(
                    415,
                    &format!(
                        "unsupported content type {:?}; use {SPARQL_UPDATE} or {FORM}",
                        other.unwrap_or("none")
                    ),
                ),
            )
        }
    };
    ctx.stats.record_update();
    // A request may carry several operations separated by `;`
    // (SPARQL 1.1 update request); the whole request is executed as
    // one atomic write transaction, and the answer is the paper's §6
    // feedback document either way. `?profile=1` runs the same atomic
    // path with per-stage timing and answers it as an `X-Profile`
    // header alongside the unchanged feedback body.
    let profiled = request.param("profile").is_some_and(|v| v == "1");
    let result = if profiled {
        ctx.mediator
            .execute_script_profiled(&text)
            .map(|(outcomes, profile)| (outcomes, Some(profile)))
    } else {
        ctx.mediator
            .execute_script(&text, true)
            .map(|outcomes| (outcomes, None))
    };
    let (status, feedback, profile) = match result {
        Ok((outcomes, profile)) => {
            let operation = match outcomes.as_slice() {
                [only] => only.operation.clone(),
                many => format!("UPDATE SCRIPT ({} operations)", many.len()),
            };
            let statements: usize = outcomes.iter().map(|o| o.statements_executed).sum();
            let rows: usize = outcomes.iter().map(|o| o.rows_affected).sum();
            (
                200,
                Feedback::Success {
                    operation,
                    statements,
                    rows,
                },
                profile,
            )
        }
        Err(script_error) => {
            let operation = if script_error.completed.is_empty()
                && matches!(script_error.error, OntoError::Parse { .. })
            {
                "unparsed".to_owned()
            } else {
                format!("operation {}", script_error.operation_index + 1)
            };
            (
                status_for(&script_error.error),
                Feedback::Rejection {
                    operation,
                    error: script_error.error,
                },
                None,
            )
        }
    };
    let response = Response::new(status, wire::TURTLE, feedback.to_turtle());
    match profile {
        Some(p) => response.with_header("X-Profile", &update_profile_json(&p)),
        None => response,
    }
}

// The update `X-Profile` trailer: where a write's wall time went, from
// parse through the covering group fsync.
fn update_profile_json(profile: &UpdateProfile) -> String {
    JsonObject::new()
        .u64("parse_micros", profile.parse_micros)
        .u64("translate_micros", profile.translate_micros)
        .u64("sort_micros", profile.sort_micros)
        .u64("execute_micros", profile.execute_micros)
        .u64("wal_append_micros", profile.wal_append_micros)
        .u64("fsync_micros", profile.fsync_micros)
        .u64("operations", profile.operations as u64)
        .finish()
}

// ----------------------------------------------------------------------
// Graph endpoints
// ----------------------------------------------------------------------

fn describe(session: &ReadSession, request: &Request) -> Response {
    let Some(uri) = request.param("uri") else {
        return Response::new(
            400,
            ERROR_CONTENT_TYPE,
            protocol_error_body(400, "missing required parameter \"uri\""),
        );
    };
    let iri = match rdf::Iri::parse(uri) {
        Ok(iri) => iri,
        Err(e) => {
            return Response::new(
                400,
                ERROR_CONTENT_TYPE,
                protocol_error_body(400, &format!("invalid uri parameter: {e}")),
            )
        }
    };
    // Negotiate before touching the database: an unacceptable Accept
    // header must not pay for the (potentially O(database)) read.
    let Some(format) = negotiate_graph_format(request) else {
        return not_acceptable("graph", &[wire::TURTLE, wire::NTRIPLES]);
    };
    match session.describe(&iri) {
        Ok(graph) => graph_response(&graph, session, format),
        Err(error) => mediator_error(&error),
    }
}

fn dump(session: &ReadSession, request: &Request) -> Response {
    let Some(format) = negotiate_graph_format(request) else {
        return not_acceptable("graph", &[wire::TURTLE, wire::NTRIPLES]);
    };
    match session.materialize() {
        Ok(graph) => graph_response(&graph, session, format),
        Err(error) => mediator_error(&error),
    }
}

fn negotiate_graph_format(request: &Request) -> Option<(&'static str, wire::GraphFormat)> {
    wire::negotiate_graph(request.header("accept"))
}

fn graph_response(
    graph: &rdf::Graph,
    session: &ReadSession,
    (content_type, format): (&'static str, wire::GraphFormat),
) -> Response {
    let body = match format {
        wire::GraphFormat::Turtle => wire::graph_to_turtle(graph, session.prefixes()),
        wire::GraphFormat::NTriples => wire::graph_to_ntriples(graph),
    };
    Response::new(200, content_type, body)
}

// ----------------------------------------------------------------------
// Status
// ----------------------------------------------------------------------

fn status(ctx: &AppContext) -> Response {
    let mut tables = String::from("{");
    {
        let db = ctx.mediator.database();
        let mut first = true;
        for table in db.schema().tables() {
            if !first {
                tables.push(',');
            }
            first = false;
            tables.push_str(&wire::json_string(&table.name));
            tables.push(':');
            tables.push_str(&db.row_count(&table.name).unwrap_or(0).to_string());
        }
    }
    tables.push('}');
    let cache = ctx.mediator.query_cache_stats();
    let dict = ctx.mediator.dictionary_stats();
    let conc = ctx.mediator.concurrency_stats();
    let stats = &ctx.stats;
    let slow_queries = json_array(ctx.slow_log.entries().into_iter().map(|entry| {
        JsonObject::new()
            .str("query", &entry.query)
            .u64("micros", entry.micros)
            .str("request_id", &entry.request_id)
            .bool("trace_retained", entry.trace_retained)
            .u64("at_unix_ms", entry.at_unix_ms)
            .finish()
    }));
    let body = JsonObject::new()
        .str("version", env!("CARGO_PKG_VERSION"))
        .u64("uptime_seconds", ctx.started.elapsed().as_secs())
        .raw("tables", &tables)
        .raw(
            "query_cache",
            &JsonObject::new()
                .u64("entries", cache.entries as u64)
                .u64("capacity", cache.capacity as u64)
                .u64("hits", cache.hits)
                .u64("misses", cache.misses)
                .u64("evictions", cache.evictions)
                .finish(),
        )
        .raw(
            "dictionary",
            &JsonObject::new()
                .u64("symbols", dict.symbols)
                .u64("string_bytes", dict.string_bytes)
                .u64("hits", dict.hits)
                .u64("bytes_saved", dict.bytes_saved)
                .finish(),
        )
        .raw(
            "concurrency",
            &JsonObject::new()
                .u64("current_version", conc.current_version)
                .u64("versions_retained", conc.versions_retained as u64)
                .u64("read_sessions_live", conc.read_sessions_live as u64)
                .u64("write_lock_waits", conc.write_lock_waits)
                .u64("write_lock_wait_micros", conc.write_lock_wait_micros)
                .finish(),
        )
        .raw("durability", &durability_json(ctx))
        .raw("replication", &replication_json(ctx))
        .raw(
            "server",
            &JsonObject::new()
                .u64("workers", ctx.workers as u64)
                .u64("queue_capacity", ctx.queue_capacity as u64)
                .u64("requests", stats.requests())
                .u64("queries", stats.queries())
                .u64("updates", stats.updates())
                .u64("snapshots", stats.snapshots())
                .u64("overload_rejections", stats.overload_rejections())
                .finish(),
        )
        .raw("slow_queries", &slow_queries)
        .finish();
    Response::new(200, wire::JSON, body)
}

// ----------------------------------------------------------------------
// Metrics exposition
// ----------------------------------------------------------------------

/// Content type of the Prometheus text exposition format.
pub const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

// `GET /metrics`: render the process-global registry. Counters and
// histograms accumulate on the hot paths; point-in-time state (cache
// occupancy, dictionary size, MVCC chain, WAL frontier, replication
// lag) is sampled into gauges here, at scrape time — the scrape path
// is cold, so the registry lookups' mutex is fine.
fn metrics_exposition(ctx: &AppContext) -> Response {
    let registry = obs::registry();
    registry
        .gauge_labeled(
            "ontoaccess_build_info",
            "Constant 1, labeled with the server version",
            Some(("version", env!("CARGO_PKG_VERSION"))),
        )
        .set(1);
    registry
        .gauge("ontoaccess_uptime_seconds", "Seconds since server start")
        .set(ctx.started.elapsed().as_secs());
    let cache = ctx.mediator.query_cache_stats();
    registry
        .gauge(
            "ontoaccess_query_cache_entries",
            "Compiled queries currently cached",
        )
        .set(cache.entries as u64);
    registry
        .gauge(
            "ontoaccess_query_cache_capacity",
            "Query cache capacity (entries)",
        )
        .set(cache.capacity as u64);
    let dict = ctx.mediator.dictionary_stats();
    registry
        .gauge(
            "ontoaccess_dictionary_symbols",
            "Interned strings in the process-global dictionary",
        )
        .set(dict.symbols);
    registry
        .gauge(
            "ontoaccess_dictionary_string_bytes",
            "Bytes of unique string payload held by the dictionary",
        )
        .set(dict.string_bytes);
    registry
        .gauge(
            "ontoaccess_dictionary_bytes_saved",
            "Bytes avoided by interning repeated strings",
        )
        .set(dict.bytes_saved);
    let conc = ctx.mediator.concurrency_stats();
    registry
        .gauge(
            "ontoaccess_mvcc_current_version",
            "Sequence number of the currently published database version",
        )
        .set(conc.current_version);
    registry
        .gauge(
            "ontoaccess_mvcc_versions_retained",
            "Database versions retained for live readers",
        )
        .set(conc.versions_retained as u64);
    registry
        .gauge(
            "ontoaccess_mvcc_read_sessions",
            "Read sessions currently live",
        )
        .set(conc.read_sessions_live as u64);
    registry
        .gauge(
            "ontoaccess_write_lock_waits_total",
            "Write transactions that had to wait for the write lock",
        )
        .set(conc.write_lock_waits);
    if let Some(d) = ctx.mediator.durability_stats() {
        registry
            .gauge("ontoaccess_wal_size_bytes", "Durable WAL size in bytes")
            .set(d.wal_bytes);
        registry
            .gauge(
                "ontoaccess_wal_last_commit_seq",
                "Sequence number of the last durably committed unit",
            )
            .set(d.last_commit_seq);
        registry
            .gauge(
                "ontoaccess_wal_poisoned",
                "1 when the WAL refused further appends after a fault",
            )
            .set(u64::from(d.poisoned));
    }
    if let Some(status) = &ctx.replication {
        let snap = status.snapshot();
        registry
            .gauge(
                "ontoaccess_repl_applied_seq",
                "Last WAL commit unit applied by this replica",
            )
            .set(snap.applied_seq);
        registry
            .gauge(
                "ontoaccess_repl_leader_seq",
                "Leader's durable commit frontier as last observed",
            )
            .set(snap.leader_seq);
        registry
            .gauge(
                "ontoaccess_repl_lag_units",
                "Commit units the replica trails the leader by",
            )
            .set(snap.lag_units);
        registry
            .gauge(
                "ontoaccess_repl_lag_bytes",
                "WAL bytes the replica trails the leader by",
            )
            .set(snap.lag_bytes);
    }
    Response::new(200, METRICS_CONTENT_TYPE, registry.render())
}

// The `/status` replication object: a follower reports its replicator
// handle's view; a durable leader reports itself caught up with its
// own commit frontier; anything else is a standalone server.
fn replication_json(ctx: &AppContext) -> String {
    if let Some(status) = &ctx.replication {
        let snap = status.snapshot();
        return JsonObject::new()
            .str("role", "replica")
            .str("leader", &snap.leader)
            .str("state", snap.state.as_str())
            .u64("applied_seq", snap.applied_seq)
            .u64("leader_seq", snap.leader_seq)
            .u64("lag_units", snap.lag_units)
            .u64("lag_bytes", snap.lag_bytes)
            .opt_u64("last_contact_ms", snap.last_contact_ms)
            .u64("reconnects", snap.reconnects)
            .opt_str("last_error", snap.last_error.as_deref())
            .finish();
    }
    match ctx.mediator.durability_stats() {
        Some(d) => JsonObject::new()
            .str("role", "leader")
            .u64("applied_seq", d.last_commit_seq)
            .u64("leader_seq", d.last_commit_seq)
            .u64("lag_units", 0)
            .u64("lag_bytes", 0)
            .finish(),
        None => JsonObject::new().str("role", "standalone").finish(),
    }
}

// The `/status` durability object: counters when a data directory is
// configured, `{"enabled":false}` otherwise.
fn durability_json(ctx: &AppContext) -> String {
    match ctx.mediator.durability_stats() {
        Some(d) => JsonObject::new()
            .bool("enabled", true)
            .u64("wal_bytes", d.wal_bytes)
            .u64("commits_appended", d.commits_appended)
            .u64("wal_syncs", d.wal_syncs)
            .u64("records_replayed", d.records_replayed)
            .u64("rows_replayed", d.rows_replayed)
            .opt_u64("last_snapshot", d.last_snapshot_seq)
            .u64("last_commit_seq", d.last_commit_seq)
            .bool("poisoned", d.poisoned)
            .finish(),
        None => JsonObject::new().bool("enabled", false).finish(),
    }
}

// ----------------------------------------------------------------------
// Admin checkpoint
// ----------------------------------------------------------------------

// `POST /snapshot`: durably materialize the committed state and
// truncate the WAL. Answers 501 (Unsupported) when the server runs
// without a data directory.
fn snapshot(ctx: &AppContext) -> Response {
    match ctx.mediator.checkpoint() {
        Ok(seq) => {
            ctx.stats.record_snapshot();
            let wal_bytes = ctx.mediator.durability_stats().map_or(0, |d| d.wal_bytes);
            Response::new(
                200,
                wire::JSON,
                JsonObject::new()
                    .u64("snapshot_seq", seq)
                    .u64("wal_bytes", wal_bytes)
                    .finish(),
            )
        }
        Err(error) => mediator_error(&error),
    }
}

// ----------------------------------------------------------------------
// Replication (leader side)
// ----------------------------------------------------------------------

/// Media type of the raw WAL/snapshot byte streams.
const OCTET_STREAM: &str = "application/octet-stream";

// Replication coordinates travel as headers on every `/wal` answer, so
// a follower can track the leader's frontier even from an empty
// (caught-up) response.
fn with_position(response: Response, position: &dur::WalPosition) -> Response {
    let response = response
        .with_header("X-Wal-Epoch", &position.epoch.to_string())
        .with_header("X-Wal-Size", &position.durable_bytes.to_string())
        .with_header("X-Leader-Seq", &position.durable_seq.to_string());
    match position.snapshot_seq {
        Some(seq) => response.with_header("X-Snapshot-Seq", &seq.to_string()),
        None => response,
    }
}

// `GET /wal?from=&epoch=&timeout_ms=`: committed WAL bytes starting at
// the absolute offset `from`, provided the follower's `epoch` still
// names the current WAL generation. Caught-up requests long-poll up to
// `timeout_ms` (capped); a stale epoch or out-of-range offset answers
// `409` with the new coordinates in the headers. `501` when this
// server has no WAL to ship (not durable, or itself a replica).
fn wal(ctx: &AppContext, request: &Request) -> Response {
    let (from, epoch) = match (
        request.param("from").and_then(|v| v.parse::<u64>().ok()),
        request.param("epoch").and_then(|v| v.parse::<u64>().ok()),
    ) {
        (Some(from), Some(epoch)) => (from, epoch),
        _ => {
            return Response::new(
                400,
                ERROR_CONTENT_TYPE,
                protocol_error_body(
                    400,
                    "missing or invalid required parameters \"from\" and \"epoch\" (u64)",
                ),
            )
        }
    };
    // The long poll parks one worker; the cap keeps a malicious
    // timeout from parking it for good.
    let timeout_ms = request
        .param("timeout_ms")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0)
        .min(25_000);
    match ctx
        .mediator
        .fetch_wal(from, epoch, Duration::from_millis(timeout_ms))
    {
        Ok(dur::WalFetch::Data { bytes, position }) => {
            with_position(Response::new(200, OCTET_STREAM, bytes), &position)
        }
        Ok(dur::WalFetch::CaughtUp { position }) => {
            with_position(Response::new(200, OCTET_STREAM, Vec::new()), &position)
        }
        Ok(dur::WalFetch::Reposition { position }) => with_position(
            Response::new(
                409,
                ERROR_CONTENT_TYPE,
                JsonObject::new()
                    .bool("reposition", true)
                    .u64("epoch", position.epoch)
                    .u64("durable_bytes", position.durable_bytes)
                    .finish(),
            ),
            &position,
        ),
        Err(error) => mediator_error(&error),
    }
}

// `GET /snapshot/latest`: the newest snapshot file, verbatim, for
// replica bootstrap. The WAL epoch always equals the newest snapshot's
// seq, so the same value is served under both header names.
fn snapshot_latest(ctx: &AppContext) -> Response {
    match ctx.mediator.latest_snapshot_bytes() {
        Ok((seq, bytes)) => Response::new(200, OCTET_STREAM, bytes)
            .with_header("X-Snapshot-Seq", &seq.to_string())
            .with_header("X-Wal-Epoch", &seq.to_string()),
        Err(error) => mediator_error(&error),
    }
}

// ----------------------------------------------------------------------
// Traces
// ----------------------------------------------------------------------

// `GET /traces`: the retained-trace index, newest first, with the
// store's occupancy and its memory-bound canary. Entry summaries only;
// follow `trace_id` to `/trace/<id>` for the span tree.
fn traces_index() -> Response {
    let store = obs::trace::store();
    let (priority, sampled) = store.counts();
    let (priority_capacity, sampled_capacity) = store.capacities();
    let traces = json_array(store.index().into_iter().map(|record| {
        JsonObject::new()
            .str("trace_id", &record.trace_id)
            .str("root", record.root)
            .u64("started_unix_ms", record.started_unix_ms)
            .u64("duration_micros", record.duration_micros)
            .bool("error", record.error)
            .bool("slow", record.slow)
            .u64("spans", record.spans.len() as u64)
            .finish()
    }));
    let body = JsonObject::new()
        .u64("priority", priority as u64)
        .u64("sampled", sampled as u64)
        .u64("priority_capacity", priority_capacity as u64)
        .u64("sampled_capacity", sampled_capacity as u64)
        .u64("spans_held", store.spans_held())
        .raw("traces", &traces)
        .finish();
    Response::new(200, wire::JSON, body)
}

// `GET /trace/<request-id>`: the span tree of one retained trace. A
// miss is a plain 404 — the id may never have been traced, or its
// trace was ring-sampled away (only error/slow traces are pinned).
fn trace_detail(path: &str) -> Response {
    let id = &path["/trace/".len()..];
    match obs::trace::store().get(id) {
        Some(record) => Response::new(200, wire::JSON, trace_json(&record)),
        None => Response::new(
            404,
            ERROR_CONTENT_TYPE,
            protocol_error_body(
                404,
                &format!("no retained trace {id:?} (traces are tail-sampled; see /traces)"),
            ),
        ),
    }
}

// One trace as JSON: the record header plus its spans in recording
// order. The tree is encoded by `parent` span ids (`null` on the
// root); offsets are microseconds from the trace start.
fn trace_json(record: &obs::trace::TraceRecord) -> String {
    let spans = json_array(record.spans.iter().map(|span| {
        JsonObject::new()
            .u64("id", u64::from(span.id))
            .opt_u64("parent", span.parent.map(u64::from))
            .str("name", span.name)
            .u64("start_micros", span.start_micros)
            .u64("end_micros", span.end_micros)
            .raw("attrs", &span_attrs_json(&span.attrs))
            .finish()
    }));
    JsonObject::new()
        .str("trace_id", &record.trace_id)
        .str("root", record.root)
        .u64("started_unix_ms", record.started_unix_ms)
        .u64("duration_micros", record.duration_micros)
        .bool("error", record.error)
        .bool("slow", record.slow)
        .u64("spans_dropped", record.spans_dropped)
        .raw("spans", &spans)
        .finish()
}

fn span_attrs_json(attrs: &[(&'static str, obs::trace::AttrValue)]) -> String {
    let mut object = JsonObject::new();
    for (key, value) in attrs {
        object = match value {
            obs::trace::AttrValue::U64(v) => object.u64(key, *v),
            obs::trace::AttrValue::Str(v) => object.str(key, v),
            obs::trace::AttrValue::Bool(v) => object.bool(key, *v),
        };
    }
    object.finish()
}

// ----------------------------------------------------------------------
// Shared error shapes
// ----------------------------------------------------------------------

fn mediator_error(error: &OntoError) -> Response {
    Response::new(status_for(error), ERROR_CONTENT_TYPE, error_body(error))
}

fn not_acceptable(kind: &str, offers: &[&str]) -> Response {
    Response::new(
        406,
        ERROR_CONTENT_TYPE,
        protocol_error_body(
            406,
            &format!(
                "no acceptable {kind} representation; offered: {}",
                offers.join(", ")
            ),
        ),
    )
}
