//! Request routing and the SPARQL Protocol endpoint handlers.
//!
//! | Method + path       | Operation |
//! |---------------------|-----------|
//! | `GET /sparql?query=`| SPARQL query (also `POST` with a `application/sparql-query` body or an urlencoded form) |
//! | `POST /update`      | SPARQL/Update; the response body is the paper's §6 RDF feedback document (Turtle) |
//! | `GET /describe?uri=`| Concise description of one instance URI (graph response) |
//! | `GET /dump`         | The database's full RDF view (graph response) |
//! | `GET /status`       | Version, uptime, row counts, query-cache, concurrency, durability, replication and server counters (JSON) |
//! | `POST /snapshot`    | Admin checkpoint: snapshot the committed state, truncate the WAL (durable servers only) |
//! | `GET /wal`          | Replication: committed WAL bytes from `from=` (absolute offset), long-polling when caught up (durable leaders only) |
//! | `GET /snapshot/latest` | Replication: the newest snapshot file, for replica bootstrap (durable leaders only) |
//!
//! Queries execute on the worker's shared [`ReadSession`]; updates
//! serialize through the mediator's write transaction. Mediator
//! rejections map to statuses via [`crate::error_map`]; the update
//! endpoint keeps the RDF feedback document as its error body, the
//! query endpoints answer machine-readable JSON errors.

use crate::error_map::{error_body, protocol_error_body, status_for, ERROR_CONTENT_TYPE};
use crate::http::{Request, Response};
use crate::stats::ServerStats;
use crate::wire;
use ontoaccess::feedback::Feedback;
use ontoaccess::mediator::{Mediator, ReadSession};
use ontoaccess::OntoError;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Media type of a SPARQL query sent as a raw POST body.
pub const SPARQL_QUERY: &str = "application/sparql-query";
/// Media type of a SPARQL/Update sent as a raw POST body.
pub const SPARQL_UPDATE: &str = "application/sparql-update";
const FORM: &str = "application/x-www-form-urlencoded";

// Everything a handler can reach: the shared mediator (writes, admin)
// and server-level counters. Read sessions are per worker and passed
// alongside.
pub(crate) struct AppContext {
    pub mediator: Mediator,
    pub stats: Arc<ServerStats>,
    pub started: Instant,
    pub workers: usize,
    pub queue_capacity: usize,
    pub replication: Option<repl::ReplicationStatus>,
}

pub(crate) fn handle_request(
    ctx: &AppContext,
    session: &ReadSession,
    request: &Request,
) -> Response {
    ctx.stats.record_request();
    // HEAD is answered like GET everywhere GET is allowed; the
    // connection layer suppresses the body bytes while keeping the
    // Content-Length a GET would have produced (RFC 9110 §9.3.2).
    let method = if request.method == "HEAD" {
        "GET"
    } else {
        request.method.as_str()
    };
    match (method, request.path.as_str()) {
        ("GET", "/") => usage(),
        ("GET", "/sparql") => query_from_get(ctx, session, request),
        ("POST", "/sparql") => query_from_post(ctx, session, request),
        ("POST", "/update") => update(ctx, request),
        ("GET", "/describe") => describe(session, request),
        ("GET", "/dump") => dump(session, request),
        ("GET", "/status") => status(ctx),
        ("POST", "/snapshot") => snapshot(ctx),
        ("GET", "/wal") => wal(ctx, request),
        ("GET", "/snapshot/latest") => snapshot_latest(ctx),
        (_, "/sparql") => method_not_allowed("GET, HEAD, POST"),
        (_, "/update") | (_, "/snapshot") => method_not_allowed("POST"),
        (_, "/describe")
        | (_, "/dump")
        | (_, "/status")
        | (_, "/")
        | (_, "/wal")
        | (_, "/snapshot/latest") => method_not_allowed("GET, HEAD"),
        _ => Response::new(
            404,
            ERROR_CONTENT_TYPE,
            protocol_error_body(404, &format!("no such endpoint {:?}", request.path)),
        ),
    }
}

fn usage() -> Response {
    Response::new(
        200,
        "text/plain; charset=utf-8",
        "OntoAccess SPARQL 1.1 Protocol endpoint\n\
         \n\
         GET  /sparql?query=...   SPARQL query (SELECT/ASK)\n\
         POST /sparql             query as application/sparql-query or form\n\
         POST /update             SPARQL/Update as application/sparql-update or form\n\
         GET  /describe?uri=...   describe one instance URI\n\
         GET  /dump               full RDF view (Turtle / N-Triples)\n\
         GET  /status             version, row counts, cache, durability and replication statistics (JSON)\n\
         POST /snapshot           admin checkpoint: snapshot state, truncate the WAL\n\
         GET  /wal?from=&epoch=   replication: committed WAL bytes from an absolute offset (long-poll)\n\
         GET  /snapshot/latest    replication: the newest snapshot file for replica bootstrap\n",
    )
}

fn method_not_allowed(allow: &str) -> Response {
    Response::new(
        405,
        ERROR_CONTENT_TYPE,
        protocol_error_body(405, &format!("method not allowed; allowed: {allow}")),
    )
    .with_header("Allow", allow)
}

// ----------------------------------------------------------------------
// Queries
// ----------------------------------------------------------------------

fn query_from_get(ctx: &AppContext, session: &ReadSession, request: &Request) -> Response {
    match request.param("query") {
        Some(text) => run_query(ctx, session, text, request),
        None => Response::new(
            400,
            ERROR_CONTENT_TYPE,
            protocol_error_body(400, "missing required parameter \"query\""),
        ),
    }
}

fn query_from_post(ctx: &AppContext, session: &ReadSession, request: &Request) -> Response {
    let text = match request.content_type().as_deref() {
        Some(SPARQL_QUERY) => String::from_utf8_lossy(&request.body).into_owned(),
        Some(FORM) => {
            let form = request.form_params();
            match form.into_iter().find(|(k, _)| k == "query") {
                Some((_, v)) => v,
                None => {
                    return Response::new(
                        400,
                        ERROR_CONTENT_TYPE,
                        protocol_error_body(400, "missing required form field \"query\""),
                    )
                }
            }
        }
        other => {
            return Response::new(
                415,
                ERROR_CONTENT_TYPE,
                protocol_error_body(
                    415,
                    &format!(
                        "unsupported content type {:?}; use {SPARQL_QUERY} or {FORM}",
                        other.unwrap_or("none")
                    ),
                ),
            )
        }
    };
    run_query(ctx, session, &text, request)
}

fn run_query(ctx: &AppContext, session: &ReadSession, text: &str, request: &Request) -> Response {
    let Some((content_type, format)) = wire::negotiate_results(request.header("accept")) else {
        return not_acceptable(
            "results",
            &[wire::SPARQL_RESULTS_JSON, wire::SPARQL_RESULTS_XML],
        );
    };
    ctx.stats.record_query();
    match session.execute_query(text) {
        Ok(sparql::QueryOutcome::Solutions(solutions)) => {
            let body = match format {
                wire::ResultsFormat::Json => wire::solutions_to_json(&solutions),
                wire::ResultsFormat::Xml => wire::solutions_to_xml(&solutions),
            };
            Response::new(200, content_type, body)
        }
        Ok(sparql::QueryOutcome::Boolean(value)) => {
            let body = match format {
                wire::ResultsFormat::Json => wire::boolean_to_json(value),
                wire::ResultsFormat::Xml => wire::boolean_to_xml(value),
            };
            Response::new(200, content_type, body)
        }
        Err(error) => mediator_error(&error),
    }
}

// ----------------------------------------------------------------------
// Updates
// ----------------------------------------------------------------------

fn update(ctx: &AppContext, request: &Request) -> Response {
    let text = match request.content_type().as_deref() {
        Some(SPARQL_UPDATE) => String::from_utf8_lossy(&request.body).into_owned(),
        Some(FORM) => {
            let form = request.form_params();
            match form.into_iter().find(|(k, _)| k == "update") {
                Some((_, v)) => v,
                None => {
                    return Response::new(
                        400,
                        ERROR_CONTENT_TYPE,
                        protocol_error_body(400, "missing required form field \"update\""),
                    )
                }
            }
        }
        other => {
            return Response::new(
                415,
                ERROR_CONTENT_TYPE,
                protocol_error_body(
                    415,
                    &format!(
                        "unsupported content type {:?}; use {SPARQL_UPDATE} or {FORM}",
                        other.unwrap_or("none")
                    ),
                ),
            )
        }
    };
    ctx.stats.record_update();
    // A request may carry several operations separated by `;`
    // (SPARQL 1.1 update request); the whole request is executed as
    // one atomic write transaction, and the answer is the paper's §6
    // feedback document either way.
    let (status, feedback) = match ctx.mediator.execute_script(&text, true) {
        Ok(outcomes) => {
            let operation = match outcomes.as_slice() {
                [only] => only.operation.clone(),
                many => format!("UPDATE SCRIPT ({} operations)", many.len()),
            };
            let statements: usize = outcomes.iter().map(|o| o.statements_executed).sum();
            let rows: usize = outcomes.iter().map(|o| o.rows_affected).sum();
            (
                200,
                Feedback::Success {
                    operation,
                    statements,
                    rows,
                },
            )
        }
        Err(script_error) => {
            let operation = if script_error.completed.is_empty()
                && matches!(script_error.error, OntoError::Parse { .. })
            {
                "unparsed".to_owned()
            } else {
                format!("operation {}", script_error.operation_index + 1)
            };
            (
                status_for(&script_error.error),
                Feedback::Rejection {
                    operation,
                    error: script_error.error,
                },
            )
        }
    };
    Response::new(status, wire::TURTLE, feedback.to_turtle())
}

// ----------------------------------------------------------------------
// Graph endpoints
// ----------------------------------------------------------------------

fn describe(session: &ReadSession, request: &Request) -> Response {
    let Some(uri) = request.param("uri") else {
        return Response::new(
            400,
            ERROR_CONTENT_TYPE,
            protocol_error_body(400, "missing required parameter \"uri\""),
        );
    };
    let iri = match rdf::Iri::parse(uri) {
        Ok(iri) => iri,
        Err(e) => {
            return Response::new(
                400,
                ERROR_CONTENT_TYPE,
                protocol_error_body(400, &format!("invalid uri parameter: {e}")),
            )
        }
    };
    // Negotiate before touching the database: an unacceptable Accept
    // header must not pay for the (potentially O(database)) read.
    let Some(format) = negotiate_graph_format(request) else {
        return not_acceptable("graph", &[wire::TURTLE, wire::NTRIPLES]);
    };
    match session.describe(&iri) {
        Ok(graph) => graph_response(&graph, session, format),
        Err(error) => mediator_error(&error),
    }
}

fn dump(session: &ReadSession, request: &Request) -> Response {
    let Some(format) = negotiate_graph_format(request) else {
        return not_acceptable("graph", &[wire::TURTLE, wire::NTRIPLES]);
    };
    match session.materialize() {
        Ok(graph) => graph_response(&graph, session, format),
        Err(error) => mediator_error(&error),
    }
}

fn negotiate_graph_format(request: &Request) -> Option<(&'static str, wire::GraphFormat)> {
    wire::negotiate_graph(request.header("accept"))
}

fn graph_response(
    graph: &rdf::Graph,
    session: &ReadSession,
    (content_type, format): (&'static str, wire::GraphFormat),
) -> Response {
    let body = match format {
        wire::GraphFormat::Turtle => wire::graph_to_turtle(graph, session.prefixes()),
        wire::GraphFormat::NTriples => wire::graph_to_ntriples(graph),
    };
    Response::new(200, content_type, body)
}

// ----------------------------------------------------------------------
// Status
// ----------------------------------------------------------------------

fn status(ctx: &AppContext) -> Response {
    let mut tables = String::new();
    {
        let db = ctx.mediator.database();
        let mut first = true;
        for table in db.schema().tables() {
            if !first {
                tables.push(',');
            }
            first = false;
            tables.push_str(&wire::json_string(&table.name));
            tables.push(':');
            tables.push_str(&db.row_count(&table.name).unwrap_or(0).to_string());
        }
    }
    let cache = ctx.mediator.query_cache_stats();
    let dict = ctx.mediator.dictionary_stats();
    let conc = ctx.mediator.concurrency_stats();
    let stats = &ctx.stats;
    let body = format!(
        "{{\"version\":{},\"uptime_seconds\":{},\"tables\":{{{tables}}},\
         \"query_cache\":{{\"entries\":{},\"capacity\":{},\"hits\":{},\"misses\":{},\"evictions\":{}}},\
         \"dictionary\":{{\"symbols\":{},\"string_bytes\":{},\"hits\":{},\"bytes_saved\":{}}},\
         \"concurrency\":{{\"current_version\":{},\"versions_retained\":{},\"read_sessions_live\":{},\"write_lock_waits\":{},\"write_lock_wait_micros\":{}}},\
         \"durability\":{},\
         \"replication\":{},\
         \"server\":{{\"workers\":{},\"queue_capacity\":{},\"requests\":{},\"queries\":{},\"updates\":{},\"snapshots\":{},\"overload_rejections\":{}}}}}",
        wire::json_string(env!("CARGO_PKG_VERSION")),
        ctx.started.elapsed().as_secs(),
        cache.entries,
        cache.capacity,
        cache.hits,
        cache.misses,
        cache.evictions,
        dict.symbols,
        dict.string_bytes,
        dict.hits,
        dict.bytes_saved,
        conc.current_version,
        conc.versions_retained,
        conc.read_sessions_live,
        conc.write_lock_waits,
        conc.write_lock_wait_micros,
        durability_json(ctx),
        replication_json(ctx),
        ctx.workers,
        ctx.queue_capacity,
        stats.requests(),
        stats.queries(),
        stats.updates(),
        stats.snapshots(),
        stats.overload_rejections(),
    );
    Response::new(200, wire::JSON, body)
}

// The `/status` replication object: a follower reports its replicator
// handle's view; a durable leader reports itself caught up with its
// own commit frontier; anything else is a standalone server.
fn replication_json(ctx: &AppContext) -> String {
    if let Some(status) = &ctx.replication {
        let snap = status.snapshot();
        return format!(
            "{{\"role\":\"replica\",\"leader\":{},\"state\":{},\"applied_seq\":{},\
             \"leader_seq\":{},\"lag_units\":{},\"lag_bytes\":{},\"last_contact_ms\":{},\
             \"reconnects\":{},\"last_error\":{}}}",
            wire::json_string(&snap.leader),
            wire::json_string(snap.state.as_str()),
            snap.applied_seq,
            snap.leader_seq,
            snap.lag_units,
            snap.lag_bytes,
            snap.last_contact_ms
                .map_or_else(|| "null".to_owned(), |ms| ms.to_string()),
            snap.reconnects,
            snap.last_error
                .as_deref()
                .map_or_else(|| "null".to_owned(), wire::json_string),
        );
    }
    match ctx.mediator.durability_stats() {
        Some(d) => format!(
            "{{\"role\":\"leader\",\"applied_seq\":{0},\"leader_seq\":{0},\
             \"lag_units\":0,\"lag_bytes\":0}}",
            d.last_commit_seq
        ),
        None => "{\"role\":\"standalone\"}".to_owned(),
    }
}

// The `/status` durability object: counters when a data directory is
// configured, `{"enabled":false}` otherwise.
fn durability_json(ctx: &AppContext) -> String {
    match ctx.mediator.durability_stats() {
        Some(d) => format!(
            "{{\"enabled\":true,\"wal_bytes\":{},\"commits_appended\":{},\"wal_syncs\":{},\
             \"records_replayed\":{},\"rows_replayed\":{},\"last_snapshot\":{},\
             \"last_commit_seq\":{},\"poisoned\":{}}}",
            d.wal_bytes,
            d.commits_appended,
            d.wal_syncs,
            d.records_replayed,
            d.rows_replayed,
            d.last_snapshot_seq
                .map_or_else(|| "null".to_owned(), |seq| seq.to_string()),
            d.last_commit_seq,
            d.poisoned,
        ),
        None => "{\"enabled\":false}".to_owned(),
    }
}

// ----------------------------------------------------------------------
// Admin checkpoint
// ----------------------------------------------------------------------

// `POST /snapshot`: durably materialize the committed state and
// truncate the WAL. Answers 501 (Unsupported) when the server runs
// without a data directory.
fn snapshot(ctx: &AppContext) -> Response {
    match ctx.mediator.checkpoint() {
        Ok(seq) => {
            ctx.stats.record_snapshot();
            let wal_bytes = ctx.mediator.durability_stats().map_or(0, |d| d.wal_bytes);
            Response::new(
                200,
                wire::JSON,
                format!("{{\"snapshot_seq\":{seq},\"wal_bytes\":{wal_bytes}}}"),
            )
        }
        Err(error) => mediator_error(&error),
    }
}

// ----------------------------------------------------------------------
// Replication (leader side)
// ----------------------------------------------------------------------

/// Media type of the raw WAL/snapshot byte streams.
const OCTET_STREAM: &str = "application/octet-stream";

// Replication coordinates travel as headers on every `/wal` answer, so
// a follower can track the leader's frontier even from an empty
// (caught-up) response.
fn with_position(response: Response, position: &dur::WalPosition) -> Response {
    let response = response
        .with_header("X-Wal-Epoch", &position.epoch.to_string())
        .with_header("X-Wal-Size", &position.durable_bytes.to_string())
        .with_header("X-Leader-Seq", &position.durable_seq.to_string());
    match position.snapshot_seq {
        Some(seq) => response.with_header("X-Snapshot-Seq", &seq.to_string()),
        None => response,
    }
}

// `GET /wal?from=&epoch=&timeout_ms=`: committed WAL bytes starting at
// the absolute offset `from`, provided the follower's `epoch` still
// names the current WAL generation. Caught-up requests long-poll up to
// `timeout_ms` (capped); a stale epoch or out-of-range offset answers
// `409` with the new coordinates in the headers. `501` when this
// server has no WAL to ship (not durable, or itself a replica).
fn wal(ctx: &AppContext, request: &Request) -> Response {
    let (from, epoch) = match (
        request.param("from").and_then(|v| v.parse::<u64>().ok()),
        request.param("epoch").and_then(|v| v.parse::<u64>().ok()),
    ) {
        (Some(from), Some(epoch)) => (from, epoch),
        _ => {
            return Response::new(
                400,
                ERROR_CONTENT_TYPE,
                protocol_error_body(
                    400,
                    "missing or invalid required parameters \"from\" and \"epoch\" (u64)",
                ),
            )
        }
    };
    // The long poll parks one worker; the cap keeps a malicious
    // timeout from parking it for good.
    let timeout_ms = request
        .param("timeout_ms")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0)
        .min(25_000);
    match ctx
        .mediator
        .fetch_wal(from, epoch, Duration::from_millis(timeout_ms))
    {
        Ok(dur::WalFetch::Data { bytes, position }) => {
            with_position(Response::new(200, OCTET_STREAM, bytes), &position)
        }
        Ok(dur::WalFetch::CaughtUp { position }) => {
            with_position(Response::new(200, OCTET_STREAM, Vec::new()), &position)
        }
        Ok(dur::WalFetch::Reposition { position }) => with_position(
            Response::new(
                409,
                ERROR_CONTENT_TYPE,
                format!(
                    "{{\"reposition\":true,\"epoch\":{},\"durable_bytes\":{}}}",
                    position.epoch, position.durable_bytes
                ),
            ),
            &position,
        ),
        Err(error) => mediator_error(&error),
    }
}

// `GET /snapshot/latest`: the newest snapshot file, verbatim, for
// replica bootstrap. The WAL epoch always equals the newest snapshot's
// seq, so the same value is served under both header names.
fn snapshot_latest(ctx: &AppContext) -> Response {
    match ctx.mediator.latest_snapshot_bytes() {
        Ok((seq, bytes)) => Response::new(200, OCTET_STREAM, bytes)
            .with_header("X-Snapshot-Seq", &seq.to_string())
            .with_header("X-Wal-Epoch", &seq.to_string()),
        Err(error) => mediator_error(&error),
    }
}

// ----------------------------------------------------------------------
// Shared error shapes
// ----------------------------------------------------------------------

fn mediator_error(error: &OntoError) -> Response {
    Response::new(status_for(error), ERROR_CONTENT_TYPE, error_body(error))
}

fn not_acceptable(kind: &str, offers: &[&str]) -> Response {
    Response::new(
        406,
        ERROR_CONTENT_TYPE,
        protocol_error_body(
            406,
            &format!(
                "no acceptable {kind} representation; offered: {}",
                offers.join(", ")
            ),
        ),
    )
}
