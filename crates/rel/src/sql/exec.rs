//! SQL statement execution against a [`Database`].
//!
//! SELECT uses nested-loop joins over the FROM list — the plan shape the
//! SPARQL-to-SQL translation emits (one table reference per triple
//! pattern, join conditions as WHERE equality predicates) — with two
//! classic optimizations that keep it honest at benchmark scale:
//! **conjunct pushdown** (each AND-conjunct is applied at the shallowest
//! join level where its columns are bound, pruning partial combinations)
//! and **greedy join ordering** (bindings are re-ordered so that link
//! tables sit between their endpoints and constrained tables come
//! first). Results are independent of the chosen order.

use crate::database::Database;
use crate::error::{RelError, RelResult};
use crate::sql::ast::{
    BinOp, ColumnRef, DeleteStmt, Expr, InsertStmt, SelectItem, SelectStmt, Statement, UpdateStmt,
};
use crate::value::Value;

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// Rows affected by INSERT/UPDATE/DELETE.
    Affected(usize),
    /// Result set of a SELECT.
    Rows(ResultSet),
}

impl ExecOutcome {
    /// Rows affected (0 for SELECT).
    pub fn affected(&self) -> usize {
        match self {
            ExecOutcome::Affected(n) => *n,
            ExecOutcome::Rows(_) => 0,
        }
    }

    /// The result set, if this was a SELECT.
    pub fn rows(&self) -> Option<&ResultSet> {
        match self {
            ExecOutcome::Rows(rs) => Some(rs),
            ExecOutcome::Affected(_) => None,
        }
    }
}

/// A SELECT result: column names and rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Output column names (aliases where given).
    pub columns: Vec<String>,
    /// Row values, parallel to `columns`.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Value at `(row, column_name)`, if present.
    pub fn value(&self, row: usize, column: &str) -> Option<&Value> {
        let idx = self.columns.iter().position(|c| c == column)?;
        self.rows.get(row)?.get(idx)
    }
}

/// Execute one statement.
pub fn execute(db: &mut Database, stmt: &Statement) -> RelResult<ExecOutcome> {
    match stmt {
        Statement::Insert(s) => execute_insert(db, s).map(ExecOutcome::Affected),
        Statement::Update(s) => execute_update(db, s).map(ExecOutcome::Affected),
        Statement::Delete(s) => execute_delete(db, s).map(ExecOutcome::Affected),
        Statement::Select(s) => execute_select(db, s).map(ExecOutcome::Rows),
    }
}

/// Execute a SQL string (parses then executes).
pub fn execute_sql(db: &mut Database, sql: &str) -> RelResult<ExecOutcome> {
    let stmt = crate::sql::parser::parse(sql)?;
    execute(db, &stmt)
}

fn execute_insert(db: &mut Database, stmt: &InsertStmt) -> RelResult<usize> {
    let assignments: Vec<(String, Value)> = stmt
        .columns
        .iter()
        .cloned()
        .zip(stmt.values.iter().cloned())
        .collect();
    db.insert(&stmt.table, &assignments)?;
    Ok(1)
}

fn execute_update(db: &mut Database, stmt: &UpdateStmt) -> RelResult<usize> {
    let table = db.schema().table(&stmt.table)?.clone();
    // Materialize matching row ids first; mutation invalidates the scan.
    let mut matches = Vec::new();
    for (row_id, row) in db.scan(&stmt.table)? {
        if filter_row(&table, row, stmt.where_clause.as_ref())? {
            matches.push((row_id, row.clone()));
        }
    }
    let mut affected = 0;
    for (row_id, row) in matches {
        let mut assignments = Vec::with_capacity(stmt.assignments.len());
        for (column, expr) in &stmt.assignments {
            let value = eval_on_row(expr, &table, &row)?;
            assignments.push((column.clone(), value));
        }
        db.update_row(&stmt.table, row_id, &assignments)?;
        affected += 1;
    }
    Ok(affected)
}

fn execute_delete(db: &mut Database, stmt: &DeleteStmt) -> RelResult<usize> {
    let table = db.schema().table(&stmt.table)?.clone();
    let mut matches = Vec::new();
    for (row_id, row) in db.scan(&stmt.table)? {
        if filter_row(&table, row, stmt.where_clause.as_ref())? {
            matches.push(row_id);
        }
    }
    let affected = matches.len();
    for row_id in matches {
        db.delete_row(&stmt.table, row_id)?;
    }
    Ok(affected)
}

fn filter_row(
    table: &crate::schema::Table,
    row: &[Value],
    predicate: Option<&Expr>,
) -> RelResult<bool> {
    match predicate {
        None => Ok(true),
        Some(expr) => Ok(matches!(
            eval_on_row(expr, table, row)?,
            Value::Bool(true)
        )),
    }
}

/// Evaluate an expression where column references resolve against one
/// row of `table` (used by UPDATE/DELETE filters and CHECK constraints).
pub fn eval_on_row(
    expr: &Expr,
    table: &crate::schema::Table,
    row: &[Value],
) -> RelResult<Value> {
    let resolve = |cref: &ColumnRef| -> RelResult<Value> {
        if let Some(qualifier) = &cref.table {
            if qualifier != &table.name {
                return Err(RelError::Execution {
                    message: format!(
                        "unknown table qualifier {qualifier:?} (statement targets {:?})",
                        table.name
                    ),
                });
            }
        }
        let idx = table
            .column_index(&cref.column)
            .ok_or_else(|| RelError::NoSuchColumn {
                table: table.name.clone(),
                column: cref.column.clone(),
            })?;
        Ok(row[idx].clone())
    };
    eval(expr, &resolve)
}

/// Evaluate `expr` with a column resolver, applying SQL three-valued
/// logic: comparisons with NULL yield NULL; `AND`/`OR` follow Kleene
/// semantics; WHERE accepts only `TRUE`.
pub fn eval(expr: &Expr, resolve: &dyn Fn(&ColumnRef) -> RelResult<Value>) -> RelResult<Value> {
    match expr {
        Expr::Value(v) => Ok(v.clone()),
        Expr::Column(cref) => resolve(cref),
        Expr::Not(inner) => match eval(inner, resolve)? {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            Value::Null => Ok(Value::Null),
            other => Err(RelError::Execution {
                message: format!("NOT applied to non-boolean {other}"),
            }),
        },
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, resolve)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Binary { op, left, right } => {
            let l = eval(left, resolve)?;
            let r = eval(right, resolve)?;
            match op {
                BinOp::And => Ok(kleene_and(&l, &r)?),
                BinOp::Or => Ok(kleene_or(&l, &r)?),
                BinOp::Eq => Ok(tristate(l.sql_eq(&r))),
                BinOp::Ne => Ok(tristate(l.sql_eq(&r).map(|b| !b))),
                BinOp::Lt => Ok(tristate(l.sql_cmp(&r).map(|o| o.is_lt()))),
                BinOp::Le => Ok(tristate(l.sql_cmp(&r).map(|o| o.is_le()))),
                BinOp::Gt => Ok(tristate(l.sql_cmp(&r).map(|o| o.is_gt()))),
                BinOp::Ge => Ok(tristate(l.sql_cmp(&r).map(|o| o.is_ge()))),
            }
        }
    }
}

fn tristate(b: Option<bool>) -> Value {
    match b {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

fn kleene_and(l: &Value, r: &Value) -> RelResult<Value> {
    Ok(match (as_tri(l)?, as_tri(r)?) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        (Some(true), Some(true)) => Value::Bool(true),
        _ => Value::Null,
    })
}

fn kleene_or(l: &Value, r: &Value) -> RelResult<Value> {
    Ok(match (as_tri(l)?, as_tri(r)?) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ => Value::Null,
    })
}

fn as_tri(v: &Value) -> RelResult<Option<bool>> {
    match v {
        Value::Bool(b) => Ok(Some(*b)),
        Value::Null => Ok(None),
        other => Err(RelError::Execution {
            message: format!("boolean operator applied to {other}"),
        }),
    }
}

// ----------------------------------------------------------------------
// SELECT
// ----------------------------------------------------------------------

fn execute_select(db: &Database, stmt: &SelectStmt) -> RelResult<ResultSet> {
    // Bind FROM entries.
    struct Binding {
        name: String,              // alias or table name
        table: crate::schema::Table,
        rows: Vec<Vec<Value>>,
    }
    let mut bindings = Vec::new();
    for tref in &stmt.from {
        let table = db.schema().table(&tref.table)?.clone();
        let rows: Vec<Vec<Value>> = db.scan(&tref.table)?.map(|(_, r)| r.clone()).collect();
        let name = tref.binding().to_owned();
        if bindings.iter().any(|b: &Binding| b.name == name) {
            return Err(RelError::Execution {
                message: format!("duplicate table binding {name:?} in FROM"),
            });
        }
        bindings.push(Binding { name, table, rows });
    }
    if bindings.is_empty() {
        return Err(RelError::Execution {
            message: "SELECT requires at least one table".into(),
        });
    }

    // Expand projection.
    let mut out_columns: Vec<String> = Vec::new();
    let mut out_exprs: Vec<Expr> = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Star => {
                for b in &bindings {
                    for column in &b.table.columns {
                        out_columns.push(if bindings.len() > 1 {
                            format!("{}.{}", b.name, column.name)
                        } else {
                            column.name.clone()
                        });
                        out_exprs.push(Expr::Column(ColumnRef::qualified(
                            b.name.clone(),
                            column.name.clone(),
                        )));
                    }
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column(c) => c.column.clone(),
                    other => other.to_string(),
                });
                out_columns.push(name);
                out_exprs.push(expr.clone());
            }
        }
    }

    // Nested-loop join with conjunct pushdown: the WHERE clause is split
    // into AND-conjuncts, each applied at the shallowest join level where
    // all of its columns are bound. Join conditions thus prune partial
    // combinations instead of filtering the full cross product — the
    // difference between O(∏nᵢ) and realistic equi-join behaviour for
    // the plans the SPARQL translation emits.
    let raw_conjuncts = match &stmt.where_clause {
        Some(pred) => split_conjuncts(pred),
        None => Vec::new(),
    };

    // Greedy join order: start from the binding most constrained on its
    // own, then repeatedly add the binding connected to the chosen set by
    // the most conjuncts (tie: fewer rows). This puts link tables between
    // their endpoints instead of at the end, where their join conditions
    // could not prune anything.
    let order = join_order(&bindings.iter().map(|b| (&b.name, &b.table, b.rows.len())).collect::<Vec<_>>(), &raw_conjuncts)?;
    let ordered: Vec<(&str, &crate::schema::Table, &[Vec<Value>])> = order
        .iter()
        .map(|&i| {
            let b = &bindings[i];
            (b.name.as_str(), &b.table, b.rows.as_slice())
        })
        .collect();
    let mut conjuncts: Vec<(usize, Expr)> = Vec::new();
    {
        let level_scope: Vec<(&String, &crate::schema::Table)> = order
            .iter()
            .map(|&i| (&bindings[i].name, &bindings[i].table))
            .collect();
        for c in raw_conjuncts {
            let level = conjunct_level(&c, &level_scope)?;
            conjuncts.push((level, c));
        }
    }

    let mut result = ResultSet {
        columns: out_columns,
        rows: Vec::new(),
    };
    if bindings.iter().all(|b| !b.rows.is_empty()) {
        let mut current: Vec<(&str, &crate::schema::Table, &Vec<Value>)> = Vec::new();
        join_level(&ordered, &conjuncts, &out_exprs, &mut current, &mut result.rows)?;
    }

    if stmt.distinct {
        let mut seen = std::collections::BTreeSet::new();
        result.rows.retain(|row| {
            let key: Vec<crate::value::IndexKey> = row.iter().map(Value::index_key).collect();
            seen.insert(key)
        });
    }
    Ok(result)
}

// Which binding indices does a conjunct touch? (Unqualified ambiguous
// columns count every candidate.)
fn conjunct_bindings(
    expr: &Expr,
    bindings: &[(&String, &crate::schema::Table, usize)],
) -> Vec<usize> {
    fn walk(
        expr: &Expr,
        bindings: &[(&String, &crate::schema::Table, usize)],
        out: &mut Vec<usize>,
    ) {
        match expr {
            Expr::Value(_) => {}
            Expr::Column(cref) => match &cref.table {
                Some(qualifier) => {
                    if let Some(i) = bindings.iter().position(|(name, _, _)| *name == qualifier) {
                        out.push(i);
                    }
                }
                None => {
                    for (i, (_, table, _)) in bindings.iter().enumerate() {
                        if table.column_index(&cref.column).is_some() {
                            out.push(i);
                        }
                    }
                }
            },
            Expr::Binary { left, right, .. } => {
                walk(left, bindings, out);
                walk(right, bindings, out);
            }
            Expr::Not(inner) => walk(inner, bindings, out),
            Expr::IsNull { expr, .. } => walk(expr, bindings, out),
        }
    }
    let mut out = Vec::new();
    walk(expr, bindings, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

// Pick an evaluation order (permutation of binding indices) that lets
// join conjuncts apply as early as possible.
fn join_order(
    bindings: &[(&String, &crate::schema::Table, usize)],
    conjuncts: &[Expr],
) -> RelResult<Vec<usize>> {
    let touched: Vec<Vec<usize>> = conjuncts
        .iter()
        .map(|c| conjunct_bindings(c, bindings))
        .collect();
    let n = bindings.len();
    let mut chosen: Vec<usize> = Vec::with_capacity(n);
    let mut in_chosen = vec![false; n];
    while chosen.len() < n {
        let mut best: Option<(usize, usize, usize)> = None; // (score, -rows sort, idx)
        for i in 0..n {
            if in_chosen[i] {
                continue;
            }
            // Conjuncts that become fully bound by adding i.
            let score = touched
                .iter()
                .filter(|t| {
                    t.contains(&i) && t.iter().all(|&b| b == i || in_chosen[b])
                })
                .count();
            let rows = bindings[i].2;
            let candidate = (score, usize::MAX - rows, usize::MAX - i); // ties: original order
            if best.is_none_or(|b| candidate > b) {
                best = Some(candidate);
            }
        }
        let (_, _, inv) = best.expect("n > chosen");
        let idx = usize::MAX - inv;
        in_chosen[idx] = true;
        chosen.push(idx);
    }
    Ok(chosen)
}

// Split an expression into its top-level AND conjuncts.
fn split_conjuncts(expr: &Expr) -> Vec<Expr> {
    match expr {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            let mut out = split_conjuncts(left);
            out.extend(split_conjuncts(right));
            out
        }
        other => vec![other.clone()],
    }
}

// The shallowest join level (binding index) at which every column of
// `expr` is bound. Qualified refs resolve to their binding; unqualified
// refs to the unique binding declaring the column (ambiguity is reported
// at eval time — use the deepest candidate to stay conservative).
fn conjunct_level(
    expr: &Expr,
    bindings: &[(&String, &crate::schema::Table)],
) -> RelResult<usize> {
    fn walk(
        expr: &Expr,
        bindings: &[(&String, &crate::schema::Table)],
        level: &mut usize,
    ) -> RelResult<()> {
        match expr {
            Expr::Value(_) => Ok(()),
            Expr::Column(cref) => {
                let idx = match &cref.table {
                    Some(qualifier) => bindings
                        .iter()
                        .position(|(name, _)| *name == qualifier)
                        .ok_or_else(|| RelError::Execution {
                            message: format!("unknown table binding {qualifier:?}"),
                        })?,
                    None => {
                        let mut candidates = bindings
                            .iter()
                            .enumerate()
                            .filter(|(_, (_, t))| t.column_index(&cref.column).is_some())
                            .map(|(i, _)| i);
                        let first = candidates.next().ok_or_else(|| RelError::Execution {
                            message: format!("unknown column {:?}", cref.column),
                        })?;
                        // Ambiguous bare columns: defer to eval's error by
                        // binding at the deepest candidate.
                        candidates.next_back().unwrap_or(first)
                    }
                };
                *level = (*level).max(idx);
                Ok(())
            }
            Expr::Binary { left, right, .. } => {
                walk(left, bindings, level)?;
                walk(right, bindings, level)
            }
            Expr::Not(inner) => walk(inner, bindings, level),
            Expr::IsNull { expr, .. } => walk(expr, bindings, level),
        }
    }
    let mut level = 0;
    walk(expr, bindings, &mut level)?;
    Ok(level)
}

// Recursive pruned join: bind one table per level, applying every
// conjunct whose columns just became available.
fn join_level<'a>(
    bindings: &[(&'a str, &'a crate::schema::Table, &'a [Vec<Value>])],
    conjuncts: &[(usize, Expr)],
    out_exprs: &[Expr],
    current: &mut Vec<(&'a str, &'a crate::schema::Table, &'a Vec<Value>)>,
    out: &mut Vec<Vec<Value>>,
) -> RelResult<()> {
    let depth = current.len();
    if depth == bindings.len() {
        let resolve = |cref: &ColumnRef| -> RelResult<Value> { resolve_multi(current, cref) };
        let mut row = Vec::with_capacity(out_exprs.len());
        for expr in out_exprs {
            row.push(eval(expr, &resolve)?);
        }
        out.push(row);
        return Ok(());
    }
    let (name, table, rows) = bindings[depth];
    'rows: for r in rows {
        current.push((name, table, r));
        let resolve = |cref: &ColumnRef| -> RelResult<Value> { resolve_multi(current, cref) };
        for (level, conjunct) in conjuncts {
            if *level == depth && !matches!(eval(conjunct, &resolve)?, Value::Bool(true)) {
                current.pop();
                continue 'rows;
            }
        }
        join_level(bindings, conjuncts, out_exprs, current, out)?;
        current.pop();
    }
    Ok(())
}

fn resolve_multi(
    scope: &[(&str, &crate::schema::Table, &Vec<Value>)],
    cref: &ColumnRef,
) -> RelResult<Value> {
    match &cref.table {
        Some(qualifier) => {
            for (name, table, row) in scope {
                if name == qualifier {
                    let idx = table
                        .column_index(&cref.column)
                        .ok_or_else(|| RelError::NoSuchColumn {
                            table: (*name).to_owned(),
                            column: cref.column.clone(),
                        })?;
                    return Ok(row[idx].clone());
                }
            }
            Err(RelError::Execution {
                message: format!("unknown table binding {qualifier:?}"),
            })
        }
        None => {
            let mut found: Option<Value> = None;
            for (name, table, row) in scope {
                if let Some(idx) = table.column_index(&cref.column) {
                    if found.is_some() {
                        return Err(RelError::Execution {
                            message: format!(
                                "ambiguous column {:?} (qualify with a table binding; also in {name:?})",
                                cref.column
                            ),
                        });
                    }
                    found = Some(row[idx].clone());
                }
            }
            found.ok_or_else(|| RelError::Execution {
                message: format!("unknown column {:?}", cref.column),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema, Table};
    use crate::value::SqlType;

    fn db() -> Database {
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("team")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("name", SqlType::Varchar))
                    .column(Column::new("code", SqlType::Varchar))
                    .primary_key(&["id"])
                    .build(),
            )
            .unwrap();
        schema
            .add_table(
                Table::builder("author")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("lastname", SqlType::Varchar).not_null())
                    .column(Column::new("email", SqlType::Varchar))
                    .column(Column::new("team", SqlType::Integer))
                    .primary_key(&["id"])
                    .foreign_key("team", "team", "id")
                    .build(),
            )
            .unwrap();
        let mut db = Database::new(schema).unwrap();
        execute_sql(&mut db, "INSERT INTO team (id, name, code) VALUES (5, 'Software Engineering', 'SEAL');").unwrap();
        execute_sql(&mut db, "INSERT INTO team (id, name, code) VALUES (4, 'Database Technology', 'DBTG');").unwrap();
        execute_sql(
            &mut db,
            "INSERT INTO author (id, lastname, email, team) VALUES (6, 'Hert', 'hert@ifi.uzh.ch', 5);",
        )
        .unwrap();
        execute_sql(
            &mut db,
            "INSERT INTO author (id, lastname, team) VALUES (7, 'Reif', 5);",
        )
        .unwrap();
        db
    }

    #[test]
    fn insert_then_select_star() {
        let mut d = db();
        let out = execute_sql(&mut d, "SELECT * FROM team;").unwrap();
        let rows = out.rows().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows.columns, vec!["id", "name", "code"]);
    }

    #[test]
    fn select_with_where() {
        let mut d = db();
        let out = execute_sql(&mut d, "SELECT lastname FROM author WHERE team = 5 AND email IS NOT NULL;")
            .unwrap();
        let rows = out.rows().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows.rows[0][0], Value::text("Hert"));
    }

    #[test]
    fn join_via_cross_product() {
        let mut d = db();
        let out = execute_sql(
            &mut d,
            "SELECT a.lastname, t.code FROM author a, team t WHERE a.team = t.id;",
        )
        .unwrap();
        let rows = out.rows().unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.rows.iter().all(|r| r[1] == Value::text("SEAL")));
    }

    #[test]
    fn update_with_where_matches_listing_18() {
        let mut d = db();
        let out = execute_sql(
            &mut d,
            "UPDATE author SET email = NULL WHERE id = 6 AND email = 'hert@ifi.uzh.ch';",
        )
        .unwrap();
        assert_eq!(out.affected(), 1);
        let check = execute_sql(&mut d, "SELECT email FROM author WHERE id = 6;").unwrap();
        assert_eq!(check.rows().unwrap().rows[0][0], Value::Null);
    }

    #[test]
    fn update_where_null_comparison_matches_nothing() {
        let mut d = db();
        // email of author 7 is NULL; NULL = 'x' is unknown, not true.
        let out = execute_sql(&mut d, "UPDATE author SET lastname = 'X' WHERE email = 'x';")
            .unwrap();
        assert_eq!(out.affected(), 0);
    }

    #[test]
    fn delete_with_where() {
        let mut d = db();
        let out = execute_sql(&mut d, "DELETE FROM author WHERE id = 7;").unwrap();
        assert_eq!(out.affected(), 1);
        assert_eq!(d.row_count("author").unwrap(), 1);
    }

    #[test]
    fn delete_restricted_by_fk() {
        let mut d = db();
        let err = execute_sql(&mut d, "DELETE FROM team WHERE id = 5;").unwrap_err();
        assert!(matches!(err, RelError::RestrictViolation { .. }));
    }

    #[test]
    fn distinct_dedups() {
        let mut d = db();
        let out = execute_sql(&mut d, "SELECT DISTINCT team FROM author;").unwrap();
        assert_eq!(out.rows().unwrap().len(), 1);
        let out = execute_sql(&mut d, "SELECT team FROM author;").unwrap();
        assert_eq!(out.rows().unwrap().len(), 2);
    }

    #[test]
    fn ambiguous_bare_column_rejected() {
        let mut d = db();
        let err = execute_sql(&mut d, "SELECT id FROM author a, team t WHERE a.team = t.id;")
            .unwrap_err();
        assert!(matches!(err, RelError::Execution { .. }));
    }

    #[test]
    fn unknown_column_rejected() {
        let mut d = db();
        assert!(execute_sql(&mut d, "SELECT bogus FROM team;").is_err());
    }

    #[test]
    fn duplicate_binding_rejected() {
        let mut d = db();
        assert!(execute_sql(&mut d, "SELECT * FROM team t, author t;").is_err());
    }

    #[test]
    fn empty_table_join_is_empty() {
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("a")
                    .column(Column::new("id", SqlType::Integer))
                    .primary_key(&["id"])
                    .build(),
            )
            .unwrap();
        schema
            .add_table(
                Table::builder("b")
                    .column(Column::new("id", SqlType::Integer))
                    .primary_key(&["id"])
                    .build(),
            )
            .unwrap();
        let mut d = Database::new(schema).unwrap();
        execute_sql(&mut d, "INSERT INTO a (id) VALUES (1);").unwrap();
        let out = execute_sql(&mut d, "SELECT * FROM a, b;").unwrap();
        assert!(out.rows().unwrap().is_empty());
    }

    #[test]
    fn value_accessor() {
        let mut d = db();
        let out = execute_sql(&mut d, "SELECT id, lastname FROM author WHERE id = 6;").unwrap();
        let rs = out.rows().unwrap();
        assert_eq!(rs.value(0, "lastname"), Some(&Value::text("Hert")));
        assert_eq!(rs.value(0, "bogus"), None);
    }

    #[test]
    fn update_assignment_from_column() {
        let mut d = db();
        execute_sql(&mut d, "UPDATE team SET name = code WHERE id = 4;").unwrap();
        let out = execute_sql(&mut d, "SELECT name FROM team WHERE id = 4;").unwrap();
        assert_eq!(out.rows().unwrap().rows[0][0], Value::text("DBTG"));
    }
}

#[cfg(test)]
mod join_order_tests {
    use super::*;
    use crate::schema::{Column, Schema, Table};
    use crate::value::SqlType;

    // Triangle schema: link between a and b; both FROM orders must give
    // identical results regardless of how the user listed the tables.
    fn db() -> Database {
        let mut schema = Schema::new();
        for name in ["a", "b"] {
            schema
                .add_table(
                    Table::builder(name)
                        .column(Column::new("id", SqlType::Integer).not_null())
                        .column(Column::new("v", SqlType::Varchar))
                        .primary_key(&["id"])
                        .build(),
                )
                .unwrap();
        }
        schema
            .add_table(
                Table::builder("link")
                    .column(Column::new("id", SqlType::Integer).not_null().auto_increment())
                    .column(Column::new("a", SqlType::Integer).not_null())
                    .column(Column::new("b", SqlType::Integer).not_null())
                    .primary_key(&["id"])
                    .foreign_key("a", "a", "id")
                    .foreign_key("b", "b", "id")
                    .build(),
            )
            .unwrap();
        let mut db = Database::new(schema).unwrap();
        for i in 1..=20i64 {
            execute_sql(&mut db, &format!("INSERT INTO a (id, v) VALUES ({i}, 'a{i}');")).unwrap();
            execute_sql(&mut db, &format!("INSERT INTO b (id, v) VALUES ({i}, 'b{i}');")).unwrap();
        }
        for i in 1..=20i64 {
            execute_sql(
                &mut db,
                &format!("INSERT INTO link (a, b) VALUES ({i}, {});", 21 - i),
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn results_independent_of_from_order() {
        let mut d = db();
        let q1 = "SELECT x.v AS av, y.v AS bv FROM a x, b y, link l \
                  WHERE l.a = x.id AND l.b = y.id;";
        let q2 = "SELECT x.v AS av, y.v AS bv FROM link l, b y, a x \
                  WHERE l.a = x.id AND l.b = y.id;";
        let mut r1 = execute_sql(&mut d, q1).unwrap().rows().unwrap().rows.clone();
        let mut r2 = execute_sql(&mut d, q2).unwrap().rows().unwrap().rows.clone();
        let key = |r: &Vec<Value>| r.iter().map(Value::index_key).collect::<Vec<_>>();
        r1.sort_by_key(key);
        r2.sort_by_key(key);
        assert_eq!(r1, r2);
        assert_eq!(r1.len(), 20);
    }

    #[test]
    fn pushdown_preserves_three_valued_semantics() {
        let mut d = db();
        execute_sql(&mut d, "INSERT INTO a (id) VALUES (99);").unwrap(); // v NULL
        // NULL v never satisfies v = 'a1' nor v <> 'a1'.
        let eq = execute_sql(&mut d, "SELECT id FROM a WHERE v = 'a1';").unwrap();
        assert_eq!(eq.rows().unwrap().len(), 1);
        let ne = execute_sql(&mut d, "SELECT id FROM a WHERE v <> 'a1';").unwrap();
        assert_eq!(ne.rows().unwrap().len(), 19);
    }

    #[test]
    fn disjunctive_where_not_split() {
        // OR stays one conjunct applied once all tables are bound.
        let mut d = db();
        let q = "SELECT x.id FROM a x, b y WHERE x.id = y.id AND (x.v = 'a1' OR y.v = 'b2');";
        let out = execute_sql(&mut d, q).unwrap();
        assert_eq!(out.rows().unwrap().len(), 2);
    }
}
