//! SQL statement execution against a [`Database`].
//!
//! SELECT runs through a small planner over the FROM list — the plan
//! shape the SPARQL-to-SQL translation emits (one table reference per
//! triple pattern, join conditions as WHERE equality predicates). WHERE
//! conjuncts are classified into **candidate restrictions** (`column =
//! constant` answered from a storage index), **equi-join keys**
//! (executed as hash joins or index nested loops over *borrowed* rows —
//! no upfront table clones), and **residual filters** (pushed down to
//! the shallowest join level where their columns are bound). The greedy
//! join ordering of the original executor is kept as the complete
//! fallback for non-equi plans; [`execute_select_reference`] preserves
//! that executor for differential testing. On valid statements, results
//! are independent of the chosen order and identical between the two
//! executors; unknown or ambiguous column references are rejected up
//! front (the reference executor only notices them for row combinations
//! it happens to enumerate). Data-dependent *evaluation* errors — e.g.
//! `NOT` applied to a non-boolean column — remain data-dependent, as in
//! the reference: whether one surfaces depends on which rows the plan
//! enumerates, so an index restriction that empties a candidate set can
//! suppress one just like an empty table always has. Making those
//! deterministic would take a static type checker over predicates.
//!
//! UPDATE and DELETE collect matching row ids through the same
//! index-probe machinery, without cloning non-matching rows.

use crate::database::Database;
use crate::error::{RelError, RelResult};
use crate::sql::ast::{
    BinOp, BulkUpdateStmt, ColumnRef, DeleteStmt, Expr, InsertStmt, SelectItem, SelectStmt,
    Statement, UpdateStmt,
};
use crate::value::{IndexKey, Value};
use std::collections::HashMap;

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// Rows affected by INSERT/UPDATE/DELETE.
    Affected(usize),
    /// Result set of a SELECT.
    Rows(ResultSet),
}

impl ExecOutcome {
    /// Rows affected (0 for SELECT).
    pub fn affected(&self) -> usize {
        match self {
            ExecOutcome::Affected(n) => *n,
            ExecOutcome::Rows(_) => 0,
        }
    }

    /// The result set, if this was a SELECT.
    pub fn rows(&self) -> Option<&ResultSet> {
        match self {
            ExecOutcome::Rows(rs) => Some(rs),
            ExecOutcome::Affected(_) => None,
        }
    }
}

/// A SELECT result: column names and rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Output column names (aliases where given).
    pub columns: Vec<String>,
    /// Row values, parallel to `columns`.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Value at `(row, column_name)`, if present.
    pub fn value(&self, row: usize, column: &str) -> Option<&Value> {
        let idx = self.columns.iter().position(|c| c == column)?;
        self.rows.get(row)?.get(idx)
    }
}

/// Execute one statement.
pub fn execute(db: &mut Database, stmt: &Statement) -> RelResult<ExecOutcome> {
    match stmt {
        Statement::Insert(s) => execute_insert(db, s).map(ExecOutcome::Affected),
        Statement::Update(s) => execute_update(db, s).map(ExecOutcome::Affected),
        Statement::BulkUpdate(s) => execute_bulk_update(db, s).map(ExecOutcome::Affected),
        Statement::Delete(s) => execute_delete(db, s).map(ExecOutcome::Affected),
        Statement::Select(s) => execute_select(db, s).map(ExecOutcome::Rows),
    }
}

/// Execute a SQL string (parses then executes).
pub fn execute_sql(db: &mut Database, sql: &str) -> RelResult<ExecOutcome> {
    let stmt = crate::sql::parser::parse(sql)?;
    execute(db, &stmt)
}

fn execute_insert(db: &mut Database, stmt: &InsertStmt) -> RelResult<usize> {
    db.insert_many(&stmt.table, &stmt.columns, &stmt.rows)
}

fn execute_update(db: &mut Database, stmt: &UpdateStmt) -> RelResult<usize> {
    let table = db.schema().table(&stmt.table)?.clone();
    let matches = collect_matching_row_ids(db, &stmt.table, &table, stmt.where_clause.as_ref())?;
    let mut updates = Vec::with_capacity(matches.len());
    for row_id in matches {
        // One clone per *mutated* row: assignments evaluate against the
        // pre-assignment values while the engine rebuilds the row.
        let row = db
            .row(&stmt.table, row_id)?
            .expect("collected id is live")
            .clone();
        let mut assignments = Vec::with_capacity(stmt.assignments.len());
        for (column, expr) in &stmt.assignments {
            let value = eval_on_row(expr, &table, &row)?;
            assignments.push((column.clone(), value));
        }
        updates.push((row_id, assignments));
    }
    db.update_rows(&stmt.table, updates)
}

// The grouped UPDATE: every row tuple's key columns are matched (with
// SQL equality) against the *pre-statement* state — the same snapshot
// semantics as a classic UPDATE's WHERE clause — then the matched rows
// are updated in tuple order through one bulk engine pass.
fn execute_bulk_update(db: &mut Database, stmt: &BulkUpdateStmt) -> RelResult<usize> {
    let table = db.schema().table(&stmt.table)?.clone();
    let mut key_indices = Vec::with_capacity(stmt.key_columns.len());
    for column in stmt.key_columns.iter().chain(&stmt.set_columns) {
        let idx = table
            .column_index(column)
            .ok_or_else(|| RelError::NoSuchColumn {
                table: stmt.table.clone(),
                column: column.clone(),
            })?;
        if key_indices.len() < stmt.key_columns.len() {
            key_indices.push(idx);
        }
    }
    let mut updates = Vec::with_capacity(stmt.rows.len());
    for brow in &stmt.rows {
        if brow.key.len() != stmt.key_columns.len() || brow.set.len() != stmt.set_columns.len() {
            return Err(RelError::Execution {
                message: format!(
                    "bulk UPDATE on {:?}: row width does not match key/set columns",
                    stmt.table
                ),
            });
        }
        let ids =
            key_equality_matches(db, &stmt.table, &stmt.key_columns, &key_indices, &brow.key)?;
        for row_id in ids {
            let assignments: Vec<(String, Value)> = stmt
                .set_columns
                .iter()
                .cloned()
                .zip(brow.set.iter().cloned())
                .collect();
            updates.push((row_id, assignments));
        }
    }
    db.update_rows(&stmt.table, updates)
}

// Row ids whose `key_columns` values all SQL-equal `key_values`,
// answered from the best indexed key column (the translator puts the
// primary key first) with a scan fallback.
fn key_equality_matches(
    db: &Database,
    table_name: &str,
    key_columns: &[String],
    key_indices: &[usize],
    key_values: &[Value],
) -> RelResult<Vec<crate::storage::RowId>> {
    let mut candidates: Option<Vec<crate::storage::RowId>> = None;
    for (column, value) in key_columns.iter().zip(key_values) {
        if let Some(ids) = db.index_probe(table_name, column, value)? {
            candidates = Some(ids);
            break;
        }
    }
    let matches_key = |row: &[Value]| {
        key_indices
            .iter()
            .zip(key_values)
            .all(|(&idx, value)| row[idx].sql_eq(value) == Some(true))
    };
    let mut out = Vec::new();
    match candidates {
        Some(ids) => {
            for row_id in ids {
                let row = db.row(table_name, row_id)?.expect("probe id is live");
                if matches_key(row) {
                    out.push(row_id);
                }
            }
        }
        None => {
            for (row_id, row) in db.scan(table_name)? {
                if matches_key(row) {
                    out.push(row_id);
                }
            }
        }
    }
    Ok(out)
}

fn execute_delete(db: &mut Database, stmt: &DeleteStmt) -> RelResult<usize> {
    let table = db.schema().table(&stmt.table)?.clone();
    let matches = collect_matching_row_ids(db, &stmt.table, &table, stmt.where_clause.as_ref())?;
    db.delete_rows(&stmt.table, &matches)
}

// Row ids matching a single-table WHERE, collected without cloning any
// row (mutation statements materialize ids first because mutating
// invalidates the scan). When a `column = constant` conjunct hits an
// index, only the indexed candidates are filtered instead of the whole
// table — the translated DELETE/UPDATE shape is `pk = … AND …`, so
// mutations become O(matches) rather than O(table).
fn collect_matching_row_ids(
    db: &Database,
    table_name: &str,
    table: &crate::schema::Table,
    predicate: Option<&Expr>,
) -> RelResult<Vec<crate::storage::RowId>> {
    let mut candidates: Option<Vec<crate::storage::RowId>> = None;
    if let Some(predicate) = predicate {
        // Reject bad column references up front: with an index-probed
        // candidate set, rows that would have evaluated (and errored on)
        // an unknown column may never be visited, which would make the
        // error appear and disappear with the data.
        validate_single_table_refs(predicate, table)?;
        for conjunct in split_conjuncts_ref(predicate) {
            if let Some((column, value)) = const_eq_column(conjunct, &table.name) {
                if let Some(ids) = db.index_probe(table_name, column, value)? {
                    candidates = Some(ids);
                    break;
                }
            }
            // `column IN (constants)` — the batched delete shape: the
            // candidate set is the union of one probe per constant. Any
            // unanswerable probe abandons the union (scan fallback).
            if let Some((column, values)) = const_in_column(conjunct, &table.name) {
                let mut union = Vec::new();
                let mut complete = true;
                for value in values {
                    match db.index_probe(table_name, column, value)? {
                        Some(ids) => union.extend(ids),
                        None => {
                            complete = false;
                            break;
                        }
                    }
                }
                if complete {
                    union.sort_unstable();
                    union.dedup();
                    candidates = Some(union);
                    break;
                }
            }
        }
    }
    let mut out = Vec::new();
    match candidates {
        Some(ids) => {
            for row_id in ids {
                let row = db.row(table_name, row_id)?.expect("probe id is live");
                if filter_row(table, row, predicate)? {
                    out.push(row_id);
                }
            }
        }
        None => {
            for (row_id, row) in db.scan(table_name)? {
                if filter_row(table, row, predicate)? {
                    out.push(row_id);
                }
            }
        }
    }
    Ok(out)
}

// Check every column reference of a single-table predicate against the
// table, with the same errors `eval_on_row`'s resolver raises — but
// unconditionally, not only for rows that happen to be visited.
fn validate_single_table_refs(expr: &Expr, table: &crate::schema::Table) -> RelResult<()> {
    match expr {
        Expr::Value(_) => Ok(()),
        Expr::Column(cref) => {
            if let Some(qualifier) = &cref.table {
                if qualifier != &table.name {
                    return Err(RelError::Execution {
                        message: format!(
                            "unknown table qualifier {qualifier:?} (statement targets {:?})",
                            table.name
                        ),
                    });
                }
            }
            if table.column_index(&cref.column).is_none() {
                return Err(RelError::NoSuchColumn {
                    table: table.name.clone(),
                    column: cref.column.clone(),
                });
            }
            Ok(())
        }
        Expr::Binary { left, right, .. } => {
            validate_single_table_refs(left, table)?;
            validate_single_table_refs(right, table)
        }
        Expr::Not(inner) => validate_single_table_refs(inner, table),
        Expr::IsNull { expr, .. } => validate_single_table_refs(expr, table),
        Expr::InList { expr, list, .. } => {
            validate_single_table_refs(expr, table)?;
            list.iter()
                .try_for_each(|item| validate_single_table_refs(item, table))
        }
    }
}

// Check every column reference of an expression against a multi-binding
// scope, with the same errors `resolve_multi` raises during evaluation —
// but unconditionally, not only for row combinations that get
// enumerated.
fn validate_scope_refs(expr: &Expr, scope: &[(&String, &crate::schema::Table)]) -> RelResult<()> {
    match expr {
        Expr::Value(_) => Ok(()),
        Expr::Column(cref) => match &cref.table {
            Some(qualifier) => {
                let Some((name, table)) = scope.iter().find(|(name, _)| *name == qualifier) else {
                    return Err(RelError::Execution {
                        message: format!("unknown table binding {qualifier:?}"),
                    });
                };
                if table.column_index(&cref.column).is_none() {
                    return Err(RelError::NoSuchColumn {
                        table: (*name).clone(),
                        column: cref.column.clone(),
                    });
                }
                Ok(())
            }
            None => {
                let mut declaring = scope
                    .iter()
                    .filter(|(_, table)| table.column_index(&cref.column).is_some());
                let Some(_first) = declaring.next() else {
                    return Err(RelError::Execution {
                        message: format!("unknown column {:?}", cref.column),
                    });
                };
                if let Some((second_name, _)) = declaring.next() {
                    return Err(RelError::Execution {
                        message: format!(
                            "ambiguous column {:?} (qualify with a table binding; also in {:?})",
                            cref.column, second_name
                        ),
                    });
                }
                Ok(())
            }
        },
        Expr::Binary { left, right, .. } => {
            validate_scope_refs(left, scope)?;
            validate_scope_refs(right, scope)
        }
        Expr::Not(inner) => validate_scope_refs(inner, scope),
        Expr::IsNull { expr, .. } => validate_scope_refs(expr, scope),
        Expr::InList { expr, list, .. } => {
            validate_scope_refs(expr, scope)?;
            list.iter()
                .try_for_each(|item| validate_scope_refs(item, scope))
        }
    }
}

// `column = constant` (either side), with the column either unqualified
// or qualified by `binding`.
fn const_eq_column<'e>(expr: &'e Expr, binding: &str) -> Option<(&'e str, &'e Value)> {
    let (cref, value) = const_eq_ref(expr)?;
    match &cref.table {
        Some(qualifier) if qualifier != binding => None,
        _ => Some((cref.column.as_str(), value)),
    }
}

// `column IN (constants)` with every list item a literal, the column
// unqualified or qualified by `binding`.
fn const_in_column<'e>(expr: &'e Expr, binding: &str) -> Option<(&'e str, Vec<&'e Value>)> {
    let Expr::InList {
        expr,
        list,
        negated: false,
    } = expr
    else {
        return None;
    };
    let Expr::Column(cref) = expr.as_ref() else {
        return None;
    };
    if matches!(&cref.table, Some(qualifier) if qualifier != binding) {
        return None;
    }
    let mut values = Vec::with_capacity(list.len());
    for item in list {
        let Expr::Value(v) = item else { return None };
        values.push(v);
    }
    Some((cref.column.as_str(), values))
}

// The raw `column = constant` shape (either side), leaving binding
// resolution to the caller.
fn const_eq_ref(expr: &Expr) -> Option<(&ColumnRef, &Value)> {
    let Expr::Binary {
        op: BinOp::Eq,
        left,
        right,
    } = expr
    else {
        return None;
    };
    match (left.as_ref(), right.as_ref()) {
        (Expr::Column(c), Expr::Value(v)) | (Expr::Value(v), Expr::Column(c)) => Some((c, v)),
        _ => None,
    }
}

fn filter_row(
    table: &crate::schema::Table,
    row: &[Value],
    predicate: Option<&Expr>,
) -> RelResult<bool> {
    match predicate {
        None => Ok(true),
        Some(expr) => Ok(matches!(eval_on_row(expr, table, row)?, Value::Bool(true))),
    }
}

/// Evaluate an expression where column references resolve against one
/// row of `table` (used by UPDATE/DELETE filters and CHECK constraints).
pub fn eval_on_row(expr: &Expr, table: &crate::schema::Table, row: &[Value]) -> RelResult<Value> {
    let resolve = |cref: &ColumnRef| -> RelResult<Value> {
        if let Some(qualifier) = &cref.table {
            if qualifier != &table.name {
                return Err(RelError::Execution {
                    message: format!(
                        "unknown table qualifier {qualifier:?} (statement targets {:?})",
                        table.name
                    ),
                });
            }
        }
        let idx = table
            .column_index(&cref.column)
            .ok_or_else(|| RelError::NoSuchColumn {
                table: table.name.clone(),
                column: cref.column.clone(),
            })?;
        Ok(row[idx])
    };
    eval(expr, &resolve)
}

/// Evaluate `expr` with a column resolver, applying SQL three-valued
/// logic: comparisons with NULL yield NULL; `AND`/`OR` follow Kleene
/// semantics; WHERE accepts only `TRUE`.
pub fn eval(expr: &Expr, resolve: &dyn Fn(&ColumnRef) -> RelResult<Value>) -> RelResult<Value> {
    match expr {
        Expr::Value(v) => Ok(*v),
        Expr::Column(cref) => resolve(cref),
        Expr::Not(inner) => match eval(inner, resolve)? {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            Value::Null => Ok(Value::Null),
            other => Err(RelError::Execution {
                message: format!("NOT applied to non-boolean {other}"),
            }),
        },
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, resolve)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        // `x IN (a, b, …)` ≡ `x = a OR x = b OR …` with SQL three-valued
        // logic: a NULL comparison anywhere makes a non-match NULL.
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, resolve)?;
            let mut saw_null = false;
            for item in list {
                let w = eval(item, resolve)?;
                match v.sql_eq(&w) {
                    Some(true) => return Ok(Value::Bool(!negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            Ok(if saw_null {
                Value::Null
            } else {
                Value::Bool(*negated)
            })
        }
        Expr::Binary { op, left, right } => {
            let l = eval(left, resolve)?;
            let r = eval(right, resolve)?;
            match op {
                BinOp::And => Ok(kleene_and(&l, &r)?),
                BinOp::Or => Ok(kleene_or(&l, &r)?),
                BinOp::Eq => Ok(tristate(l.sql_eq(&r))),
                BinOp::Ne => Ok(tristate(l.sql_eq(&r).map(|b| !b))),
                BinOp::Lt => Ok(tristate(l.sql_cmp(&r).map(|o| o.is_lt()))),
                BinOp::Le => Ok(tristate(l.sql_cmp(&r).map(|o| o.is_le()))),
                BinOp::Gt => Ok(tristate(l.sql_cmp(&r).map(|o| o.is_gt()))),
                BinOp::Ge => Ok(tristate(l.sql_cmp(&r).map(|o| o.is_ge()))),
            }
        }
    }
}

fn tristate(b: Option<bool>) -> Value {
    match b {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

fn kleene_and(l: &Value, r: &Value) -> RelResult<Value> {
    Ok(match (as_tri(l)?, as_tri(r)?) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        (Some(true), Some(true)) => Value::Bool(true),
        _ => Value::Null,
    })
}

fn kleene_or(l: &Value, r: &Value) -> RelResult<Value> {
    Ok(match (as_tri(l)?, as_tri(r)?) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ => Value::Null,
    })
}

fn as_tri(v: &Value) -> RelResult<Option<bool>> {
    match v {
        Value::Bool(b) => Ok(Some(*b)),
        Value::Null => Ok(None),
        other => Err(RelError::Execution {
            message: format!("boolean operator applied to {other}"),
        }),
    }
}

// ----------------------------------------------------------------------
// SELECT: plan, then execute
// ----------------------------------------------------------------------
//
// The planner replaces the seed's clone-everything pruned nested loop.
// Rows are *borrowed* from storage (no upfront table clones); WHERE
// conjuncts are classified into
//
//   * candidate restrictions — `column = constant` answered from a
//     storage index, shrinking a binding's scan to the matching rows;
//   * equi-join keys — `a.x = b.y` between two bindings over
//     hash-compatible column types, executed as a hash join (build over
//     the inner binding's candidates) or an index nested loop (probe
//     the storage index per outer row);
//   * residual filters — everything else, applied at the shallowest
//     join level where their columns are bound (the seed's pushdown).
//
// The seed's greedy join ordering is kept, both to drive which side of
// each equi-join becomes the build side and as the complete fallback
// plan for non-equi queries. Enumeration order is row-id order at every
// level, so results are byte-identical to the reference executor.

/// Execute a SELECT through the planner (callers holding a parsed
/// statement skip the `Statement` wrapper — and its clone — entirely).
pub fn execute_select(db: &Database, stmt: &SelectStmt) -> RelResult<ResultSet> {
    // Bind FROM entries over borrowed rows.
    struct Binding<'a> {
        name: String, // alias or table name
        table_name: String,
        table: &'a crate::schema::Table,
        rows: Vec<&'a Vec<Value>>,
        restricted: bool,
    }
    let raw_conjuncts = match &stmt.where_clause {
        Some(pred) => split_conjuncts(pred),
        None => Vec::new(),
    };
    let mut bindings: Vec<Binding> = Vec::new();
    for tref in &stmt.from {
        let table = db.schema().table(&tref.table)?;
        let name = tref.binding().to_owned();
        if bindings.iter().any(|b| b.name == name) {
            return Err(RelError::Execution {
                message: format!("duplicate table binding {name:?} in FROM"),
            });
        }
        bindings.push(Binding {
            name,
            table_name: tref.table.clone(),
            table,
            rows: Vec::new(),
            restricted: false,
        });
    }
    if bindings.is_empty() {
        return Err(RelError::Execution {
            message: "SELECT requires at least one table".into(),
        });
    }
    let owned_scope: Vec<(String, &crate::schema::Table)> =
        bindings.iter().map(|b| (b.name.clone(), b.table)).collect();
    let resolution_scope: Vec<(&String, &crate::schema::Table)> =
        owned_scope.iter().map(|(n, t)| (n, *t)).collect();
    // Reject unknown/ambiguous column references up front, with the
    // same errors `resolve_multi` raises during evaluation. The
    // reference executor only hits them for row combinations it
    // actually enumerates; an index restriction can empty a binding and
    // skip that enumeration entirely, so without this check the errors
    // would appear and disappear with the data (same policy as
    // `validate_single_table_refs` on the mutation paths).
    for conjunct in &raw_conjuncts {
        validate_scope_refs(conjunct, &resolution_scope)?;
    }
    for item in &stmt.items {
        if let SelectItem::Expr { expr, .. } = item {
            validate_scope_refs(expr, &resolution_scope)?;
        }
    }
    // Candidate restriction: a `column = constant` conjunct answered
    // from a storage index replaces the binding's full scan. The column
    // reference must resolve *uniquely* to the binding (same rules as
    // equi-join classification, via `resolve_in_scope`).
    // Row counts *before* restriction: the greedy order must tie-break
    // on the same numbers as the reference executor, or output order
    // would depend on which indexes happen to exist.
    let mut full_counts = Vec::with_capacity(bindings.len());
    for binding in &bindings {
        full_counts.push(db.row_count(&binding.table_name)?);
    }
    for (i, binding) in bindings.iter_mut().enumerate() {
        for conjunct in &raw_conjuncts {
            let Some((cref, value)) = const_eq_ref(conjunct) else {
                continue;
            };
            if resolve_in_scope(cref, &resolution_scope).map(|(pos, _)| pos) != Some(i) {
                continue;
            }
            if let Some(ids) = db.index_probe(&binding.table_name, &cref.column, value)? {
                for row_id in ids {
                    binding
                        .rows
                        .push(db.row(&binding.table_name, row_id)?.expect("live id"));
                }
                binding.restricted = true;
                break;
            }
        }
        // Unrestricted bindings stay unmaterialized here; the deferred
        // loop below scans only the levels whose access path reads a
        // candidate list.
    }

    // Expand projection.
    let named: Vec<(&str, &crate::schema::Table)> = bindings
        .iter()
        .map(|b| (b.name.as_str(), b.table))
        .collect();
    let (out_columns, out_exprs) = expand_projection(stmt, &named);

    // Greedy join order (see `join_order`): drives which side of each
    // equi-join is already bound (probe side) vs. newly bound (build
    // side), and remains the complete plan for non-equi conjuncts.
    // Ordered on full-table counts (not restricted candidates) so the
    // chosen order — and therefore result order — matches the
    // reference executor exactly.
    let order = join_order(
        &bindings
            .iter()
            .zip(&full_counts)
            .map(|(b, &count)| (&b.name, b.table, count))
            .collect::<Vec<_>>(),
        &raw_conjuncts,
    )?;

    // Classify conjuncts: equi-join keys become hash/index accesses;
    // the rest stays as pushed-down residual filters.
    let level_scope: Vec<(&String, &crate::schema::Table)> = order
        .iter()
        .map(|&i| (&bindings[i].name, bindings[i].table))
        .collect();
    let mut join_keys: Vec<Vec<JoinKey>> = Vec::new();
    join_keys.resize_with(order.len(), Vec::new);
    let mut residuals: Vec<(usize, Expr)> = Vec::new();
    for conjunct in raw_conjuncts {
        match classify_equi_join(&conjunct, &level_scope) {
            Some(key) => join_keys[key.depth].push(key),
            None => {
                let level = conjunct_level(&conjunct, &level_scope)?;
                residuals.push((level, conjunct));
            }
        }
    }

    // Decide each level's access kind before materializing anything:
    // index-nested-loop levels never read a candidate list, so their
    // tables must not be scanned at all.
    enum Planned {
        Scan,
        Hash,
        IndexLoop {
            column: String,
            probe: (usize, usize),
        },
    }
    let mut planned: Vec<Planned> = Vec::with_capacity(order.len());
    for (depth, keys) in join_keys.iter().enumerate() {
        let binding = &bindings[order[depth]];
        planned.push(if keys.is_empty() {
            Planned::Scan
        } else if keys.len() == 1
            && !binding.restricted
            && db.supports_index_probe(&binding.table_name, &keys[0].inner_column)?
        {
            Planned::IndexLoop {
                column: keys[0].inner_column.clone(),
                probe: keys[0].probe,
            }
        } else {
            Planned::Hash
        });
    }

    // Materialize candidate lists only where the plan reads them.
    for (depth, &i) in order.iter().enumerate() {
        if matches!(planned[depth], Planned::IndexLoop { .. }) || bindings[i].restricted {
            continue;
        }
        bindings[i].rows = db.scan(&bindings[i].table_name)?.map(|(_, r)| r).collect();
    }

    // Build the access paths (hash tables over candidate rows, keyed by
    // the level's join columns — rows with a NULL key never equi-match).
    let mut accesses: Vec<Access> = Vec::with_capacity(order.len());
    for (depth, kind) in planned.into_iter().enumerate() {
        match kind {
            Planned::Scan => accesses.push(Access::Scan),
            Planned::IndexLoop { column, probe } => {
                accesses.push(Access::IndexLoop { column, probe })
            }
            Planned::Hash => {
                let keys = &join_keys[depth];
                let binding = &bindings[order[depth]];
                let mut build: HashMap<Vec<IndexKey>, Vec<usize>> = HashMap::new();
                'rows: for (i, row) in binding.rows.iter().enumerate() {
                    let mut key = Vec::with_capacity(keys.len());
                    for k in keys {
                        let v = &row[k.inner_index];
                        if v.is_null() {
                            continue 'rows;
                        }
                        key.push(v.index_key());
                    }
                    build.entry(key).or_default().push(i);
                }
                accesses.push(Access::HashJoin {
                    build,
                    probes: keys.iter().map(|k| k.probe).collect(),
                });
            }
        }
    }

    let mut result = ResultSet {
        columns: out_columns,
        rows: Vec::new(),
    };
    // Early exit when any binding has no candidates: the join can only
    // be empty, and a late empty level would otherwise still enumerate
    // the full outer product in front of it. (Index-loop levels were
    // not materialized; their candidate count is the full table's.)
    let all_have_candidates = bindings.iter().zip(&full_counts).all(|(b, &count)| {
        if b.restricted {
            !b.rows.is_empty()
        } else {
            count > 0
        }
    });
    if all_have_candidates {
        let plan = JoinPlan {
            db,
            accesses: &accesses,
            residuals: &residuals,
            out_exprs: &out_exprs,
        };
        let ordered_views: Vec<BindingView<'_>> = order
            .iter()
            .map(|&i| {
                let b = &bindings[i];
                BindingView {
                    name: &b.name,
                    table_name: &b.table_name,
                    table: b.table,
                    rows: &b.rows,
                }
            })
            .collect();
        let mut scope = Vec::with_capacity(ordered_views.len());
        plan.join(&ordered_views, &mut scope, &mut result.rows)?;
    }

    if stmt.distinct {
        let mut seen = std::collections::BTreeSet::new();
        result.rows.retain(|row| {
            let key: Vec<crate::value::IndexKey> = row.iter().map(Value::index_key).collect();
            seen.insert(key)
        });
    }
    Ok(result)
}

// Projection expansion shared by the planner and the reference
// executor: `*` over every binding's columns (qualified names when more
// than one binding is in scope), expressions with optional aliases.
fn expand_projection(
    stmt: &SelectStmt,
    bindings: &[(&str, &crate::schema::Table)],
) -> (Vec<String>, Vec<Expr>) {
    let mut out_columns: Vec<String> = Vec::new();
    let mut out_exprs: Vec<Expr> = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Star => {
                for (name, table) in bindings {
                    for column in &table.columns {
                        out_columns.push(if bindings.len() > 1 {
                            format!("{}.{}", name, column.name)
                        } else {
                            column.name.clone()
                        });
                        out_exprs.push(Expr::Column(ColumnRef::qualified(
                            (*name).to_owned(),
                            column.name.clone(),
                        )));
                    }
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column(c) => c.column.clone(),
                    other => other.to_string(),
                });
                out_columns.push(name);
                out_exprs.push(expr.clone());
            }
        }
    }
    (out_columns, out_exprs)
}

/// One equi-join conjunct `outer.x = inner.y`, resolved against the
/// join order: `inner` binds at `depth`, `outer` strictly earlier.
struct JoinKey {
    depth: usize,
    /// Column index of the inner (build) side in its row layout.
    inner_index: usize,
    /// Column name of the inner side (for storage-index probes).
    inner_column: String,
    /// `(scope position, column index)` of the outer (probe) side.
    probe: (usize, usize),
}

// An `a.x = b.y` conjunct between two distinct bindings whose column
// types make IndexKey equality coincide with SQL equality: same
// declared type, not DOUBLE (DOUBLE columns may store Int values that
// compare SQL-equal to non-identical keys). Anything else stays a
// residual filter.
fn classify_equi_join(expr: &Expr, scope: &[(&String, &crate::schema::Table)]) -> Option<JoinKey> {
    let Expr::Binary {
        op: BinOp::Eq,
        left,
        right,
    } = expr
    else {
        return None;
    };
    let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) else {
        return None;
    };
    let ra = resolve_in_scope(a, scope)?;
    let rb = resolve_in_scope(b, scope)?;
    if ra.0 == rb.0 {
        return None; // same binding: plain filter
    }
    let ty_a = scope[ra.0].1.columns[ra.1].ty;
    let ty_b = scope[rb.0].1.columns[rb.1].ty;
    if ty_a != ty_b || ty_a == crate::value::SqlType::Double {
        return None;
    }
    let (outer, (inner_pos, inner_index)) = if ra.0 < rb.0 { (ra, rb) } else { (rb, ra) };
    Some(JoinKey {
        depth: inner_pos,
        inner_index,
        inner_column: scope[inner_pos].1.columns[inner_index].name.clone(),
        probe: outer,
    })
}

// Resolve a column reference to `(scope position, column index)`.
// Unqualified references resolve only when exactly one binding declares
// the column (ambiguity falls through to the residual path, which
// reports it at eval time).
fn resolve_in_scope(
    cref: &ColumnRef,
    scope: &[(&String, &crate::schema::Table)],
) -> Option<(usize, usize)> {
    match &cref.table {
        Some(qualifier) => {
            let pos = scope.iter().position(|(name, _)| *name == qualifier)?;
            Some((pos, scope[pos].1.column_index(&cref.column)?))
        }
        None => {
            let mut found = None;
            for (pos, (_, table)) in scope.iter().enumerate() {
                if let Some(idx) = table.column_index(&cref.column) {
                    if found.is_some() {
                        return None;
                    }
                    found = Some((pos, idx));
                }
            }
            found
        }
    }
}

/// How one join level reaches its rows.
enum Access {
    /// Every candidate row (cross product / non-equi levels).
    Scan,
    /// Prebuilt hash table over the level's candidates, probed with the
    /// outer rows' key values.
    HashJoin {
        /// Join-key values → candidate row positions (ascending).
        build: HashMap<Vec<IndexKey>, Vec<usize>>,
        /// `(scope position, column index)` per key part.
        probes: Vec<(usize, usize)>,
    },
    /// Probe the table's storage index per outer row (index nested
    /// loop) — no per-query build at all.
    IndexLoop {
        /// Indexed column on this level's table.
        column: String,
        /// `(scope position, column index)` of the outer side.
        probe: (usize, usize),
    },
}

// One level's binding, viewed through the join order.
struct BindingView<'a> {
    name: &'a str,
    table_name: &'a str,
    table: &'a crate::schema::Table,
    rows: &'a [&'a Vec<Value>],
}

struct JoinPlan<'p, 'a> {
    db: &'a Database,
    accesses: &'p [Access],
    residuals: &'p [(usize, Expr)],
    out_exprs: &'p [Expr],
}

impl<'a> JoinPlan<'_, 'a> {
    // Recursive join: bind one table per level through its access path,
    // apply the residual conjuncts that just became evaluable, recurse.
    fn join(
        &self,
        ordered: &[BindingView<'a>],
        scope: &mut Vec<(&'a str, &'a crate::schema::Table, &'a Vec<Value>)>,
        out: &mut Vec<Vec<Value>>,
    ) -> RelResult<()> {
        let depth = scope.len();
        if depth == ordered.len() {
            let resolve = |cref: &ColumnRef| -> RelResult<Value> { resolve_multi(scope, cref) };
            let mut row = Vec::with_capacity(self.out_exprs.len());
            for expr in self.out_exprs {
                row.push(eval(expr, &resolve)?);
            }
            out.push(row);
            return Ok(());
        }
        let binding = &ordered[depth];
        match &self.accesses[depth] {
            Access::Scan => {
                for row in binding.rows {
                    self.bind_row(ordered, scope, out, binding, row)?;
                }
            }
            Access::HashJoin { build, probes } => {
                let mut key = Vec::with_capacity(probes.len());
                for &(pos, idx) in probes {
                    let v = &scope[pos].2[idx];
                    if v.is_null() {
                        return Ok(()); // NULL never equi-joins
                    }
                    key.push(v.index_key());
                }
                if let Some(positions) = build.get(&key) {
                    for &i in positions {
                        self.bind_row(ordered, scope, out, binding, binding.rows[i])?;
                    }
                }
            }
            Access::IndexLoop { column, probe } => {
                let value = &scope[probe.0].2[probe.1];
                // Borrowed-result probe: this runs once per outer row.
                let ids = self
                    .db
                    .index_probe_ids(binding.table_name, column, value)?
                    .expect("planner verified index support");
                let (one, many) = match ids {
                    crate::database::ProbeIds::Unique(id) => (id, &[][..]),
                    crate::database::ProbeIds::Many(ids) => (None, ids),
                };
                for row_id in one.into_iter().chain(many.iter().copied()) {
                    let row = self
                        .db
                        .row(binding.table_name, row_id)?
                        .expect("probe id is live");
                    self.bind_row(ordered, scope, out, binding, row)?;
                }
            }
        }
        Ok(())
    }

    fn bind_row(
        &self,
        ordered: &[BindingView<'a>],
        scope: &mut Vec<(&'a str, &'a crate::schema::Table, &'a Vec<Value>)>,
        out: &mut Vec<Vec<Value>>,
        binding: &BindingView<'a>,
        row: &'a Vec<Value>,
    ) -> RelResult<()> {
        let depth = scope.len();
        scope.push((binding.name, binding.table, row));
        let resolve = |cref: &ColumnRef| -> RelResult<Value> { resolve_multi(scope, cref) };
        for (level, conjunct) in self.residuals {
            if *level == depth && !matches!(eval(conjunct, &resolve)?, Value::Bool(true)) {
                scope.pop();
                return Ok(());
            }
        }
        self.join(ordered, scope, out)?;
        scope.pop();
        Ok(())
    }
}

/// Reference SELECT executor: the pre-planner clone-everything pruned
/// nested loop (upfront full-table clones, greedy ordering, conjunct
/// pushdown, no indexes). Kept verbatim as the semantic baseline for
/// the planner's differential tests and benchmarks.
pub fn execute_select_reference(db: &Database, stmt: &SelectStmt) -> RelResult<ResultSet> {
    struct Binding {
        name: String,
        table: crate::schema::Table,
        rows: Vec<Vec<Value>>,
    }
    let mut bindings = Vec::new();
    for tref in &stmt.from {
        let table = db.schema().table(&tref.table)?.clone();
        let rows: Vec<Vec<Value>> = db.scan(&tref.table)?.map(|(_, r)| r.clone()).collect();
        let name = tref.binding().to_owned();
        if bindings.iter().any(|b: &Binding| b.name == name) {
            return Err(RelError::Execution {
                message: format!("duplicate table binding {name:?} in FROM"),
            });
        }
        bindings.push(Binding { name, table, rows });
    }
    if bindings.is_empty() {
        return Err(RelError::Execution {
            message: "SELECT requires at least one table".into(),
        });
    }
    let named: Vec<(&str, &crate::schema::Table)> = bindings
        .iter()
        .map(|b| (b.name.as_str(), &b.table))
        .collect();
    let (out_columns, out_exprs) = expand_projection(stmt, &named);
    let raw_conjuncts = match &stmt.where_clause {
        Some(pred) => split_conjuncts(pred),
        None => Vec::new(),
    };
    let order = join_order(
        &bindings
            .iter()
            .map(|b| (&b.name, &b.table, b.rows.len()))
            .collect::<Vec<_>>(),
        &raw_conjuncts,
    )?;
    let ordered: Vec<(&str, &crate::schema::Table, &[Vec<Value>])> = order
        .iter()
        .map(|&i| {
            let b = &bindings[i];
            (b.name.as_str(), &b.table, b.rows.as_slice())
        })
        .collect();
    let mut conjuncts: Vec<(usize, Expr)> = Vec::new();
    {
        let level_scope: Vec<(&String, &crate::schema::Table)> = order
            .iter()
            .map(|&i| (&bindings[i].name, &bindings[i].table))
            .collect();
        for c in raw_conjuncts {
            let level = conjunct_level(&c, &level_scope)?;
            conjuncts.push((level, c));
        }
    }
    let mut result = ResultSet {
        columns: out_columns,
        rows: Vec::new(),
    };
    if bindings.iter().all(|b| !b.rows.is_empty()) {
        let mut current: Vec<(&str, &crate::schema::Table, &Vec<Value>)> = Vec::new();
        reference_join_level(
            &ordered,
            &conjuncts,
            &out_exprs,
            &mut current,
            &mut result.rows,
        )?;
    }
    if stmt.distinct {
        let mut seen = std::collections::BTreeSet::new();
        result.rows.retain(|row| {
            let key: Vec<crate::value::IndexKey> = row.iter().map(Value::index_key).collect();
            seen.insert(key)
        });
    }
    Ok(result)
}

// Which binding indices does a conjunct touch? (Unqualified ambiguous
// columns count every candidate.)
fn conjunct_bindings(
    expr: &Expr,
    bindings: &[(&String, &crate::schema::Table, usize)],
) -> Vec<usize> {
    fn walk(
        expr: &Expr,
        bindings: &[(&String, &crate::schema::Table, usize)],
        out: &mut Vec<usize>,
    ) {
        match expr {
            Expr::Value(_) => {}
            Expr::Column(cref) => match &cref.table {
                Some(qualifier) => {
                    if let Some(i) = bindings.iter().position(|(name, _, _)| *name == qualifier) {
                        out.push(i);
                    }
                }
                None => {
                    for (i, (_, table, _)) in bindings.iter().enumerate() {
                        if table.column_index(&cref.column).is_some() {
                            out.push(i);
                        }
                    }
                }
            },
            Expr::Binary { left, right, .. } => {
                walk(left, bindings, out);
                walk(right, bindings, out);
            }
            Expr::Not(inner) => walk(inner, bindings, out),
            Expr::IsNull { expr, .. } => walk(expr, bindings, out),
            Expr::InList { expr, list, .. } => {
                walk(expr, bindings, out);
                for item in list {
                    walk(item, bindings, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    walk(expr, bindings, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

// Pick an evaluation order (permutation of binding indices) that lets
// join conjuncts apply as early as possible.
fn join_order(
    bindings: &[(&String, &crate::schema::Table, usize)],
    conjuncts: &[Expr],
) -> RelResult<Vec<usize>> {
    let touched: Vec<Vec<usize>> = conjuncts
        .iter()
        .map(|c| conjunct_bindings(c, bindings))
        .collect();
    let n = bindings.len();
    let mut chosen: Vec<usize> = Vec::with_capacity(n);
    let mut in_chosen = vec![false; n];
    while chosen.len() < n {
        let mut best: Option<(usize, usize, usize)> = None; // (score, -rows sort, idx)
        for i in 0..n {
            if in_chosen[i] {
                continue;
            }
            // Conjuncts that become fully bound by adding i.
            let score = touched
                .iter()
                .filter(|t| t.contains(&i) && t.iter().all(|&b| b == i || in_chosen[b]))
                .count();
            let rows = bindings[i].2;
            let candidate = (score, usize::MAX - rows, usize::MAX - i); // ties: original order
            if best.is_none_or(|b| candidate > b) {
                best = Some(candidate);
            }
        }
        let (_, _, inv) = best.expect("n > chosen");
        let idx = usize::MAX - inv;
        in_chosen[idx] = true;
        chosen.push(idx);
    }
    Ok(chosen)
}

// Split an expression into its top-level AND conjuncts, borrowing.
fn split_conjuncts_ref(expr: &Expr) -> Vec<&Expr> {
    match expr {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            let mut out = split_conjuncts_ref(left);
            out.extend(split_conjuncts_ref(right));
            out
        }
        other => vec![other],
    }
}

// Split an expression into its top-level AND conjuncts (owned).
fn split_conjuncts(expr: &Expr) -> Vec<Expr> {
    split_conjuncts_ref(expr).into_iter().cloned().collect()
}

// The shallowest join level (binding index) at which every column of
// `expr` is bound. Qualified refs resolve to their binding; unqualified
// refs to the unique binding declaring the column (ambiguity is reported
// at eval time — use the deepest candidate to stay conservative).
fn conjunct_level(expr: &Expr, bindings: &[(&String, &crate::schema::Table)]) -> RelResult<usize> {
    fn walk(
        expr: &Expr,
        bindings: &[(&String, &crate::schema::Table)],
        level: &mut usize,
    ) -> RelResult<()> {
        match expr {
            Expr::Value(_) => Ok(()),
            Expr::Column(cref) => {
                let idx = match &cref.table {
                    Some(qualifier) => bindings
                        .iter()
                        .position(|(name, _)| *name == qualifier)
                        .ok_or_else(|| RelError::Execution {
                            message: format!("unknown table binding {qualifier:?}"),
                        })?,
                    None => {
                        let mut candidates = bindings
                            .iter()
                            .enumerate()
                            .filter(|(_, (_, t))| t.column_index(&cref.column).is_some())
                            .map(|(i, _)| i);
                        let first = candidates.next().ok_or_else(|| RelError::Execution {
                            message: format!("unknown column {:?}", cref.column),
                        })?;
                        // Ambiguous bare columns: defer to eval's error by
                        // binding at the deepest candidate.
                        candidates.next_back().unwrap_or(first)
                    }
                };
                *level = (*level).max(idx);
                Ok(())
            }
            Expr::Binary { left, right, .. } => {
                walk(left, bindings, level)?;
                walk(right, bindings, level)
            }
            Expr::Not(inner) => walk(inner, bindings, level),
            Expr::IsNull { expr, .. } => walk(expr, bindings, level),
            Expr::InList { expr, list, .. } => {
                walk(expr, bindings, level)?;
                list.iter().try_for_each(|item| walk(item, bindings, level))
            }
        }
    }
    let mut level = 0;
    walk(expr, bindings, &mut level)?;
    Ok(level)
}

// Recursive pruned join of the reference executor: bind one table per
// level, applying every conjunct whose columns just became available.
fn reference_join_level<'a>(
    bindings: &[(&'a str, &'a crate::schema::Table, &'a [Vec<Value>])],
    conjuncts: &[(usize, Expr)],
    out_exprs: &[Expr],
    current: &mut Vec<(&'a str, &'a crate::schema::Table, &'a Vec<Value>)>,
    out: &mut Vec<Vec<Value>>,
) -> RelResult<()> {
    let depth = current.len();
    if depth == bindings.len() {
        let resolve = |cref: &ColumnRef| -> RelResult<Value> { resolve_multi(current, cref) };
        let mut row = Vec::with_capacity(out_exprs.len());
        for expr in out_exprs {
            row.push(eval(expr, &resolve)?);
        }
        out.push(row);
        return Ok(());
    }
    let (name, table, rows) = bindings[depth];
    'rows: for r in rows {
        current.push((name, table, r));
        let resolve = |cref: &ColumnRef| -> RelResult<Value> { resolve_multi(current, cref) };
        for (level, conjunct) in conjuncts {
            if *level == depth && !matches!(eval(conjunct, &resolve)?, Value::Bool(true)) {
                current.pop();
                continue 'rows;
            }
        }
        reference_join_level(bindings, conjuncts, out_exprs, current, out)?;
        current.pop();
    }
    Ok(())
}

fn resolve_multi(
    scope: &[(&str, &crate::schema::Table, &Vec<Value>)],
    cref: &ColumnRef,
) -> RelResult<Value> {
    match &cref.table {
        Some(qualifier) => {
            for (name, table, row) in scope {
                if name == qualifier {
                    let idx =
                        table
                            .column_index(&cref.column)
                            .ok_or_else(|| RelError::NoSuchColumn {
                                table: (*name).to_owned(),
                                column: cref.column.clone(),
                            })?;
                    return Ok(row[idx]);
                }
            }
            Err(RelError::Execution {
                message: format!("unknown table binding {qualifier:?}"),
            })
        }
        None => {
            let mut found: Option<Value> = None;
            for (name, table, row) in scope {
                if let Some(idx) = table.column_index(&cref.column) {
                    if found.is_some() {
                        return Err(RelError::Execution {
                            message: format!(
                                "ambiguous column {:?} (qualify with a table binding; also in {name:?})",
                                cref.column
                            ),
                        });
                    }
                    found = Some(row[idx]);
                }
            }
            found.ok_or_else(|| RelError::Execution {
                message: format!("unknown column {:?}", cref.column),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema, Table};
    use crate::value::SqlType;

    fn db() -> Database {
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("team")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("name", SqlType::Varchar))
                    .column(Column::new("code", SqlType::Varchar))
                    .primary_key(&["id"])
                    .build(),
            )
            .unwrap();
        schema
            .add_table(
                Table::builder("author")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("lastname", SqlType::Varchar).not_null())
                    .column(Column::new("email", SqlType::Varchar))
                    .column(Column::new("team", SqlType::Integer))
                    .primary_key(&["id"])
                    .foreign_key("team", "team", "id")
                    .build(),
            )
            .unwrap();
        let mut db = Database::new(schema).unwrap();
        execute_sql(
            &mut db,
            "INSERT INTO team (id, name, code) VALUES (5, 'Software Engineering', 'SEAL');",
        )
        .unwrap();
        execute_sql(
            &mut db,
            "INSERT INTO team (id, name, code) VALUES (4, 'Database Technology', 'DBTG');",
        )
        .unwrap();
        execute_sql(
            &mut db,
            "INSERT INTO author (id, lastname, email, team) VALUES (6, 'Hert', 'hert@ifi.uzh.ch', 5);",
        )
        .unwrap();
        execute_sql(
            &mut db,
            "INSERT INTO author (id, lastname, team) VALUES (7, 'Reif', 5);",
        )
        .unwrap();
        db
    }

    #[test]
    fn insert_then_select_star() {
        let mut d = db();
        let out = execute_sql(&mut d, "SELECT * FROM team;").unwrap();
        let rows = out.rows().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows.columns, vec!["id", "name", "code"]);
    }

    #[test]
    fn select_with_where() {
        let mut d = db();
        let out = execute_sql(
            &mut d,
            "SELECT lastname FROM author WHERE team = 5 AND email IS NOT NULL;",
        )
        .unwrap();
        let rows = out.rows().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows.rows[0][0], Value::text("Hert"));
    }

    #[test]
    fn join_via_cross_product() {
        let mut d = db();
        let out = execute_sql(
            &mut d,
            "SELECT a.lastname, t.code FROM author a, team t WHERE a.team = t.id;",
        )
        .unwrap();
        let rows = out.rows().unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.rows.iter().all(|r| r[1] == Value::text("SEAL")));
    }

    #[test]
    fn update_with_where_matches_listing_18() {
        let mut d = db();
        let out = execute_sql(
            &mut d,
            "UPDATE author SET email = NULL WHERE id = 6 AND email = 'hert@ifi.uzh.ch';",
        )
        .unwrap();
        assert_eq!(out.affected(), 1);
        let check = execute_sql(&mut d, "SELECT email FROM author WHERE id = 6;").unwrap();
        assert_eq!(check.rows().unwrap().rows[0][0], Value::Null);
    }

    #[test]
    fn update_where_null_comparison_matches_nothing() {
        let mut d = db();
        // email of author 7 is NULL; NULL = 'x' is unknown, not true.
        let out = execute_sql(
            &mut d,
            "UPDATE author SET lastname = 'X' WHERE email = 'x';",
        )
        .unwrap();
        assert_eq!(out.affected(), 0);
    }

    #[test]
    fn delete_with_where() {
        let mut d = db();
        let out = execute_sql(&mut d, "DELETE FROM author WHERE id = 7;").unwrap();
        assert_eq!(out.affected(), 1);
        assert_eq!(d.row_count("author").unwrap(), 1);
    }

    #[test]
    fn delete_restricted_by_fk() {
        let mut d = db();
        let err = execute_sql(&mut d, "DELETE FROM team WHERE id = 5;").unwrap_err();
        assert!(matches!(err, RelError::RestrictViolation { .. }));
    }

    #[test]
    fn distinct_dedups() {
        let mut d = db();
        let out = execute_sql(&mut d, "SELECT DISTINCT team FROM author;").unwrap();
        assert_eq!(out.rows().unwrap().len(), 1);
        let out = execute_sql(&mut d, "SELECT team FROM author;").unwrap();
        assert_eq!(out.rows().unwrap().len(), 2);
    }

    #[test]
    fn ambiguous_bare_column_rejected() {
        let mut d = db();
        let err = execute_sql(
            &mut d,
            "SELECT id FROM author a, team t WHERE a.team = t.id;",
        )
        .unwrap_err();
        assert!(matches!(err, RelError::Execution { .. }));
    }

    #[test]
    fn unknown_column_rejected() {
        let mut d = db();
        assert!(execute_sql(&mut d, "SELECT bogus FROM team;").is_err());
    }

    #[test]
    fn duplicate_binding_rejected() {
        let mut d = db();
        assert!(execute_sql(&mut d, "SELECT * FROM team t, author t;").is_err());
    }

    #[test]
    fn empty_table_join_is_empty() {
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("a")
                    .column(Column::new("id", SqlType::Integer))
                    .primary_key(&["id"])
                    .build(),
            )
            .unwrap();
        schema
            .add_table(
                Table::builder("b")
                    .column(Column::new("id", SqlType::Integer))
                    .primary_key(&["id"])
                    .build(),
            )
            .unwrap();
        let mut d = Database::new(schema).unwrap();
        execute_sql(&mut d, "INSERT INTO a (id) VALUES (1);").unwrap();
        let out = execute_sql(&mut d, "SELECT * FROM a, b;").unwrap();
        assert!(out.rows().unwrap().is_empty());
    }

    #[test]
    fn value_accessor() {
        let mut d = db();
        let out = execute_sql(&mut d, "SELECT id, lastname FROM author WHERE id = 6;").unwrap();
        let rs = out.rows().unwrap();
        assert_eq!(rs.value(0, "lastname"), Some(&Value::text("Hert")));
        assert_eq!(rs.value(0, "bogus"), None);
    }

    #[test]
    fn update_assignment_from_column() {
        let mut d = db();
        execute_sql(&mut d, "UPDATE team SET name = code WHERE id = 4;").unwrap();
        let out = execute_sql(&mut d, "SELECT name FROM team WHERE id = 4;").unwrap();
        assert_eq!(out.rows().unwrap().rows[0][0], Value::text("DBTG"));
    }

    #[test]
    fn multi_row_insert_executes_all_rows() {
        let mut d = db();
        let out = execute_sql(
            &mut d,
            "INSERT INTO team (id, name) VALUES (10, 'A'), (11, 'B'), (12, 'C');",
        )
        .unwrap();
        assert_eq!(out.affected(), 3);
        assert_eq!(d.row_count("team").unwrap(), 5);
    }

    #[test]
    fn duplicate_insert_column_rejected() {
        let mut d = db();
        let err = execute_sql(&mut d, "INSERT INTO team (id, id) VALUES (10, 11);").unwrap_err();
        assert!(matches!(err, RelError::Execution { .. }));
        assert_eq!(d.row_count("team").unwrap(), 2);
    }

    #[test]
    fn multi_row_insert_checks_constraints_per_row() {
        let mut d = db();
        d.begin().unwrap();
        // Third row collides with the first on the primary key.
        let err = execute_sql(
            &mut d,
            "INSERT INTO team (id, name) VALUES (10, 'A'), (11, 'B'), (10, 'dup');",
        )
        .unwrap_err();
        assert!(matches!(err, RelError::PrimaryKeyViolation { .. }));
        d.rollback().unwrap();
        // The transaction rollback removed the rows that preceded the
        // failure, and their index entries with them.
        assert_eq!(d.row_count("team").unwrap(), 2);
        assert_eq!(
            d.index_probe("team", "id", &Value::Int(10)).unwrap(),
            Some(vec![])
        );
    }

    #[test]
    fn bulk_update_applies_per_key_assignments() {
        let mut d = db();
        let out = execute_sql(
            &mut d,
            "UPDATE author BY (id) SET (email) VALUES (6, 'a@x.ch'), (7, 'b@x.ch');",
        )
        .unwrap();
        assert_eq!(out.affected(), 2);
        let rows = execute_sql(&mut d, "SELECT id, email FROM author;").unwrap();
        let rows = rows.rows().unwrap().rows.clone();
        assert!(rows.contains(&vec![Value::Int(6), Value::text("a@x.ch")]));
        assert!(rows.contains(&vec![Value::Int(7), Value::text("b@x.ch")]));
    }

    #[test]
    fn bulk_update_guard_columns_restrict_matches() {
        let mut d = db();
        // Second tuple's guard does not match author 7's NULL email.
        let out = execute_sql(
            &mut d,
            "UPDATE author BY (id, email) SET (email) \
             VALUES (6, 'hert@ifi.uzh.ch', NULL), (7, 'nope@x.ch', NULL);",
        )
        .unwrap();
        assert_eq!(out.affected(), 1);
        let check = execute_sql(&mut d, "SELECT email FROM author WHERE id = 6;").unwrap();
        assert_eq!(check.rows().unwrap().rows[0][0], Value::Null);
    }

    #[test]
    fn bulk_update_rechecks_constraints() {
        let mut d = db();
        let err =
            execute_sql(&mut d, "UPDATE author BY (id) SET (team) VALUES (6, 99);").unwrap_err();
        assert!(matches!(err, RelError::ForeignKeyViolation { .. }));
    }

    #[test]
    fn delete_with_in_list_uses_pk_probe() {
        let mut d = db();
        execute_sql(&mut d, "INSERT INTO team (id) VALUES (10), (11), (12);").unwrap();
        let out = execute_sql(&mut d, "DELETE FROM team WHERE id IN (10, 12, 99);").unwrap();
        assert_eq!(out.affected(), 2);
        assert_eq!(d.row_count("team").unwrap(), 3);
    }

    #[test]
    fn in_list_three_valued_logic() {
        let mut d = db();
        // author 7 has NULL email: `email IN (...)` is NULL, not TRUE,
        // so the row is not selected.
        let out = execute_sql(
            &mut d,
            "SELECT id FROM author WHERE email IN ('hert@ifi.uzh.ch', 'x@y.ch');",
        )
        .unwrap();
        assert_eq!(out.rows().unwrap().rows, vec![vec![Value::Int(6)]]);
        // NOT IN over a NULL value is NULL as well — neither row 7 nor
        // a non-matching constant makes it TRUE.
        let out = execute_sql(
            &mut d,
            "SELECT id FROM author WHERE email NOT IN ('hert@ifi.uzh.ch');",
        )
        .unwrap();
        assert!(out.rows().unwrap().rows.is_empty());
    }

    #[test]
    fn mid_batch_delete_failure_leaves_transaction_rollbackable() {
        let mut d = db();
        execute_sql(&mut d, "INSERT INTO team (id) VALUES (10);").unwrap();
        d.begin().unwrap();
        // Team 10 deletes fine; team 5 is referenced by both authors.
        let err = execute_sql(&mut d, "DELETE FROM team WHERE id IN (10, 5);").unwrap_err();
        assert!(matches!(err, RelError::RestrictViolation { .. }));
        d.rollback().unwrap();
        assert_eq!(d.row_count("team").unwrap(), 3);
        assert_eq!(
            d.index_probe("team", "id", &Value::Int(10))
                .unwrap()
                .map(|ids| ids.len()),
            Some(1)
        );
    }
}

#[cfg(test)]
mod join_order_tests {
    use super::*;
    use crate::schema::{Column, Schema, Table};
    use crate::value::SqlType;

    // Triangle schema: link between a and b; both FROM orders must give
    // identical results regardless of how the user listed the tables.
    fn db() -> Database {
        let mut schema = Schema::new();
        for name in ["a", "b"] {
            schema
                .add_table(
                    Table::builder(name)
                        .column(Column::new("id", SqlType::Integer).not_null())
                        .column(Column::new("v", SqlType::Varchar))
                        .primary_key(&["id"])
                        .build(),
                )
                .unwrap();
        }
        schema
            .add_table(
                Table::builder("link")
                    .column(
                        Column::new("id", SqlType::Integer)
                            .not_null()
                            .auto_increment(),
                    )
                    .column(Column::new("a", SqlType::Integer).not_null())
                    .column(Column::new("b", SqlType::Integer).not_null())
                    .primary_key(&["id"])
                    .foreign_key("a", "a", "id")
                    .foreign_key("b", "b", "id")
                    .build(),
            )
            .unwrap();
        let mut db = Database::new(schema).unwrap();
        for i in 1..=20i64 {
            execute_sql(
                &mut db,
                &format!("INSERT INTO a (id, v) VALUES ({i}, 'a{i}');"),
            )
            .unwrap();
            execute_sql(
                &mut db,
                &format!("INSERT INTO b (id, v) VALUES ({i}, 'b{i}');"),
            )
            .unwrap();
        }
        for i in 1..=20i64 {
            execute_sql(
                &mut db,
                &format!("INSERT INTO link (a, b) VALUES ({i}, {});", 21 - i),
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn results_independent_of_from_order() {
        let mut d = db();
        let q1 = "SELECT x.v AS av, y.v AS bv FROM a x, b y, link l \
                  WHERE l.a = x.id AND l.b = y.id;";
        let q2 = "SELECT x.v AS av, y.v AS bv FROM link l, b y, a x \
                  WHERE l.a = x.id AND l.b = y.id;";
        let mut r1 = execute_sql(&mut d, q1)
            .unwrap()
            .rows()
            .unwrap()
            .rows
            .clone();
        let mut r2 = execute_sql(&mut d, q2)
            .unwrap()
            .rows()
            .unwrap()
            .rows
            .clone();
        let key = |r: &Vec<Value>| r.iter().map(Value::index_key).collect::<Vec<_>>();
        r1.sort_by_key(key);
        r2.sort_by_key(key);
        assert_eq!(r1, r2);
        assert_eq!(r1.len(), 20);
    }

    #[test]
    fn pushdown_preserves_three_valued_semantics() {
        let mut d = db();
        execute_sql(&mut d, "INSERT INTO a (id) VALUES (99);").unwrap(); // v NULL
                                                                         // NULL v never satisfies v = 'a1' nor v <> 'a1'.
        let eq = execute_sql(&mut d, "SELECT id FROM a WHERE v = 'a1';").unwrap();
        assert_eq!(eq.rows().unwrap().len(), 1);
        let ne = execute_sql(&mut d, "SELECT id FROM a WHERE v <> 'a1';").unwrap();
        assert_eq!(ne.rows().unwrap().len(), 19);
    }

    #[test]
    fn disjunctive_where_not_split() {
        // OR stays one conjunct applied once all tables are bound.
        let mut d = db();
        let q = "SELECT x.id FROM a x, b y WHERE x.id = y.id AND (x.v = 'a1' OR y.v = 'b2');";
        let out = execute_sql(&mut d, q).unwrap();
        assert_eq!(out.rows().unwrap().len(), 2);
    }
}

#[cfg(test)]
mod planner_tests {
    use super::*;
    use crate::schema::{Column, Schema, Table};
    use crate::value::SqlType;

    // Triangle schema (a, b, link) as in join_order_tests, plus an
    // unindexed data column to force residual filtering.
    fn db(n: i64) -> Database {
        let mut schema = Schema::new();
        for name in ["a", "b"] {
            schema
                .add_table(
                    Table::builder(name)
                        .column(Column::new("id", SqlType::Integer).not_null())
                        .column(Column::new("v", SqlType::Varchar))
                        .column(Column::new("score", SqlType::Double))
                        .primary_key(&["id"])
                        .build(),
                )
                .unwrap();
        }
        schema
            .add_table(
                Table::builder("link")
                    .column(
                        Column::new("id", SqlType::Integer)
                            .not_null()
                            .auto_increment(),
                    )
                    .column(Column::new("a", SqlType::Integer))
                    .column(Column::new("b", SqlType::Integer))
                    .primary_key(&["id"])
                    .foreign_key("a", "a", "id")
                    .foreign_key("b", "b", "id")
                    .build(),
            )
            .unwrap();
        let mut db = Database::new(schema).unwrap();
        for i in 1..=n {
            execute_sql(
                &mut db,
                &format!(
                    "INSERT INTO a (id, v, score) VALUES ({i}, 'a{i}', {}.5);",
                    i
                ),
            )
            .unwrap();
            execute_sql(
                &mut db,
                &format!(
                    "INSERT INTO b (id, v, score) VALUES ({i}, 'b{}', {}.5);",
                    i % 3,
                    i
                ),
            )
            .unwrap();
        }
        for i in 1..=n {
            execute_sql(
                &mut db,
                &format!("INSERT INTO link (a, b) VALUES ({i}, {});", n + 1 - i),
            )
            .unwrap();
        }
        // A dangling link row with NULL endpoints: must never join.
        execute_sql(&mut db, "INSERT INTO link (a, b) VALUES (NULL, NULL);").unwrap();
        db
    }

    fn both(db: &mut Database, sql: &str) -> (ResultSet, ResultSet) {
        let stmt = crate::sql::parser::parse(sql).unwrap();
        let Statement::Select(select) = &stmt else {
            panic!()
        };
        let planner = execute_select(db, select).unwrap();
        let reference = execute_select_reference(db, select).unwrap();
        (planner, reference)
    }

    #[test]
    fn planner_matches_reference_rows_and_order() {
        let mut d = db(20);
        for sql in [
            "SELECT x.v, y.v FROM a x, b y, link l WHERE l.a = x.id AND l.b = y.id;",
            "SELECT * FROM a, link WHERE link.a = a.id;",
            "SELECT x.id FROM a x, b y WHERE x.id = y.id AND y.v = 'b1';",
            "SELECT DISTINCT y.v FROM a x, b y WHERE x.id = y.id;",
            "SELECT x.id, y.id FROM a x, b y;",
            "SELECT id FROM a WHERE id = 7;",
            "SELECT x.id FROM a x, b y WHERE x.id = y.id AND (x.v = 'a1' OR y.v = 'b2');",
            "SELECT x.id FROM a x, b y WHERE x.score = y.score;",
            "SELECT a.id FROM a, b WHERE a.id = b.id AND a.id <> b.id;",
        ] {
            let (planner, reference) = both(&mut d, sql);
            assert_eq!(planner, reference, "query: {sql}");
        }
    }

    #[test]
    fn ambiguous_constant_restriction_still_errors() {
        // `id` exists in both tables: the planner must not silently
        // restrict one binding and return empty — the ambiguity error
        // of the reference executor must surface.
        let mut d = db(5);
        let stmt = crate::sql::parser::parse("SELECT * FROM a, b WHERE id = 999;").unwrap();
        let Statement::Select(select) = &stmt else {
            panic!()
        };
        let reference = execute_select_reference(&d, select).unwrap_err();
        let planner = execute(&mut d, &stmt).unwrap_err();
        assert!(
            matches!(planner, RelError::Execution { ref message } if message.contains("ambiguous")),
            "planner: {planner}"
        );
        assert!(
            matches!(reference, RelError::Execution { ref message } if message.contains("ambiguous"))
        );
    }

    #[test]
    fn constant_restriction_uses_pk_index() {
        let mut d = db(50);
        let (planner, reference) = both(&mut d, "SELECT v FROM a WHERE id = 13 AND v = 'a13';");
        assert_eq!(planner, reference);
        assert_eq!(planner.len(), 1);
        assert_eq!(planner.rows[0][0], Value::text("a13"));
    }

    #[test]
    fn planner_handles_empty_tables() {
        let mut d = db(0);
        let out = execute_sql(&mut d, "SELECT * FROM a, b WHERE a.id = b.id;").unwrap();
        assert!(out.rows().unwrap().is_empty());
        let out = execute_sql(&mut d, "SELECT * FROM a;").unwrap();
        assert!(out.rows().unwrap().is_empty());
    }

    #[test]
    fn null_join_keys_never_match() {
        let mut d = db(5);
        // The dangling NULL link row joins nothing.
        let out = execute_sql(
            &mut d,
            "SELECT l.id FROM link l, a x WHERE l.a = x.id AND x.id = 999;",
        )
        .unwrap();
        assert!(out.rows().unwrap().is_empty());
        let (planner, reference) = both(
            &mut d,
            "SELECT l.id, x.v FROM link l, a x WHERE l.a = x.id;",
        );
        assert_eq!(planner, reference);
        assert_eq!(planner.len(), 5); // NULL row excluded
    }

    #[test]
    fn double_columns_fall_back_to_residual_filtering() {
        // score is DOUBLE: the equi-join must not be hashed, but the
        // result must still be correct (and may legitimately match
        // Int-vs-Double equal values).
        let mut d = db(8);
        execute_sql(&mut d, "INSERT INTO a (id, v, score) VALUES (100, 'x', 3);").unwrap();
        execute_sql(
            &mut d,
            "INSERT INTO b (id, v, score) VALUES (101, 'y', 3.0);",
        )
        .unwrap();
        let (planner, reference) = both(
            &mut d,
            "SELECT x.id, y.id FROM a x, b y WHERE x.score = y.score;",
        );
        assert_eq!(planner, reference);
        // Int 3 stored in a.score equals Double 3.0 stored in b.score —
        // the cross-representation match a hash join would miss.
        assert!(planner
            .rows
            .iter()
            .any(|r| r[0] == Value::Int(100) && r[1] == Value::Int(101)));
    }

    #[test]
    fn planner_reflects_mutations_and_rollback() {
        let mut d = db(10);
        let q = "SELECT x.v FROM a x, link l WHERE l.a = x.id;";
        let before = execute_sql(&mut d, q).unwrap();
        d.begin().unwrap();
        execute_sql(&mut d, "DELETE FROM link WHERE a = 4;").unwrap();
        execute_sql(&mut d, "INSERT INTO a (id, v) VALUES (42, 'a42');").unwrap();
        execute_sql(&mut d, "INSERT INTO link (a, b) VALUES (42, 1);").unwrap();
        let during = execute_sql(&mut d, q).unwrap();
        assert_ne!(before, during);
        d.rollback().unwrap();
        let after = execute_sql(&mut d, q).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn bad_references_error_even_when_restriction_empties_a_binding() {
        // The PK restriction on b leaves zero candidates; the ambiguous
        // unqualified `v` (declared by both a and b) must still be
        // rejected rather than silently returning an empty result.
        let mut d = db(3);
        let err = execute_sql(
            &mut d,
            "SELECT x.id FROM a x, b y WHERE y.id = 999 AND v = 'a1';",
        )
        .unwrap_err();
        assert!(
            matches!(err, RelError::Execution { ref message } if message.contains("ambiguous")),
            "{err}"
        );
        // Unknown projection/filter columns are rejected up front too.
        assert!(execute_sql(&mut d, "SELECT bogus FROM a WHERE id = 999;").is_err());
        assert!(execute_sql(&mut d, "SELECT id FROM a WHERE id = 999 AND bogus = 1;").is_err());
    }

    #[test]
    fn restriction_does_not_change_join_order_or_row_order() {
        // Two conjuncts, one index-restrictable (b.p = 2 via FK index),
        // one not (a.v = 'x', unindexed). The greedy order must
        // tie-break on full-table counts exactly as the reference does,
        // or the 18 result rows would come back in a different order.
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("pa")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("v", SqlType::Varchar))
                    .primary_key(&["id"])
                    .build(),
            )
            .unwrap();
        schema
            .add_table(
                Table::builder("pb")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("p", SqlType::Integer))
                    .primary_key(&["id"])
                    .foreign_key("p", "pa", "id")
                    .build(),
            )
            .unwrap();
        let mut d = Database::new(schema).unwrap();
        for i in 1..=6i64 {
            execute_sql(
                &mut d,
                &format!("INSERT INTO pa (id, v) VALUES ({i}, 'x');"),
            )
            .unwrap();
        }
        for i in 1..=6i64 {
            execute_sql(
                &mut d,
                &format!(
                    "INSERT INTO pb (id, p) VALUES ({i}, {});",
                    if i <= 3 { 2 } else { i }
                ),
            )
            .unwrap();
        }
        let (planner, reference) = both(
            &mut d,
            "SELECT pa.id, pb.id FROM pa, pb WHERE pa.v = 'x' AND pb.p = 2;",
        );
        assert_eq!(planner, reference);
        assert_eq!(planner.len(), 18);
    }

    #[test]
    fn mutation_where_errors_do_not_depend_on_data() {
        // An unknown column in the WHERE clause must error even when the
        // index probe leaves zero candidate rows to evaluate.
        let mut d = db(5);
        for sql in [
            "DELETE FROM a WHERE id = 999 AND bogus = 1;",
            "DELETE FROM a WHERE id = 1 AND bogus = 1;",
            "UPDATE a SET v = 'x' WHERE id = 999 AND bogus = 1;",
            "DELETE FROM a WHERE wrongtable.id = 1;",
        ] {
            let err = execute_sql(&mut d, sql).unwrap_err();
            assert!(
                matches!(
                    err,
                    RelError::NoSuchColumn { .. } | RelError::Execution { .. }
                ),
                "{sql}: {err}"
            );
        }
    }

    #[test]
    fn update_delete_use_index_probe_and_match_counts() {
        let mut d = db(30);
        // UPDATE through the FK-indexed column.
        let out = execute_sql(&mut d, "UPDATE link SET b = 1 WHERE a = 3;").unwrap();
        assert_eq!(out.affected(), 1);
        // DELETE through the PK index.
        let out = execute_sql(&mut d, "DELETE FROM link WHERE a = 3;").unwrap();
        assert_eq!(out.affected(), 1);
        // WHERE with no usable index still works (scan fallback).
        let out = execute_sql(&mut d, "UPDATE a SET v = 'z' WHERE v = 'a7';").unwrap();
        assert_eq!(out.affected(), 1);
    }
}
