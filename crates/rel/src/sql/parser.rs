//! SQL DML parser for the fragment the engine executes.
//!
//! Round-trips with the printer: `parse(stmt.to_string()) == stmt`, which
//! the property tests rely on. Keywords are case-insensitive; string
//! literals use single quotes with `''` escaping.

use crate::error::{RelError, RelResult};
use crate::sql::ast::{
    BinOp, BulkRow, BulkUpdateStmt, ColumnRef, DeleteStmt, Expr, InsertStmt, SelectItem,
    SelectStmt, Statement, TableRef, UpdateStmt,
};
use crate::value::Value;

/// Parse one SQL DML statement (optional trailing `;`).
pub fn parse(input: &str) -> RelResult<Statement> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_statement()?;
    p.accept_symbol(";");
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a script of `;`-separated statements.
pub fn parse_script(input: &str) -> RelResult<Vec<Statement>> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.accept_symbol(";") {}
        if p.at_eof() {
            return Ok(out);
        }
        out.push(p.parse_statement()?);
        if !p.at_eof() && !p.peek_symbol(";") {
            return Err(p.err("expected ';' between statements"));
        }
    }
}

// ----------------------------------------------------------------------
// Lexer
// ----------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String), // identifier or keyword (original case preserved)
    Str(String),  // 'string' (unescaped)
    Int(i64),
    Float(f64),
    Symbol(String), // punctuation / operators
    Eof,
}

fn lex(input: &str) -> RelResult<Vec<Tok>> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '\'' {
            chars.next();
            let mut s = String::new();
            loop {
                match chars.next() {
                    Some('\'') => {
                        if chars.peek() == Some(&'\'') {
                            chars.next();
                            s.push('\'');
                        } else {
                            break;
                        }
                    }
                    Some(c) => s.push(c),
                    None => {
                        return Err(RelError::SqlParse {
                            message: "unterminated string literal".into(),
                        })
                    }
                }
            }
            tokens.push(Tok::Str(s));
        } else if c.is_ascii_digit()
            || (c == '-'
                && matches!(
                    tokens.last(),
                    None | Some(Tok::Symbol(_)) | Some(Tok::Word(_))
                )
                && {
                    let mut ahead = chars.clone();
                    ahead.next();
                    ahead.peek().is_some_and(|n| n.is_ascii_digit())
                })
        {
            let mut num = String::new();
            if c == '-' {
                num.push(c);
                chars.next();
            }
            let mut is_float = false;
            while let Some(&c) = chars.peek() {
                if c.is_ascii_digit() {
                    num.push(c);
                    chars.next();
                } else if c == '.' && !is_float {
                    let mut ahead = chars.clone();
                    ahead.next();
                    if ahead.peek().is_some_and(|n| n.is_ascii_digit()) {
                        is_float = true;
                        num.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                } else {
                    break;
                }
            }
            if is_float {
                tokens.push(Tok::Float(num.parse().map_err(|_| RelError::SqlParse {
                    message: format!("invalid number {num:?}"),
                })?));
            } else {
                tokens.push(Tok::Int(num.parse().map_err(|_| RelError::SqlParse {
                    message: format!("invalid number {num:?}"),
                })?));
            }
        } else if c.is_alphabetic() || c == '_' {
            let mut word = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_alphanumeric() || c == '_' {
                    word.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            tokens.push(Tok::Word(word));
        } else {
            // Multi-char operators first.
            let two: String = chars.clone().take(2).collect();
            if two == "<>" || two == "!=" || two == "<=" || two == ">=" {
                chars.next();
                chars.next();
                tokens.push(Tok::Symbol(two));
            } else if matches!(c, '=' | '<' | '>' | '(' | ')' | ',' | ';' | '.' | '*' | '-') {
                chars.next();
                tokens.push(Tok::Symbol(c.to_string()));
            } else {
                return Err(RelError::SqlParse {
                    message: format!("unexpected character {c:?}"),
                });
            }
        }
    }
    tokens.push(Tok::Eof);
    Ok(tokens)
}

// ----------------------------------------------------------------------
// Parser
// ----------------------------------------------------------------------

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Tok {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> RelError {
        RelError::SqlParse {
            message: format!("{} (at token {:?})", message.into(), self.peek()),
        }
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn expect_eof(&self) -> RelResult<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err("trailing input"))
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    fn accept_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> RelResult<()> {
        if self.accept_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn peek_symbol(&self, sym: &str) -> bool {
        matches!(self.peek(), Tok::Symbol(s) if s == sym)
    }

    fn accept_symbol(&mut self, sym: &str) -> bool {
        if self.peek_symbol(sym) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> RelResult<()> {
        if self.accept_symbol(sym) {
            Ok(())
        } else {
            Err(self.err(format!("expected {sym:?}")))
        }
    }

    fn expect_identifier(&mut self) -> RelResult<String> {
        match self.bump() {
            Tok::Word(w) if !is_reserved(&w) => Ok(w),
            t => Err(RelError::SqlParse {
                message: format!("expected identifier, found {t:?}"),
            }),
        }
    }

    fn parse_statement(&mut self) -> RelResult<Statement> {
        if self.peek_keyword("INSERT") {
            self.parse_insert().map(Statement::Insert)
        } else if self.peek_keyword("UPDATE") {
            self.parse_update()
        } else if self.peek_keyword("DELETE") {
            self.parse_delete().map(Statement::Delete)
        } else if self.peek_keyword("SELECT") {
            self.parse_select().map(Statement::Select)
        } else {
            Err(self.err("expected INSERT, UPDATE, DELETE, or SELECT"))
        }
    }

    // A parenthesized comma-separated literal tuple.
    fn parse_value_tuple(&mut self) -> RelResult<Vec<Value>> {
        self.expect_symbol("(")?;
        let mut values = Vec::new();
        loop {
            values.push(self.parse_literal()?);
            if !self.accept_symbol(",") {
                break;
            }
        }
        self.expect_symbol(")")?;
        Ok(values)
    }

    // A parenthesized comma-separated identifier list.
    fn parse_column_list(&mut self) -> RelResult<Vec<String>> {
        self.expect_symbol("(")?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.expect_identifier()?);
            if !self.accept_symbol(",") {
                break;
            }
        }
        self.expect_symbol(")")?;
        Ok(columns)
    }

    fn parse_insert(&mut self) -> RelResult<InsertStmt> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.expect_identifier()?;
        let columns = self.parse_column_list()?;
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            let values = self.parse_value_tuple()?;
            if columns.len() != values.len() {
                return Err(RelError::SqlParse {
                    message: format!(
                        "INSERT has {} column(s) but a row with {} value(s)",
                        columns.len(),
                        values.len()
                    ),
                });
            }
            rows.push(values);
            if !self.accept_symbol(",") {
                break;
            }
        }
        Ok(InsertStmt {
            table,
            columns,
            rows,
        })
    }

    fn parse_update(&mut self) -> RelResult<Statement> {
        self.expect_keyword("UPDATE")?;
        let table = self.expect_identifier()?;
        // `UPDATE t BY (…) SET (…) VALUES …` — the grouped form. `BY`
        // is a contextual keyword: the classic grammar requires SET
        // here, so no identifier can occupy this position.
        if self.peek_keyword("BY") {
            return self.parse_bulk_update(table).map(Statement::BulkUpdate);
        }
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let column = self.expect_identifier()?;
            self.expect_symbol("=")?;
            let expr = self.parse_expr()?;
            assignments.push((column, expr));
            if !self.accept_symbol(",") {
                break;
            }
        }
        let where_clause = self.parse_optional_where()?;
        Ok(Statement::Update(UpdateStmt {
            table,
            assignments,
            where_clause,
        }))
    }

    fn parse_bulk_update(&mut self, table: String) -> RelResult<BulkUpdateStmt> {
        self.expect_keyword("BY")?;
        let key_columns = self.parse_column_list()?;
        self.expect_keyword("SET")?;
        let set_columns = self.parse_column_list()?;
        self.expect_keyword("VALUES")?;
        let width = key_columns.len() + set_columns.len();
        let mut rows = Vec::new();
        loop {
            let tuple = self.parse_value_tuple()?;
            if tuple.len() != width {
                return Err(RelError::SqlParse {
                    message: format!(
                        "bulk UPDATE has {} key + {} set column(s) but a row with {} value(s)",
                        key_columns.len(),
                        set_columns.len(),
                        tuple.len()
                    ),
                });
            }
            let mut key = tuple;
            let set = key.split_off(key_columns.len());
            rows.push(BulkRow { key, set });
            if !self.accept_symbol(",") {
                break;
            }
        }
        Ok(BulkUpdateStmt {
            table,
            key_columns,
            set_columns,
            rows,
        })
    }

    fn parse_delete(&mut self) -> RelResult<DeleteStmt> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.expect_identifier()?;
        let where_clause = self.parse_optional_where()?;
        Ok(DeleteStmt {
            table,
            where_clause,
        })
    }

    fn parse_select(&mut self) -> RelResult<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let distinct = self.accept_keyword("DISTINCT");
        let mut items = Vec::new();
        loop {
            if self.accept_symbol("*") {
                items.push(SelectItem::Star);
            } else {
                let expr = self.parse_expr()?;
                let alias = if self.accept_keyword("AS") {
                    Some(self.expect_identifier()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.accept_symbol(",") {
                break;
            }
        }
        self.expect_keyword("FROM")?;
        let mut from = Vec::new();
        loop {
            let table = self.expect_identifier()?;
            let alias = match self.peek() {
                Tok::Word(w) if !is_reserved(w) => {
                    let alias = w.clone();
                    self.bump();
                    Some(alias)
                }
                _ => None,
            };
            from.push(TableRef { table, alias });
            if !self.accept_symbol(",") {
                break;
            }
        }
        let where_clause = self.parse_optional_where()?;
        Ok(SelectStmt {
            distinct,
            items,
            from,
            where_clause,
        })
    }

    fn parse_optional_where(&mut self) -> RelResult<Option<Expr>> {
        if self.accept_keyword("WHERE") {
            Ok(Some(self.parse_expr()?))
        } else {
            Ok(None)
        }
    }

    // expr := and_expr (OR and_expr)*
    fn parse_expr(&mut self) -> RelResult<Expr> {
        let mut left = self.parse_and()?;
        while self.accept_keyword("OR") {
            let right = self.parse_and()?;
            left = Expr::or(left, right);
        }
        Ok(left)
    }

    // and_expr := not_expr (AND not_expr)*
    fn parse_and(&mut self) -> RelResult<Expr> {
        let mut left = self.parse_not()?;
        while self.accept_keyword("AND") {
            let right = self.parse_not()?;
            left = Expr::and(left, right);
        }
        Ok(left)
    }

    // not_expr := NOT not_expr | comparison
    fn parse_not(&mut self) -> RelResult<Expr> {
        if self.accept_keyword("NOT") {
            Ok(Expr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_comparison()
        }
    }

    // comparison := primary ((= | <> | != | < | <= | > | >=) primary
    //             | IS [NOT] NULL | [NOT] IN '(' expr, … ')')?
    fn parse_comparison(&mut self) -> RelResult<Expr> {
        let left = self.parse_primary()?;
        if self.accept_keyword("IS") {
            let negated = self.accept_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // `IN` / `NOT IN` are contextual: after a complete primary the
        // classic grammar allows only an operator or the end of the
        // expression, so the keywords cannot shadow identifiers.
        if self.peek_keyword("IN") || self.peek_keyword("NOT") {
            let negated = self.accept_keyword("NOT");
            if !self.accept_keyword("IN") {
                return Err(self.err("expected IN after NOT"));
            }
            self.expect_symbol("(")?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.accept_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        let op = match self.peek() {
            Tok::Symbol(s) => match s.as_str() {
                "=" => Some(BinOp::Eq),
                "<>" | "!=" => Some(BinOp::Ne),
                "<" => Some(BinOp::Lt),
                "<=" => Some(BinOp::Le),
                ">" => Some(BinOp::Gt),
                ">=" => Some(BinOp::Ge),
                _ => None,
            },
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let right = self.parse_primary()?;
                Ok(Expr::binary(op, left, right))
            }
            None => Ok(left),
        }
    }

    // primary := literal | column_ref | '(' expr ')'
    fn parse_primary(&mut self) -> RelResult<Expr> {
        match self.peek().clone() {
            Tok::Symbol(s) if s == "(" => {
                self.bump();
                let inner = self.parse_expr()?;
                self.expect_symbol(")")?;
                Ok(inner)
            }
            Tok::Str(_) | Tok::Int(_) | Tok::Float(_) => Ok(Expr::Value(self.parse_literal()?)),
            Tok::Symbol(s) if s == "-" => Ok(Expr::Value(self.parse_literal()?)),
            Tok::Word(w) => {
                if w.eq_ignore_ascii_case("NULL")
                    || w.eq_ignore_ascii_case("TRUE")
                    || w.eq_ignore_ascii_case("FALSE")
                {
                    return Ok(Expr::Value(self.parse_literal()?));
                }
                let first = self.expect_identifier()?;
                if self.accept_symbol(".") {
                    let column = self.expect_identifier()?;
                    Ok(Expr::Column(ColumnRef::qualified(first, column)))
                } else {
                    Ok(Expr::Column(ColumnRef::bare(first)))
                }
            }
            t => Err(RelError::SqlParse {
                message: format!("expected expression, found {t:?}"),
            }),
        }
    }

    fn parse_literal(&mut self) -> RelResult<Value> {
        match self.bump() {
            Tok::Str(s) => Ok(Value::text(s)),
            Tok::Int(i) => Ok(Value::Int(i)),
            Tok::Float(f) => Ok(Value::Double(f)),
            Tok::Symbol(s) if s == "-" => match self.bump() {
                Tok::Int(i) => Ok(Value::Int(-i)),
                Tok::Float(f) => Ok(Value::Double(-f)),
                t => Err(RelError::SqlParse {
                    message: format!("expected number after '-', found {t:?}"),
                }),
            },
            Tok::Word(w) if w.eq_ignore_ascii_case("NULL") => Ok(Value::Null),
            Tok::Word(w) if w.eq_ignore_ascii_case("TRUE") => Ok(Value::Bool(true)),
            Tok::Word(w) if w.eq_ignore_ascii_case("FALSE") => Ok(Value::Bool(false)),
            t => Err(RelError::SqlParse {
                message: format!("expected literal, found {t:?}"),
            }),
        }
    }
}

fn is_reserved(word: &str) -> bool {
    const RESERVED: &[&str] = &[
        "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "FROM", "SELECT", "DISTINCT",
        "WHERE", "AND", "OR", "NOT", "IS", "NULL", "TRUE", "FALSE", "AS",
    ];
    RESERVED.iter().any(|r| r.eq_ignore_ascii_case(word))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_listing_10() {
        let stmt = parse(
            "INSERT INTO author (id, title, firstname, lastname, email, team) \
             VALUES (6, 'Mr', 'Matthias', 'Hert', 'hert@ifi.uzh.ch', 5);",
        )
        .unwrap();
        let Statement::Insert(ins) = stmt else {
            panic!("expected INSERT")
        };
        assert_eq!(ins.table, "author");
        assert_eq!(ins.columns.len(), 6);
        assert_eq!(ins.rows.len(), 1);
        assert_eq!(ins.rows[0][1], Value::text("Mr"));
        assert_eq!(ins.rows[0][5], Value::Int(5));
    }

    #[test]
    fn parses_multi_row_insert() {
        let stmt = parse("INSERT INTO team (id, name) VALUES (4, 'DBTG'), (5, 'SEAL');").unwrap();
        let Statement::Insert(ins) = stmt else {
            panic!("expected INSERT")
        };
        assert_eq!(ins.rows.len(), 2);
        assert_eq!(ins.rows[1], vec![Value::Int(5), Value::text("SEAL")]);
        // Every row must match the column count.
        assert!(parse("INSERT INTO t (a, b) VALUES (1, 2), (3);").is_err());
    }

    #[test]
    fn parses_bulk_update() {
        let stmt = parse(
            "UPDATE author BY (id, email) SET (email) \
             VALUES (6, 'a@x.ch', NULL), (7, 'b@x.ch', 'c@x.ch');",
        )
        .unwrap();
        let Statement::BulkUpdate(up) = stmt else {
            panic!("expected bulk UPDATE")
        };
        assert_eq!(up.key_columns, vec!["id", "email"]);
        assert_eq!(up.set_columns, vec!["email"]);
        assert_eq!(up.rows.len(), 2);
        assert_eq!(up.rows[0].key, vec![Value::Int(6), Value::text("a@x.ch")]);
        assert_eq!(up.rows[0].set, vec![Value::Null]);
        // Tuple width must be keys + sets.
        assert!(parse("UPDATE t BY (id) SET (x) VALUES (1);").is_err());
    }

    #[test]
    fn parses_in_list() {
        let stmt = parse("DELETE FROM team WHERE id IN (4, 5);").unwrap();
        let Statement::Delete(d) = stmt else { panic!() };
        assert_eq!(
            d.where_clause,
            Some(Expr::col_in_values(
                "id",
                vec![Value::Int(4), Value::Int(5)]
            ))
        );
        let stmt = parse("SELECT * FROM t WHERE x NOT IN (1);").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert!(matches!(
            s.where_clause,
            Some(Expr::InList { negated: true, .. })
        ));
    }

    #[test]
    fn parses_listing_18() {
        let stmt =
            parse("UPDATE author SET email = NULL WHERE id = 6 AND email = 'hert@ifi.uzh.ch';")
                .unwrap();
        let Statement::Update(up) = stmt else {
            panic!("expected UPDATE")
        };
        assert_eq!(
            up.assignments,
            vec![("email".into(), Expr::Value(Value::Null))]
        );
        assert!(up.where_clause.is_some());
    }

    #[test]
    fn round_trips_printer_output() {
        let inputs = [
            "INSERT INTO team (id, name, code) VALUES (4, 'Database Technology', 'DBTG');",
            "UPDATE author SET email = NULL WHERE id = 6 AND email = 'x';",
            "DELETE FROM author WHERE id = 6;",
            "SELECT DISTINCT a.id AS x, a.email FROM author a, team t WHERE a.team = t.id;",
            "SELECT * FROM team;",
            "DELETE FROM t WHERE a = 1 AND (b = 2 OR c = 3);",
            "SELECT id FROM t WHERE email IS NOT NULL;",
            "UPDATE t SET x = -5 WHERE y <> 'a';",
            "INSERT INTO team (id, name) VALUES (4, 'DBTG'), (5, 'SEAL');",
            "UPDATE author BY (id) SET (email, team) VALUES (6, NULL, 4), (7, 'x@y.ch', 5);",
            "DELETE FROM team WHERE id IN (4, 5);",
            "SELECT id FROM t WHERE x NOT IN (1, 'a') AND y IN (2);",
        ];
        for input in inputs {
            let stmt = parse(input).unwrap();
            let printed = stmt.to_string();
            let reparsed = parse(&printed).unwrap();
            assert_eq!(stmt, reparsed, "round-trip failed for {input}");
        }
    }

    #[test]
    fn case_insensitive_keywords() {
        assert!(parse("select id from team where id = 1").is_ok());
        assert!(parse("Select Id From team Where id Is Not Null").is_ok());
    }

    #[test]
    fn string_escaping() {
        let stmt = parse("DELETE FROM t WHERE name = 'O''Brien';").unwrap();
        let Statement::Delete(d) = stmt else { panic!() };
        assert_eq!(
            d.where_clause,
            Some(Expr::eq(Expr::col("name"), Expr::value("O'Brien")))
        );
    }

    #[test]
    fn script_parsing() {
        let script = "INSERT INTO team (id) VALUES (1); INSERT INTO team (id) VALUES (2);";
        let stmts = parse_script(script).unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn script_requires_separators() {
        assert!(parse_script("SELECT * FROM a SELECT * FROM b").is_err());
    }

    #[test]
    fn insert_column_value_count_mismatch_rejected() {
        assert!(parse("INSERT INTO t (a, b) VALUES (1);").is_err());
    }

    #[test]
    fn reserved_words_not_identifiers() {
        assert!(parse("SELECT * FROM where;").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("SELECT * FROM t; garbage").is_err());
    }

    #[test]
    fn unterminated_string_rejected() {
        assert!(parse("DELETE FROM t WHERE a = 'x;").is_err());
    }

    #[test]
    fn negative_numbers() {
        let stmt = parse("INSERT INTO t (a) VALUES (-42);").unwrap();
        let Statement::Insert(i) = stmt else { panic!() };
        assert_eq!(i.rows[0][0], Value::Int(-42));
    }

    #[test]
    fn float_literals() {
        let stmt = parse("INSERT INTO t (a) VALUES (3.5);").unwrap();
        let Statement::Insert(i) = stmt else { panic!() };
        assert_eq!(i.rows[0][0], Value::Double(3.5));
    }

    #[test]
    fn boolean_literals() {
        let stmt = parse("UPDATE t SET flag = TRUE;").unwrap();
        let Statement::Update(u) = stmt else { panic!() };
        assert_eq!(u.assignments[0].1, Expr::Value(Value::Bool(true)));
    }
}
